//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the benchmark-facing API subset the workspace uses (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_with_input`,
//! `bench_function`, [`Bencher::iter`], [`black_box`], [`BenchmarkId`])
//! backed by a plain wall-clock harness: a short warm-up, a bounded
//! measurement window, and a `mean ± spread over N iterations` report line.
//! No statistics beyond that — the point is that `cargo bench` runs and
//! produces comparable numbers without the real dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one sample per call, until the
    /// sample budget or the measurement window is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let window = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size
            && (self.samples.is_empty() || window.elapsed() < self.measurement_time)
        {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`], but with an untimed per-iteration setup
    /// producing the routine's input.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let window = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size
            && (self.samples.is_empty() || window.elapsed() < self.measurement_time)
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<40} mean {mean:>12.3?}  [{min:.3?} .. {max:.3?}]  ({} iters)",
            self.samples.len()
        );
    }
}

/// Settings shared by the benchmarks of one group.
#[derive(Debug, Clone, Copy)]
struct GroupSettings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for GroupSettings {
    fn default() -> Self {
        GroupSettings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: GroupSettings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the reported throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.settings, &label, |b| routine(b, input));
        self
    }

    /// Runs one unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.settings, &label, |b| routine(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility (the stand-in always sets up one input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Units for [`BenchmarkGroup::throughput`]; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_one(settings: &GroupSettings, label: &str, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: run the routine in a throwaway bencher for the warm-up window.
    let mut warm = Bencher {
        samples: Vec::new(),
        sample_size: usize::MAX,
        measurement_time: settings.warm_up_time,
    };
    routine(&mut warm);
    // Measurement.
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
    };
    routine(&mut bencher);
    bencher.report(label);
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: GroupSettings::default(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&GroupSettings::default(), name, |b| routine(b));
        self
    }
}

/// Declares a benchmark group function calling each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let settings = GroupSettings {
            sample_size: 5,
            measurement_time: Duration::from_millis(50),
            warm_up_time: Duration::from_millis(1),
        };
        let mut ran = 0u32;
        run_one(&settings, "test/label", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("scan", 7).to_string(), "scan/7");
    }
}
