//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this tiny crate
//! implements exactly the API subset the workspace uses: a seedable PRNG
//! (`rngs::StdRng`), `Rng::gen::<f64>()` and `Rng::gen_range(lo..=hi)` over
//! `u64`. The generator is SplitMix64 — statistically more than adequate for
//! deterministic test-data generation, though the streams differ from the
//! upstream `StdRng` (ChaCha12) for equal seeds.

#![forbid(unsafe_code)]

use std::ops::RangeInclusive;

/// Seedable pseudo random number generators.
pub mod rngs {
    /// The workspace's standard PRNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// A PRNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Types samplable uniformly from a PRNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `bits`, a uniform `u64`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

/// Ranges samplable from a PRNG.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut dyn RngCore) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        // Rejection-free modulo is fine for the data-generation use case.
        lo + rng.next_u64() % (span + 1)
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut dyn RngCore) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

/// Object-safe raw 64-bit generation.
pub trait RngCore {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Draws a value uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_are_inclusive_and_cover_endpoints() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
