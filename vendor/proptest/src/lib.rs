//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the API subset the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples and
//!   [`collection::vec`];
//! * `any::<bool>()`;
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header, plus [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`] and [`TestCaseError`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case reports
//! its deterministic case index so the run can be reproduced, but the inputs
//! are not minimized. Generation is fully deterministic per test name.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generation source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A failed test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias used by upstream proptest; rejection is treated as failure here.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property is checked with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy returned by [`any`] for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy generating vectors of `element` with a length drawn from
    /// `size` (half-open, like upstream's `SizeRange` from a `Range`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Derives a deterministic base seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Asserts a condition inside a `proptest!` body, failing the case (instead of
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Declares property tests. Each function's arguments are drawn from the
/// given strategies; the body may use `prop_assert!`-style macros or plain
/// `assert!`, and may `return Ok(())` / `return Err(TestCaseError::...)`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seed_from_u64(
                    base ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1usize..4, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((0u32..5, 0i32..3), 1..6), b in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            let doubled = (0u32..5).prop_map(|x| x * 2);
            let mut rng = crate::TestRng::seed_from_u64(1);
            let d = crate::Strategy::generate(&doubled, &mut rng);
            prop_assert!(d % 2 == 0);
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert_eq!(u32::from(x) * 2, u32::from(x) + u32::from(x));
        }
    }
}
