//! Shared fixtures for the cross-crate integration tests.

use ttk_uncertain::UncertainTable;

/// The soldier-monitoring table of Figure 1, re-exported for integration
/// tests that exercise the full stack.
pub fn soldier_table() -> UncertainTable {
    ttk_datagen::soldier::table().expect("the static example table is valid")
}

/// A deterministic CarTel-like area of moderate size.
pub fn small_area() -> ttk_datagen::Area {
    ttk_datagen::generate_area(&ttk_datagen::CartelConfig {
        segments: 25,
        seed: 7,
        ..ttk_datagen::CartelConfig::default()
    })
    .expect("area generation succeeds")
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_are_consistent() {
        assert_eq!(super::soldier_table().len(), 7);
        assert!(super::small_area().table().len() >= 25);
    }
}
