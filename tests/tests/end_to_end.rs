//! Cross-crate integration tests: data generators → probabilistic database →
//! core algorithms → typical answers, exercised the way the examples and the
//! CLI use them.

use ttk_core::baselines::{exhaustive_topk_distribution, u_topk, UTopkConfig};
use ttk_core::{Algorithm, Dataset, Session, TopkQuery};
use ttk_datagen::synthetic::{generate, MePolicy, SyntheticConfig};
use ttk_integration_tests::{small_area, soldier_table};
use ttk_pdb::{
    run_distribution_query, table_from_csv, table_to_csv, CsvOptions, DataType, DistributionQuery,
    PTable, Schema,
};

#[test]
fn soldier_example_reproduces_every_published_number() {
    let dataset = Dataset::table(soldier_table());
    let answer = Session::new()
        .execute(
            &dataset,
            &TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0),
        )
        .unwrap();

    // Figure 3 / §1 numbers.
    assert!((answer.expected_score() - 164.1).abs() < 0.05);
    assert!((answer.distribution.mass_above(118.0) - 0.76).abs() < 1e-9);
    let u = answer.u_topk.as_ref().unwrap();
    assert_eq!(u.vector.total_score(), 118.0);
    assert!((u.vector.probability() - 0.2).abs() < 1e-9);

    // §2.2 numbers.
    assert_eq!(answer.typical.scores(), vec![118.0, 183.0, 235.0]);
    assert!((answer.typical.expected_distance - 6.6).abs() < 0.05);
}

#[test]
fn cartel_pipeline_from_rows_to_typical_answers() {
    let area = small_area();
    let schema = Schema::default()
        .with("segment_id", DataType::Integer)
        .with("speed_limit", DataType::Float)
        .with("length", DataType::Float)
        .with("delay", DataType::Float);
    let mut relation = PTable::new("area", schema);
    for segment in &area.segments {
        for bin in &segment.bins {
            relation
                .insert(
                    vec![
                        (segment.segment_id as i64).into(),
                        segment.speed_limit_kmh.into(),
                        segment.length_m.into(),
                        bin.delay_seconds.into(),
                    ],
                    bin.probability.clamp(1e-6, 1.0),
                    Some(&format!("segment-{}", segment.segment_id)),
                )
                .unwrap();
        }
    }

    let query = DistributionQuery::new("speed_limit / (length / delay)", 5);
    let result = run_distribution_query(&relation, &query).unwrap();
    let answer = &result.answer;

    // The distribution captures nearly all mass (segments always exist, so a
    // top-5 always exists as long as there are ≥ 5 segments).
    assert!(answer.distribution.total_probability() > 0.97);
    // Typical vectors contain 5 distinct segments each.
    for rows in result.typical_rows() {
        assert_eq!(rows.len(), 5);
        let mut segments: Vec<String> = rows
            .iter()
            .map(|&r| relation.row(r).unwrap().values[0].to_string())
            .collect();
        segments.sort();
        segments.dedup();
        assert_eq!(segments.len(), 5, "typical vector repeats a segment");
    }
    // The U-Topk score lies inside the distribution's span.
    let u = answer.u_topk.as_ref().unwrap();
    assert!(u.vector.total_score() >= answer.distribution.min_score().unwrap() - 1e-9);
    assert!(u.vector.total_score() <= answer.distribution.max_score().unwrap() + 1e-9);
}

#[test]
fn csv_round_trip_preserves_query_results() {
    let area = small_area();
    let schema = Schema::default()
        .with("speed_limit", DataType::Float)
        .with("length", DataType::Float)
        .with("delay", DataType::Float);
    let mut relation = PTable::new("area", schema);
    for segment in &area.segments {
        for bin in &segment.bins {
            relation
                .insert(
                    vec![
                        segment.speed_limit_kmh.into(),
                        segment.length_m.into(),
                        bin.delay_seconds.into(),
                    ],
                    bin.probability.clamp(1e-6, 1.0),
                    Some(&format!("segment-{}", segment.segment_id)),
                )
                .unwrap();
        }
    }
    let csv = table_to_csv(&relation, &CsvOptions::default());
    let reloaded = table_from_csv("area", &csv, &CsvOptions::default()).unwrap();
    assert_eq!(reloaded.len(), relation.len());

    let query = DistributionQuery::new("speed_limit / (length / delay)", 3);
    let a = run_distribution_query(&relation, &query).unwrap();
    let b = run_distribution_query(&reloaded, &query).unwrap();
    assert!((a.answer.expected_score() - b.answer.expected_score()).abs() < 1e-6);
    assert_eq!(
        a.answer.typical.scores().len(),
        b.answer.typical.scores().len()
    );
}

#[test]
fn all_algorithms_agree_on_a_generated_workload() {
    // A small synthetic table (exhaustive enumeration still feasible).
    let table = generate(&SyntheticConfig {
        tuples: 12,
        me_policy: MePolicy::default(),
        seed: 99,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let k = 3;
    let exact = exhaustive_topk_distribution(&table, k, 1 << 24).unwrap();
    // One dataset, one session, four algorithm runs: plan once, run many.
    let dataset = Dataset::table(table);
    let mut session = Session::new();
    for algorithm in [
        Algorithm::Main,
        Algorithm::MainPerEnding,
        Algorithm::StateExpansion,
        Algorithm::KCombo,
    ] {
        let answer = session
            .execute(
                &dataset,
                &TopkQuery::new(k)
                    .with_p_tau(1e-12)
                    .with_max_lines(0)
                    .with_algorithm(algorithm)
                    .with_u_topk(false),
            )
            .unwrap();
        assert_eq!(answer.distribution.len(), exact.len(), "{algorithm:?}");
        assert!(
            (answer.expected_score() - exact.expected_score()).abs() < 1e-9,
            "{algorithm:?}"
        );
    }
}

#[test]
fn u_topk_answer_is_compatible_with_me_rules() {
    let area = small_area();
    let table = area.table();
    let answer = u_topk(table, 6, &UTopkConfig::default()).unwrap().unwrap();
    // All members of the vector come from distinct segments (distinct ME
    // groups), i.e. the answer is a set of compatible tuples.
    let mut groups: Vec<usize> = answer
        .vector
        .ids()
        .iter()
        .map(|id| table.group_index(table.position(*id).unwrap()))
        .collect();
    groups.sort_unstable();
    groups.dedup();
    assert_eq!(groups.len(), 6);
}

#[test]
fn typicality_improves_with_more_typical_answers() {
    let area = small_area();
    let dataset = Dataset::table(area.table().clone());
    let mut session = Session::new();
    let mut previous = f64::INFINITY;
    for c in [1usize, 2, 3, 5, 8] {
        let answer = session
            .execute(
                &dataset,
                &TopkQuery::new(5).with_typical_count(c).with_u_topk(false),
            )
            .unwrap();
        let distance = answer.typical.expected_distance;
        assert!(
            distance <= previous + 1e-9,
            "expected distance should not increase with c: {distance} > {previous}"
        );
        previous = distance;
    }
}
