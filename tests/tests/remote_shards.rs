//! The acceptance property of the transport layer, end to end at the
//! database level: a relation split into shard CSV files, each served by an
//! independent "process" (its own scoring pass, its own wire stream over a
//! loopback socket), queried through `RemoteShardDataset`, must produce
//! **bit-identical** results to the equivalent local `--shard` scan of the
//! same files — distribution, scan depth, typical answers and U-Topk ids.

use std::net::TcpListener;

use ttk_core::{RemoteShardDataset, Session, TopkQuery};
use ttk_integration_tests::small_area;
use ttk_pdb::{
    shard_sources_from_csv_with, table_to_csv, CsvDataset, CsvOptions, ShardImportOptions,
};
use ttk_uncertain::{PrefetchPolicy, ShardAssignment, TupleSource, WireWriter};

/// Exports the small CarTel area as `shards` CSV texts (round-robin rows,
/// shared schema and group-key strings), returning the texts.
fn shard_texts(shards: usize) -> Vec<String> {
    let area = small_area();
    let schema = ttk_pdb::Schema::default()
        .with("delay", ttk_pdb::DataType::Float)
        .with("speed_limit", ttk_pdb::DataType::Float)
        .with("length", ttk_pdb::DataType::Float);
    let mut parts: Vec<ttk_pdb::PTable> = (0..shards)
        .map(|i| ttk_pdb::PTable::new(format!("shard{i}"), schema.clone()))
        .collect();
    let mut row = 0usize;
    for segment in &area.segments {
        for bin in &segment.bins {
            parts[row % shards]
                .insert(
                    vec![
                        bin.delay_seconds.into(),
                        segment.speed_limit_kmh.into(),
                        segment.length_m.into(),
                    ],
                    bin.probability.clamp(1e-6, 1.0),
                    Some(&format!("segment-{}", segment.segment_id)),
                )
                .unwrap();
            row += 1;
        }
    }
    parts
        .iter()
        .map(|p| table_to_csv(p, &CsvOptions::default()))
        .collect()
}

/// Serves one shard text the way `ttk serve-shard` does: scored with hashed
/// group keys and an explicit id base, streamed over the wire once per
/// accepted connection, `conns` times. With an `assignment`, each stream
/// opens with a v2 hello advertising it (the coordinator-leased daemon);
/// without, the plain v1 hello (the operator-managed daemon).
fn serve_as(
    text: String,
    id_base: u64,
    conns: usize,
    assignment: Option<ShardAssignment>,
) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let expr = ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();
        for _ in 0..conns {
            let (stream, _) = listener.accept().unwrap();
            let import = match &assignment {
                Some(lease) => ShardImportOptions::from(lease),
                None => ShardImportOptions {
                    first_tuple_id: id_base,
                    hashed_group_keys: true,
                },
            };
            let mut source = shard_sources_from_csv_with(
                &[text.as_str()],
                &CsvOptions::default(),
                &expr,
                &import,
            )
            .unwrap()
            .pop()
            .unwrap();
            let hint = source.size_hint();
            let buffered = std::io::BufWriter::new(stream);
            let writer = match &assignment {
                Some(lease) => WireWriter::with_assignment(buffered, hint, lease),
                None => WireWriter::new(buffered, hint),
            };
            if let Ok(writer) = writer {
                let _ = writer.serve(&mut source);
            }
        }
    });
    addr
}

/// [`serve_as`] without an assignment — the v1-hello serving path.
fn serve(text: String, id_base: u64, conns: usize) -> String {
    serve_as(text, id_base, conns, None)
}

#[test]
fn remote_shard_scan_is_bit_identical_to_the_local_shard_scan() {
    let shards = 3usize;
    let texts = shard_texts(shards);
    let expr = || ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();

    // The local reference: the same shard files scanned in-process with the
    // same import discipline (hashed keys, cumulative id bases).
    let local =
        CsvDataset::from_shard_texts("local-shards", texts.clone(), CsvOptions::default(), expr())
            .with_import(ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            })
            .into_dataset();

    // Serve each shard "process"-style; four connections each — one per
    // (k, prefetch) combination the loop below issues.
    let mut id_base = 0u64;
    let addrs: Vec<String> = texts
        .iter()
        .map(|text| {
            let rows = text.lines().filter(|l| !l.trim().is_empty()).count() as u64 - 1;
            let addr = serve(text.clone(), id_base, 4);
            id_base += rows;
            addr
        })
        .collect();

    let mut session = Session::new();
    for k in [1usize, 3, 5] {
        let query = TopkQuery::new(k).with_p_tau(1e-3);
        let reference = session.execute(&local, &query).unwrap();
        for prefetch in [PrefetchPolicy::Off, PrefetchPolicy::per_shard(32)] {
            if k != 3 && prefetch != PrefetchPolicy::Off {
                continue; // the prefetched client connects once, on k == 3
            }
            let remote = RemoteShardDataset::new(addrs.clone())
                .with_prefetch(prefetch)
                .into_dataset();
            let answer = session.execute(&remote, &query).unwrap();
            assert_eq!(answer.distribution, reference.distribution, "k={k}");
            assert_eq!(answer.scan_depth, reference.scan_depth, "k={k}");
            assert_eq!(answer.typical.scores(), reference.typical.scores(), "k={k}");
            let (ua, ub) = (
                answer.u_topk.as_ref().unwrap(),
                reference.u_topk.as_ref().unwrap(),
            );
            assert_eq!(ua.vector.ids(), ub.vector.ids(), "k={k}");
        }
    }

    // The hashed-key import is itself bit-identical (in distribution) to the
    // classic coordinated import of the same shards.
    let coordinated =
        CsvDataset::from_shard_texts("coordinated", texts, CsvOptions::default(), expr())
            .into_dataset();
    let query = TopkQuery::new(4).with_p_tau(1e-3);
    let a = session.execute(&coordinated, &query).unwrap();
    let b = session.execute(&local, &query).unwrap();
    assert_eq!(a.distribution, b.distribution);
    assert_eq!(a.scan_depth, b.scan_depth);
}

/// Shards imported under coordinator leases ([`ShardImportOptions::from`])
/// and served with v2 hellos advertising those leases are bit-identical to
/// the local `--shard` scan — and the client accepts the consistent
/// namespace assertions without complaint.
#[test]
fn lease_driven_v2_serving_matches_the_local_shard_scan() {
    let shards = 3usize;
    let texts = shard_texts(shards);
    let expr = || ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();

    let local =
        CsvDataset::from_shard_texts("local-shards", texts.clone(), CsvOptions::default(), expr())
            .with_import(ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            })
            .into_dataset();

    // Lease each shard its id base in shard order (the registration order a
    // sequential daemon launch produces) under one namespace.
    let mut registry = ttk_uncertain::LeaseRegistry::new("pdb-e2e");
    let addrs: Vec<String> = texts
        .iter()
        .map(|text| {
            let rows = text.lines().filter(|l| !l.trim().is_empty()).count() as u64 - 1;
            let lease = registry.register(rows);
            serve_as(text.clone(), lease.id_base, 1, Some(lease))
        })
        .collect();

    let mut session = Session::new();
    let query = TopkQuery::new(3).with_p_tau(1e-3);
    let reference = session.execute(&local, &query).unwrap();
    let answer = session
        .execute(&RemoteShardDataset::new(addrs).into_dataset(), &query)
        .unwrap();
    assert_eq!(answer.distribution, reference.distribution);
    assert_eq!(answer.scan_depth, reference.scan_depth);
    assert_eq!(
        answer.u_topk.as_ref().unwrap().vector.ids(),
        reference.u_topk.as_ref().unwrap().vector.ids()
    );
}
