//! The acceptance property of the transport layer, end to end at the
//! database level: a relation split into shard CSV files, each served by an
//! independent "process" (its own scoring pass, its own wire stream over a
//! loopback socket), queried through `RemoteShardDataset`, must produce
//! **bit-identical** results to the equivalent local `--shard` scan of the
//! same files — distribution, scan depth, typical answers and U-Topk ids.

use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use ttk_core::{
    serve_stream, RemoteShardDataset, ServeOptions, ServeSummary, Session, ShardScanGate, TopkQuery,
};
use ttk_integration_tests::small_area;
use ttk_pdb::{
    shard_sources_from_csv_with, table_to_csv, CsvDataset, CsvOptions, ShardImportOptions,
};
use ttk_uncertain::{PrefetchPolicy, ShardAssignment, TupleSource, WireWriter};

/// Exports the small CarTel area as `shards` CSV texts (round-robin rows,
/// shared schema and group-key strings), returning the texts.
fn shard_texts(shards: usize) -> Vec<String> {
    let area = small_area();
    let schema = ttk_pdb::Schema::default()
        .with("delay", ttk_pdb::DataType::Float)
        .with("speed_limit", ttk_pdb::DataType::Float)
        .with("length", ttk_pdb::DataType::Float);
    let mut parts: Vec<ttk_pdb::PTable> = (0..shards)
        .map(|i| ttk_pdb::PTable::new(format!("shard{i}"), schema.clone()))
        .collect();
    let mut row = 0usize;
    for segment in &area.segments {
        for bin in &segment.bins {
            parts[row % shards]
                .insert(
                    vec![
                        bin.delay_seconds.into(),
                        segment.speed_limit_kmh.into(),
                        segment.length_m.into(),
                    ],
                    bin.probability.clamp(1e-6, 1.0),
                    Some(&format!("segment-{}", segment.segment_id)),
                )
                .unwrap();
            row += 1;
        }
    }
    parts
        .iter()
        .map(|p| table_to_csv(p, &CsvOptions::default()))
        .collect()
}

/// Serves one shard text the way `ttk serve-shard` does: scored with hashed
/// group keys and an explicit id base, streamed over the wire once per
/// accepted connection, `conns` times. With an `assignment`, each stream
/// opens with a v2 hello advertising it (the coordinator-leased daemon);
/// without, the plain v1 hello (the operator-managed daemon).
fn serve_as(
    text: String,
    id_base: u64,
    conns: usize,
    assignment: Option<ShardAssignment>,
) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let expr = ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();
        for _ in 0..conns {
            let (stream, _) = listener.accept().unwrap();
            let import = match &assignment {
                Some(lease) => ShardImportOptions::from(lease),
                None => ShardImportOptions {
                    first_tuple_id: id_base,
                    hashed_group_keys: true,
                },
            };
            let mut source = shard_sources_from_csv_with(
                &[text.as_str()],
                &CsvOptions::default(),
                &expr,
                &import,
            )
            .unwrap()
            .pop()
            .unwrap();
            let hint = source.size_hint();
            let buffered = std::io::BufWriter::new(stream);
            let writer = match &assignment {
                Some(lease) => WireWriter::with_assignment(buffered, hint, lease),
                None => WireWriter::new(buffered, hint),
            };
            if let Ok(writer) = writer {
                let _ = writer.serve(&mut source);
            }
        }
    });
    addr
}

/// [`serve_as`] without an assignment — the v1-hello serving path.
fn serve(text: String, id_base: u64, conns: usize) -> String {
    serve_as(text, id_base, conns, None)
}

#[test]
fn remote_shard_scan_is_bit_identical_to_the_local_shard_scan() {
    let shards = 3usize;
    let texts = shard_texts(shards);
    let expr = || ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();

    // The local reference: the same shard files scanned in-process with the
    // same import discipline (hashed keys, cumulative id bases).
    let local =
        CsvDataset::from_shard_texts("local-shards", texts.clone(), CsvOptions::default(), expr())
            .with_import(ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            })
            .into_dataset();

    // Serve each shard "process"-style; four connections each — one per
    // (k, prefetch) combination the loop below issues.
    let mut id_base = 0u64;
    let addrs: Vec<String> = texts
        .iter()
        .map(|text| {
            let rows = text.lines().filter(|l| !l.trim().is_empty()).count() as u64 - 1;
            let addr = serve(text.clone(), id_base, 4);
            id_base += rows;
            addr
        })
        .collect();

    let mut session = Session::new();
    for k in [1usize, 3, 5] {
        let query = TopkQuery::new(k).with_p_tau(1e-3);
        let reference = session.execute(&local, &query).unwrap();
        for prefetch in [PrefetchPolicy::Off, PrefetchPolicy::per_shard(32)] {
            if k != 3 && prefetch != PrefetchPolicy::Off {
                continue; // the prefetched client connects once, on k == 3
            }
            let remote = RemoteShardDataset::new(addrs.clone())
                .with_prefetch(prefetch)
                .into_dataset();
            let answer = session.execute(&remote, &query).unwrap();
            assert_eq!(answer.distribution, reference.distribution, "k={k}");
            assert_eq!(answer.scan_depth, reference.scan_depth, "k={k}");
            assert_eq!(answer.typical.scores(), reference.typical.scores(), "k={k}");
            let (ua, ub) = (
                answer.u_topk.as_ref().unwrap(),
                reference.u_topk.as_ref().unwrap(),
            );
            assert_eq!(ua.vector.ids(), ub.vector.ids(), "k={k}");
        }
    }

    // The hashed-key import is itself bit-identical (in distribution) to the
    // classic coordinated import of the same shards.
    let coordinated =
        CsvDataset::from_shard_texts("coordinated", texts, CsvOptions::default(), expr())
            .into_dataset();
    let query = TopkQuery::new(4).with_p_tau(1e-3);
    let a = session.execute(&coordinated, &query).unwrap();
    let b = session.execute(&local, &query).unwrap();
    assert_eq!(a.distribution, b.distribution);
    assert_eq!(a.scan_depth, b.scan_depth);
}

/// Opens one shard text exactly as the serving side does (hashed group
/// keys, explicit id base).
fn open_shard(text: &str, id_base: u64) -> impl TupleSource {
    let expr = ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();
    shard_sources_from_csv_with(
        &[text],
        &CsvOptions::default(),
        &expr,
        &ShardImportOptions {
            first_tuple_id: id_base,
            hashed_group_keys: true,
        },
    )
    .unwrap()
    .pop()
    .unwrap()
}

/// [`serve_as`], but through the version-negotiating [`serve_stream`] of the
/// v3 daemon; every connection's [`ServeSummary`] is reported through the
/// returned channel.
fn serve_v3(text: String, id_base: u64, conns: usize) -> (String, mpsc::Receiver<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (sender, receiver) = mpsc::channel();
    std::thread::spawn(move || {
        for _ in 0..conns {
            let (stream, _) = listener.accept().unwrap();
            let mut source = open_shard(&text, id_base);
            let options = ServeOptions {
                pushdown_wait: Duration::from_millis(10),
                drain_every: 8,
                ..ServeOptions::default()
            };
            let summary = serve_stream(stream, &mut source, None, &options).unwrap();
            let _ = sender.send(summary);
        }
    });
    (addr, receiver)
}

/// The deterministic local-only bound of one served shard: what its
/// [`ShardScanGate`] admits with no remote updates — remote updates and
/// early client hangups can only lower the shipped count below this.
fn shard_bound(text: &str, id_base: u64, k: usize, p_tau: f64) -> u64 {
    let mut source = open_shard(text, id_base);
    let mut gate = ShardScanGate::new(k, p_tau).unwrap();
    let mut admitted = 0u64;
    while let Some(t) = source.next_tuple().unwrap() {
        if !gate.admit(t.tuple.score(), t.tuple.prob(), t.group) {
            break;
        }
        admitted += 1;
    }
    admitted
}

/// **The tentpole property at the database level.** Shard CSVs served by v3
/// pushdown daemons produce bit-identical answers to the local `--shard`
/// scan, while each server ships at most its conservative per-shard
/// Theorem-2 bound for gated queries — and the full shard (exactly) when the
/// client needs the whole stream for U-Topk witnesses.
#[test]
fn pushdown_serving_is_bit_identical_and_ships_within_the_shard_bound() {
    let shards = 3usize;
    let texts = shard_texts(shards);
    let expr = || ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();
    let gated = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
    let draining = TopkQuery::new(3).with_p_tau(1e-3);

    let local =
        CsvDataset::from_shard_texts("local-shards", texts.clone(), CsvOptions::default(), expr())
            .with_import(ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            })
            .into_dataset();

    // Two connections per server: the gated query, then the draining one.
    let mut id_base = 0u64;
    let mut servers = Vec::new();
    for text in &texts {
        let rows = text.lines().filter(|l| !l.trim().is_empty()).count() as u64 - 1;
        let bound = shard_bound(text, id_base, gated.k, gated.p_tau);
        let (addr, summaries) = serve_v3(text.clone(), id_base, 2);
        servers.push((addr, summaries, bound, rows));
        id_base += rows;
    }
    let addrs: Vec<String> = servers.iter().map(|(addr, ..)| addr.clone()).collect();
    let remote = RemoteShardDataset::new(addrs).into_dataset();
    let mut session = Session::new();

    let reference = session.execute(&local, &gated).unwrap();
    let answer = session.execute(&remote, &gated).unwrap();
    assert_eq!(answer.distribution, reference.distribution);
    assert_eq!(answer.scan_depth, reference.scan_depth);
    assert_eq!(answer.typical.scores(), reference.typical.scores());
    for (_, summaries, bound, rows) in &servers {
        let summary = summaries
            .recv_timeout(Duration::from_secs(10))
            .expect("gated-connection summary");
        assert!(summary.pushdown, "{summary:?}");
        assert!(summary.scanned <= *rows, "{summary:?}");
        assert!(
            summary.shipped <= *bound,
            "shipped {} over the shard bound {bound}",
            summary.shipped
        );
    }

    let reference = session.execute(&local, &draining).unwrap();
    let answer = session.execute(&remote, &draining).unwrap();
    assert_eq!(answer.distribution, reference.distribution);
    assert_eq!(
        answer.u_topk.as_ref().unwrap().vector.ids(),
        reference.u_topk.as_ref().unwrap().vector.ids()
    );
    for (_, summaries, _, rows) in &servers {
        let summary = summaries
            .recv_timeout(Duration::from_secs(10))
            .expect("draining-connection summary");
        // U-Topk needs the whole stream: the client announces `k = 0` and
        // every row crosses the wire, still on a v3 session.
        assert!(summary.pushdown, "{summary:?}");
        assert_eq!(summary.shipped, *rows, "{summary:?}");
    }
}

/// Shards imported under coordinator leases ([`ShardImportOptions::from`])
/// and served with v2 hellos advertising those leases are bit-identical to
/// the local `--shard` scan — and the client accepts the consistent
/// namespace assertions without complaint.
#[test]
fn lease_driven_v2_serving_matches_the_local_shard_scan() {
    let shards = 3usize;
    let texts = shard_texts(shards);
    let expr = || ttk_pdb::parse_expression("speed_limit / (length / delay)").unwrap();

    let local =
        CsvDataset::from_shard_texts("local-shards", texts.clone(), CsvOptions::default(), expr())
            .with_import(ShardImportOptions {
                first_tuple_id: 0,
                hashed_group_keys: true,
            })
            .into_dataset();

    // Lease each shard its id base in shard order (the registration order a
    // sequential daemon launch produces) under one namespace.
    let mut registry = ttk_uncertain::LeaseRegistry::new("pdb-e2e");
    let addrs: Vec<String> = texts
        .iter()
        .map(|text| {
            let rows = text.lines().filter(|l| !l.trim().is_empty()).count() as u64 - 1;
            let lease = registry.register(rows);
            serve_as(text.clone(), lease.id_base, 1, Some(lease))
        })
        .collect();

    let mut session = Session::new();
    let query = TopkQuery::new(3).with_p_tau(1e-3);
    let reference = session.execute(&local, &query).unwrap();
    let answer = session
        .execute(&RemoteShardDataset::new(addrs).into_dataset(), &query)
        .unwrap();
    assert_eq!(answer.distribution, reference.distribution);
    assert_eq!(answer.scan_depth, reference.scan_depth);
    assert_eq!(
        answer.u_topk.as_ref().unwrap().vector.ids(),
        reference.u_topk.as_ref().unwrap().vector.ids()
    );
}
