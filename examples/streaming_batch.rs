//! The unified `Dataset`/`Session` API, shown end to end:
//!
//! 1. **Streaming**: a query runs against a generator-backed `Dataset`. The
//!    Theorem-2 scan gate stops the scan at the bound, and a counting
//!    decorator proves how few of the generated tuples were ever read.
//! 2. **Explain**: the session reports the chosen scan path and its cost
//!    estimates before anything executes.
//! 3. **Batched serving**: one `Session` answers a whole grid of queries
//!    through `execute_batch` — cost-ordered (big jobs first) and, for very
//!    large batches, delivered through a bounded-result-memory sink.
//!
//! Run with `cargo run -p ttk-examples --bin streaming_batch`.

use std::time::Instant;

use ttk_core::{BatchOptions, Dataset, QueryJob, Session, TopkQuery};
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_uncertain::CountingSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A large simulated measurement area, streamed rather than materialized.
    let config = CartelConfig {
        segments: 2_000,
        seed: 2009,
        ..CartelConfig::default()
    };
    let area = generate_area(&config)?;
    let total_bins: usize = area.segments.iter().map(|s| s.bins.len()).sum();

    // Each open wraps the stream in a counting decorator and publishes its
    // pull-counter handle, so the bound stays observable from outside.
    let pulls = std::sync::Arc::new(std::sync::Mutex::new(ttk_uncertain::PullCounter::default()));
    let dataset = {
        let pulls = std::sync::Arc::clone(&pulls);
        Dataset::generator(move || {
            let source = CountingSource::new(area.tuple_source());
            *pulls.lock().unwrap() = source.counter();
            Ok(source)
        })
        .with_label("cartel generator (2000 segments)")
    };

    let mut session = Session::new();
    let query = TopkQuery::new(10).with_p_tau(1e-3).with_u_topk(false);

    println!("== Explain ==");
    println!("{}", session.explain(&dataset, &query));
    println!();

    let answer = session.execute(&dataset, &query)?;
    println!("== Streaming ==");
    println!("generated measurement bins : {total_bins}");
    // The scan pulls ramped columnar blocks, so the read count overshoots the
    // stopping bound by at most the final block; the *consumed* prefix is
    // still exactly the Theorem-2 depth plus one look-ahead tuple.
    println!(
        "tuples read by the scan    : {} (block-granular pulls; Theorem-2 depth {} + 1 look-ahead consumed)",
        pulls.lock().unwrap().get(),
        answer.scan_depth
    );
    println!(
        "expected top-10 congestion : {:.2}",
        answer.expected_score()
    );
    println!(
        "typical scores             : {:?}",
        answer
            .typical
            .scores()
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // A serving-style batch: distributions for every k from 1 to 10 over a
    // smaller area, twice — sequentially and through the parallel executor.
    let serving = Dataset::table(
        generate_area(&CartelConfig {
            segments: 25,
            seed: 100,
            ..CartelConfig::default()
        })?
        .into_table(),
    )
    .with_label("cartel area (25 segments)");
    let jobs: Vec<QueryJob> = (1..=10)
        .map(|k| QueryJob::new(&serving, TopkQuery::new(k).with_u_topk(false)))
        .collect();

    let started = Instant::now();
    let sequential = session.execute_batch(&jobs, &BatchOptions::new().with_threads(1));
    let sequential_time = started.elapsed();
    let started = Instant::now();
    // Cost-ordered (big k first) on one worker per CPU, delivering through a
    // bounded sink: at most 3 undelivered answers in flight.
    let mut parallel: Vec<Option<_>> = (0..jobs.len()).map(|_| None).collect();
    session.execute_batch_with(
        &jobs,
        &BatchOptions::new().max_resident_results(3),
        |index, answer| parallel[index] = Some(answer),
    );
    let parallel_time = started.elapsed();

    println!();
    println!("== Batched serving ({} queries) ==", jobs.len());
    println!("sequential : {:.3} s", sequential_time.as_secs_f64());
    println!(
        "parallel   : {:.3} s (cost-ordered, ≤ 3 resident results)",
        parallel_time.as_secs_f64()
    );
    let identical =
        sequential
            .iter()
            .zip(&parallel)
            .all(|(a, b)| match (a, b.as_ref().expect("delivered")) {
                (Ok(a), Ok(b)) => a.distribution == b.distribution,
                _ => false,
            });
    println!("results identical to sequential execution: {identical}");
    Ok(())
}
