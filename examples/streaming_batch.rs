//! The streaming rank-scan executor and the parallel batch API.
//!
//! Two capabilities the PR's refactor unlocks, shown end to end:
//!
//! 1. **Streaming**: a query runs against a rank-ordered `TupleSource`
//!    instead of a materialized table. The Theorem-2 scan gate stops the
//!    scan at the bound, and a counting decorator proves how few of the
//!    generated tuples were ever read.
//! 2. **Batched serving**: one `Executor` answers a whole grid of queries
//!    through `execute_batch`, reusing scratch buffers per worker thread.
//!
//! Run with `cargo run -p ttk-examples --bin streaming_batch`.

use std::time::Instant;

use ttk_core::{execute_batch, BatchJob, Executor, TopkQuery};
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_uncertain::CountingSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A large simulated measurement area, streamed rather than materialized.
    let config = CartelConfig {
        segments: 2_000,
        seed: 2009,
        ..CartelConfig::default()
    };
    let area = generate_area(&config)?;
    let total_bins: usize = area.segments.iter().map(|s| s.bins.len()).sum();

    let mut source = CountingSource::new(area.tuple_source());
    let query = TopkQuery::new(10).with_p_tau(1e-3);
    let answer = Executor::new().execute_source(&mut source, &query)?;

    println!("== Streaming ==");
    println!("generated measurement bins : {total_bins}");
    println!(
        "tuples read by the scan    : {} (Theorem-2 depth {} + 1 look-ahead)",
        source.pulled(),
        answer.scan_depth
    );
    println!(
        "expected top-10 congestion : {:.2}",
        answer.expected_score()
    );
    println!(
        "typical scores             : {:?}",
        answer
            .typical
            .scores()
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // A serving-style batch: distributions for every k from 1 to 10 over a
    // smaller area, twice — sequentially and through the parallel executor.
    let serving_area = generate_area(&CartelConfig {
        segments: 25,
        seed: 100,
        ..CartelConfig::default()
    })?;
    let table = serving_area.table();
    let jobs: Vec<BatchJob> = (1..=10)
        .map(|k| BatchJob::new(table, TopkQuery::new(k).with_u_topk(false)))
        .collect();

    let started = Instant::now();
    let sequential = execute_batch(&jobs, 1);
    let sequential_time = started.elapsed();
    let started = Instant::now();
    let parallel = execute_batch(&jobs, 0); // one worker per CPU
    let parallel_time = started.elapsed();

    println!();
    println!("== Batched serving ({} queries) ==", jobs.len());
    println!("sequential : {:.3} s", sequential_time.as_secs_f64());
    println!("parallel   : {:.3} s", parallel_time.as_secs_f64());
    let identical = sequential.iter().zip(&parallel).all(|(a, b)| match (a, b) {
        (Ok(a), Ok(b)) => a.distribution == b.distribution,
        _ => false,
    });
    println!("results identical to sequential execution: {identical}");
    Ok(())
}
