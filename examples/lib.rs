//! Shared helpers for the runnable examples.
//!
//! The examples print score distributions as ASCII histograms; the helpers
//! here keep that presentation code out of the individual binaries.

use ttk_uncertain::ScoreDistribution;

/// Renders a score distribution as an ASCII histogram with `buckets` bars.
///
/// Each line shows the bucket's score range, its probability mass and a bar
/// whose length is proportional to the mass. Markers (for example the U-Topk
/// score or the typical scores) are annotated on the bucket they fall into.
pub fn render_histogram(
    distribution: &ScoreDistribution,
    buckets: usize,
    markers: &[(f64, &str)],
) -> String {
    let Some(lo) = distribution.min_score() else {
        return "(empty distribution)".to_string();
    };
    let hi = distribution.max_score().unwrap_or(lo);
    let width = if hi > lo {
        (hi - lo) / buckets as f64
    } else {
        1.0
    };
    let Some(hist) = distribution.histogram(width) else {
        return "(empty distribution)".to_string();
    };
    let max_mass = hist
        .buckets
        .iter()
        .fold(f64::MIN_POSITIVE, |acc, &b| acc.max(b));
    let mut out = String::new();
    for (i, &mass) in hist.buckets.iter().enumerate() {
        let start = hist.bucket_start(i);
        let end = start + hist.width;
        let bar_len = ((mass / max_mass) * 50.0).round() as usize;
        let mut annotations = String::new();
        for (value, label) in markers {
            let in_last = i + 1 == hist.buckets.len() && *value >= start;
            if (*value >= start && *value < end) || in_last {
                annotations.push_str(&format!("  <-- {label} ({value:.1})"));
            }
        }
        out.push_str(&format!(
            "[{start:8.1}, {end:8.1})  {mass:6.4}  {}{annotations}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Formats a probability as a percentage with two decimals.
pub fn percent(p: f64) -> String {
    format!("{:.2}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_all_buckets_and_markers() {
        let d = ScoreDistribution::from_pairs([(0.0, 0.2), (10.0, 0.5), (20.0, 0.3)]);
        let text = render_histogram(&d, 4, &[(10.0, "U-Topk")]);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("U-Topk"));
        assert!(render_histogram(&ScoreDistribution::empty(), 4, &[]).contains("empty"));
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.1234), "12.34%");
    }
}
