//! The paper's running example (Figure 1–3): soldiers' physiological status
//! monitoring. Reproduces the possible worlds of Figure 2, the top-2 score
//! distribution of Figure 3, and the U-Topk vs c-Typical-Topk comparison
//! discussed in §1 and §2.2.
//!
//! Run with `cargo run -p ttk-examples --bin soldier_monitoring`.

use ttk_core::baselines::{pt_k, u_kranks};
use ttk_core::{Dataset, Session, TopkQuery};
use ttk_datagen::soldier;
use ttk_examples::{percent, render_histogram};
use ttk_uncertain::PossibleWorlds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let readings = soldier::readings();
    let table = soldier::table()?;

    println!("== Figure 1: the uncertain table ==");
    println!("tuple  soldier  time   location  score  confidence");
    for r in &readings {
        println!(
            "T{:<5} {:<8} {:<6} ({:2},{:2})   {:>5.0}  {:.2}",
            r.tuple_id, r.soldier_id, r.time, r.location.0, r.location.1, r.score, r.confidence
        );
    }
    println!("ME rules: T2 ⊕ T4 ⊕ T7 (soldier 2), T3 ⊕ T6 (soldier 3)");
    println!();

    println!("== Figure 2: possible worlds and their top-2 vectors ==");
    let mut world_count = 0usize;
    for world in PossibleWorlds::new(&table, 1 << 20)? {
        if world.probability <= 0.0 {
            continue;
        }
        world_count += 1;
        let members: Vec<String> = world
            .present
            .iter()
            .map(|&p| format!("{}", table.tuple(p).id()))
            .collect();
        let top2 = world
            .topk_vectors(&table, 2)
            .first()
            .map(|v| {
                v.iter()
                    .map(|&p| format!("{}", table.tuple(p).id()))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_else(|| "(fewer than 2 tuples)".to_string());
        println!(
            "W{:<2} p={:<6.4} {{{}}}  top-2: <{}>",
            world_count,
            world.probability,
            members.join(", "),
            top2
        );
    }
    println!();

    // The full pipeline at k = 2 with exact settings.
    let answer = Session::new().execute(
        &Dataset::table(table.clone()),
        &TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0),
    )?;

    println!("== Figure 3: distribution of top-2 total scores ==");
    let mut markers: Vec<(f64, &str)> = vec![];
    if let Some(u) = &answer.u_topk {
        markers.push((u.vector.total_score(), "U-Top2"));
    }
    print!("{}", render_histogram(&answer.distribution, 14, &markers));
    println!();
    println!("expected top-2 score: {:.1}", answer.expected_score());
    if let Some(u) = &answer.u_topk {
        println!(
            "U-Top2 = {} — only {} of the probability mass lies below its score",
            u.vector,
            percent(answer.u_topk_percentile().unwrap_or(0.0))
        );
        println!(
            "probability that the true top-2 scores higher than U-Top2: {}",
            percent(answer.distribution.mass_above(u.vector.total_score()))
        );
    }
    println!();

    println!("== c-Typical-Top2 answers (c = 3) ==");
    for t in &answer.typical.answers {
        if let Some(v) = &t.vector {
            println!("  typical score {:6.1}: {}", t.score, v);
        }
    }
    println!(
        "  expected distance to the closest typical score: {:.2}",
        answer.typical.expected_distance
    );
    println!();

    println!("== Category-(2) semantics on the same data (for contrast) ==");
    for w in u_kranks(&table, 2)? {
        println!(
            "  U-kRanks rank {}: {} with probability {:.3}",
            w.rank, w.tuple, w.probability
        );
    }
    for m in pt_k(&table, 2, 0.3)? {
        println!(
            "  PT-2 (threshold 0.3): {} with membership probability {:.3}",
            m.tuple, m.probability
        );
    }
    println!();
    println!(
        "Note how the category-(2) answers need not respect the mutual-exclusion rules,\n\
         which is why the paper proposes typical vectors for applications that need\n\
         mutually compatible tuples."
    );
    Ok(())
}
