//! Reproduces the synthetic study of §5.4 interactively: how the correlation
//! between scores and confidences (Figure 13), the score variance
//! (Figure 14) and the ME-group structure (Figures 15–16) change the top-k
//! score distribution and how atypical the U-Topk answer becomes.
//!
//! Run with `cargo run -p ttk-examples --bin synthetic_correlation`.

use ttk_core::{Dataset, Session, TopkQuery};
use ttk_datagen::synthetic::{generate, IntRange, MePolicy, SyntheticConfig};
use ttk_examples::percent;
use ttk_uncertain::UncertainTable;

fn summarize(
    label: &str,
    table: &UncertainTable,
    k: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let answer = Session::new().execute(
        &Dataset::table(table.clone()),
        &TopkQuery::new(k)
            .with_typical_count(3)
            .with_p_tau(1e-3)
            .with_max_lines(300),
    )?;
    let dist = &answer.distribution;
    let u_score = answer
        .u_topk
        .as_ref()
        .map(|u| u.vector.total_score())
        .unwrap_or(f64::NAN);
    println!(
        "{label:<34} span [{:8.1}, {:8.1}]  E[score] {:8.1}  std {:7.1}  U-Topk {:8.1} (pct {})  typicals {:?}",
        dist.min_score().unwrap_or(f64::NAN),
        dist.max_score().unwrap_or(f64::NAN),
        answer.expected_score(),
        dist.std_dev(),
        u_score,
        percent(answer.u_topk_percentile().unwrap_or(f64::NAN)),
        answer
            .typical
            .scores()
            .iter()
            .map(|s| s.round())
            .collect::<Vec<_>>(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 10;
    println!("k = {k}, n = 300 tuples per configuration, all seeds fixed\n");

    println!("== Figure 13: score/confidence correlation ==");
    for rho in [0.0, 0.8, -0.8] {
        let table = generate(&SyntheticConfig::with_correlation(rho))?;
        summarize(&format!("correlation rho = {rho:+.1}"), &table, k)?;
    }
    println!();

    println!("== Figure 14: wider score variance ==");
    for sigma in [60.0, 100.0] {
        let table = generate(&SyntheticConfig {
            score_std: sigma,
            ..SyntheticConfig::default()
        })?;
        summarize(&format!("score sigma = {sigma}"), &table, k)?;
    }
    println!();

    println!("== Figure 15: gaps between ME-group members ==");
    for (label, gap) in [
        ("gaps 1-8", IntRange::new(1, 8)),
        ("gaps 1-40", IntRange::new(1, 40)),
    ] {
        let table = generate(&SyntheticConfig {
            me_policy: MePolicy {
                gap,
                ..MePolicy::default()
            },
            ..SyntheticConfig::default()
        })?;
        summarize(label, &table, k)?;
    }
    println!();

    println!("== Figure 16: larger ME groups ==");
    for (label, size) in [
        ("group size 2-3", IntRange::new(2, 3)),
        ("group size 2-10", IntRange::new(2, 10)),
    ] {
        let table = generate(&SyntheticConfig {
            me_policy: MePolicy {
                group_size: size,
                ..MePolicy::default()
            },
            ..SyntheticConfig::default()
        })?;
        summarize(label, &table, k)?;
    }
    println!();
    println!(
        "Expected shapes: positive correlation shifts the distribution right and negative\n\
         correlation left; a larger sigma widens the span; changing only the gaps barely\n\
         matters; larger ME groups widen the span, lower the scores and push U-Topk toward\n\
         the tail."
    );
    Ok(())
}
