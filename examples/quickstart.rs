//! Quickstart: build a small uncertain table, compute the top-k score
//! distribution, the c-Typical-Topk answers and the U-Topk comparison point.
//!
//! Run with `cargo run -p ttk-examples --bin quickstart`.

use ttk_core::{Dataset, Session, TopkQuery};
use ttk_examples::{percent, render_histogram};
use ttk_uncertain::UncertainTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sensor readings for four objects; two readings disagree about object B
    // (they are mutually exclusive), the others are independent.
    let table = UncertainTable::builder()
        .tuple(1u64, 92.0, 0.35)? // object A, strong but unlikely reading
        .tuple(2u64, 75.0, 0.60)? // object B, first estimate
        .tuple(3u64, 64.0, 0.40)? // object B, second estimate
        .tuple(4u64, 58.0, 0.90)? // object C
        .tuple(5u64, 41.0, 1.00)? // object D, certain
        .tuple(6u64, 30.0, 0.80)? // object E
        .me_rule([2u64, 3u64])
        .build()?;

    // k = 3, c = 3 typical answers, exact computation (no pruning).
    let query = TopkQuery::new(3)
        .with_typical_count(3)
        .with_p_tau(1e-9)
        .with_max_lines(0);
    let dataset = Dataset::table(table);
    let answer = Session::new().execute(&dataset, &query)?;

    println!("== Top-3 total score distribution ==");
    let mut markers: Vec<(f64, &str)> = Vec::new();
    if let Some(u) = &answer.u_topk {
        markers.push((u.vector.total_score(), "U-Topk"));
    }
    let typical_scores = answer.typical.scores();
    let typical_markers: Vec<(f64, String)> = typical_scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, format!("typical #{}", i + 1)))
        .collect();
    let mut all_markers = markers.clone();
    for (s, label) in &typical_markers {
        all_markers.push((*s, label.as_str()));
    }
    print!(
        "{}",
        render_histogram(&answer.distribution, 12, &all_markers)
    );

    println!();
    println!(
        "captured probability mass : {}",
        percent(answer.distribution.total_probability())
    );
    println!("expected top-3 score      : {:.2}", answer.expected_score());
    println!(
        "score standard deviation  : {:.2}",
        answer.distribution.std_dev()
    );
    println!();

    println!("== c-Typical-Top3 answers (c = 3) ==");
    for typical in &answer.typical.answers {
        match &typical.vector {
            Some(v) => println!(
                "  score {:7.2}  probability {:6.4}  vector {}",
                typical.score, typical.probability, v
            ),
            None => println!(
                "  score {:7.2}  probability {:6.4}",
                typical.score, typical.probability
            ),
        }
    }
    println!(
        "  expected |actual - closest typical| = {:.3}",
        answer.typical.expected_distance
    );
    println!();

    if let Some(u) = &answer.u_topk {
        println!("== U-Topk comparison ==");
        println!("  U-Top3 vector   : {}", u.vector);
        println!(
            "  percentile of its score in the distribution: {}",
            percent(answer.u_topk_percentile().unwrap_or(0.0))
        );
    }
    Ok(())
}
