//! The paper's real-world scenario (§5.2): find the k most congested road
//! segments in an area and report the score distribution and typical
//! answers, so city planners see how serious congestion is rather than a
//! single (possibly atypical) most-probable vector.
//!
//! The CarTel dataset is not available, so a structurally equivalent area is
//! simulated (see `ttk-datagen::cartel`). The query is the paper's
//! `speed_limit / (length / delay)` congestion score, issued through the
//! probabilistic-database layer exactly like the SQL query in the paper.
//!
//! Run with `cargo run -p ttk-examples --bin traffic_congestion`.

use ttk_core::TopkQuery;
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_examples::{percent, render_histogram};
use ttk_pdb::{run_distribution_query, DataType, DistributionQuery, PTable, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate one measurement area and load it into the relational layer.
    let area = generate_area(&CartelConfig {
        segments: 60,
        seed: 2009,
        ..CartelConfig::default()
    })?;

    let schema = Schema::default()
        .with("segment_id", DataType::Integer)
        .with("speed_limit", DataType::Float)
        .with("length", DataType::Float)
        .with("delay", DataType::Float);
    let mut relation = PTable::new("area", schema);
    for segment in &area.segments {
        for bin in &segment.bins {
            relation.insert(
                vec![
                    (segment.segment_id as i64).into(),
                    segment.speed_limit_kmh.into(),
                    segment.length_m.into(),
                    bin.delay_seconds.into(),
                ],
                bin.probability.clamp(1e-6, 1.0),
                Some(&format!("segment-{}", segment.segment_id)),
            )?;
        }
    }
    println!(
        "Loaded {} measurement bins covering {} road segments.",
        relation.len(),
        area.segments.len()
    );

    // The paper's query: SELECT ... ORDER BY congestion_score DESC LIMIT k.
    let k = 5;
    let query = DistributionQuery::new("speed_limit / (length / delay)", k).with_topk(
        TopkQuery::new(k)
            .with_typical_count(3)
            .with_p_tau(1e-3)
            .with_max_lines(200),
    );
    let result = run_distribution_query(&relation, &query)?;
    let answer = &result.answer;

    println!();
    println!("== Top-{k} total congestion score distribution ==");
    let mut markers: Vec<(f64, String)> = Vec::new();
    if let Some(u) = &answer.u_topk {
        markers.push((u.vector.total_score(), "U-Topk".to_string()));
    }
    for (i, s) in answer.typical.scores().iter().enumerate() {
        markers.push((*s, format!("typical #{}", i + 1)));
    }
    let marker_refs: Vec<(f64, &str)> = markers.iter().map(|(v, l)| (*v, l.as_str())).collect();
    print!(
        "{}",
        render_histogram(&answer.distribution, 16, &marker_refs)
    );

    println!();
    println!("scan depth (Theorem 2)    : {}", answer.scan_depth);
    println!(
        "captured probability mass : {}",
        percent(answer.distribution.total_probability())
    );
    println!("expected total congestion : {:.2}", answer.expected_score());
    println!();

    println!("== Typical answers mapped back to road segments ==");
    for (typical, rows) in answer.typical.answers.iter().zip(result.typical_rows()) {
        let segments: Vec<String> = rows
            .iter()
            .map(|&row| {
                relation
                    .row(row)
                    .map_or("?".to_string(), |r| format!("{}", r.values[0]))
            })
            .collect();
        println!(
            "  total score {:8.2} (probability {:.4}): segments [{}]",
            typical.score,
            typical.probability,
            segments.join(", ")
        );
    }
    if let Some(u) = &answer.u_topk {
        let rows = result.u_topk_rows().unwrap_or_default();
        let segments: Vec<String> = rows
            .iter()
            .map(|&row| {
                relation
                    .row(row)
                    .map_or("?".into(), |r| format!("{}", r.values[0]))
            })
            .collect();
        println!();
        println!(
            "U-Topk answer: total score {:.2}, probability {:.4}, segments [{}]",
            u.vector.total_score(),
            u.vector.probability(),
            segments.join(", ")
        );
        println!(
            "Its score sits at the {} percentile of the distribution — informative, but not typical.",
            percent(answer.u_topk_percentile().unwrap_or(0.0))
        );
    }
    Ok(())
}
