//! Synthetic uncertain tables with controllable characteristics (§5.4).
//!
//! The paper's synthetic study sweeps four data characteristics:
//!
//! * the correlation ρ between a tuple's score and its confidence,
//! * the score variance σ,
//! * the in-rank gap between neighbouring members of an ME group, and
//! * the size of ME groups.
//!
//! [`SyntheticConfig`] exposes exactly those knobs (plus a seed) and
//! [`generate`] produces an [`UncertainTable`]. Scores and confidences are
//! drawn from a bivariate normal distribution; confidences are clamped into
//! `(0, 1]`; ME groups are then laid over the rank order according to the
//! gap/size policy, rescaling member probabilities when a group would exceed
//! total probability one.

use ttk_uncertain::{Result, TupleId, UncertainTable, UncertainTuple, VecSource};

use crate::rng::DataRng;

/// Inclusive integer range used by the ME-group policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntRange {
    /// Smallest admissible value.
    pub min: u64,
    /// Largest admissible value.
    pub max: u64,
}

impl IntRange {
    /// A fixed value.
    pub fn fixed(v: u64) -> Self {
        IntRange { min: v, max: v }
    }

    /// A range `[min, max]`.
    pub fn new(min: u64, max: u64) -> Self {
        assert!(min <= max, "empty range");
        IntRange { min, max }
    }

    fn sample(&self, rng: &mut DataRng) -> u64 {
        rng.int_in(self.min, self.max)
    }
}

/// How tuples are assigned to mutual-exclusion groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MePolicy {
    /// Number of members per group (the `s` parameter of Figure 16).
    pub group_size: IntRange,
    /// Rank-order distance between two neighbouring members of the same
    /// group (the `d` parameter of Figure 15).
    pub gap: IntRange,
    /// Fraction of tuples that participate in multi-member groups
    /// (the x-axis of Figure 11). The remaining tuples stay independent.
    pub portion: f64,
}

impl Default for MePolicy {
    fn default() -> Self {
        // The baseline of §5.4: small groups (2–3), small gaps (1–8), every
        // tuple eligible.
        MePolicy {
            group_size: IntRange::new(2, 3),
            gap: IntRange::new(1, 8),
            portion: 1.0,
        }
    }
}

impl MePolicy {
    /// A policy producing a fully independent table.
    pub fn independent() -> Self {
        MePolicy {
            group_size: IntRange::fixed(1),
            gap: IntRange::fixed(1),
            portion: 0.0,
        }
    }
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of tuples.
    pub tuples: usize,
    /// Mean of the score distribution.
    pub score_mean: f64,
    /// Standard deviation of the score distribution (σ of Figure 14).
    pub score_std: f64,
    /// Mean of the (pre-clamping) confidence distribution.
    pub confidence_mean: f64,
    /// Standard deviation of the confidence distribution.
    pub confidence_std: f64,
    /// Correlation coefficient between score and confidence (ρ of Figure 13).
    pub correlation: f64,
    /// ME-group layout policy.
    pub me_policy: MePolicy,
    /// PRNG seed; equal seeds produce identical tables.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        // Matches the setup of Figure 13a: ρ = 0, σ = 60, scores around 150.
        SyntheticConfig {
            tuples: 300,
            score_mean: 150.0,
            score_std: 60.0,
            confidence_mean: 0.5,
            confidence_std: 0.2,
            correlation: 0.0,
            me_policy: MePolicy::default(),
            seed: 0xC0FFEE,
        }
    }
}

impl SyntheticConfig {
    /// Convenience constructor for the correlation sweep of Figure 13.
    pub fn with_correlation(rho: f64) -> Self {
        SyntheticConfig {
            correlation: rho,
            ..SyntheticConfig::default()
        }
    }
}

/// Generates a synthetic uncertain table.
///
/// # Errors
///
/// Propagates model validation errors; with the clamping performed here they
/// can only occur for nonsensical configurations (for example zero tuples
/// are fine, but a negative σ is caught by the score validation).
pub fn generate(config: &SyntheticConfig) -> Result<UncertainTable> {
    let mut rng = DataRng::seed_from_u64(config.seed);
    // Draw (score, confidence) pairs.
    let mut tuples = Vec::with_capacity(config.tuples);
    for id in 0..config.tuples {
        let (score, raw_confidence) = rng.bivariate_normal(
            (config.score_mean, config.confidence_mean),
            (config.score_std, config.confidence_std),
            config.correlation,
        );
        let confidence = raw_confidence.clamp(0.02, 1.0);
        tuples.push(UncertainTuple::new(id as u64, score, confidence)?);
    }
    // Lay ME groups over the rank order.
    tuples.sort_by_key(|t| t.rank_key());
    let rules = assign_groups(&tuples, &config.me_policy, &mut rng);

    // Rescale probabilities inside groups whose mass exceeds one.
    let mut adjusted: Vec<UncertainTuple> = tuples.clone();
    for rule in &rules {
        let sum: f64 = rule
            .iter()
            .map(|id| {
                adjusted
                    .iter()
                    .find(|t| t.id() == *id)
                    .map(|t| t.prob())
                    .unwrap_or(0.0)
            })
            .sum();
        if sum > 0.99 {
            let scale = 0.99 / sum;
            for t in adjusted.iter_mut() {
                if rule.contains(&t.id()) {
                    *t = UncertainTuple::new(t.id(), t.score(), (t.prob() * scale).max(1e-6))?;
                }
            }
        }
    }
    UncertainTable::new(adjusted, rules)
}

/// Generates a synthetic workload directly as a rank-ordered
/// [`TupleSource`](ttk_uncertain::TupleSource) — the streaming counterpart
/// of [`generate`], equal table for equal configuration.
///
/// # Errors
///
/// As [`generate`].
pub fn generate_source(config: &SyntheticConfig) -> Result<VecSource> {
    Ok(generate(config)?.to_source())
}

/// Generates a synthetic workload **partitioned into `shards` rank-ordered
/// shard streams** (round-robin over the rank order), sharing one group-key
/// namespace — the benchmark input for the sharded scan path. Merging the
/// shards with [`ttk_uncertain::MergeSource::new`] reproduces
/// [`generate_source`] of the same configuration exactly.
///
/// # Errors
///
/// As [`generate`]; `shards == 0` is rejected.
pub fn generate_shard_sources(config: &SyntheticConfig, shards: usize) -> Result<Vec<VecSource>> {
    ttk_uncertain::partition_round_robin(generate(config)?.to_source(), shards)
}

/// Builds ME rules over rank-ordered tuples according to the policy.
fn assign_groups(
    tuples: &[UncertainTuple],
    policy: &MePolicy,
    rng: &mut DataRng,
) -> Vec<Vec<TupleId>> {
    if policy.portion <= 0.0 || policy.group_size.max < 2 {
        return Vec::new();
    }
    let n = tuples.len();
    let mut assigned = vec![false; n];
    let mut rules = Vec::new();
    let mut pos = 0usize;
    while pos < n {
        if assigned[pos] {
            pos += 1;
            continue;
        }
        if rng.uniform() > policy.portion {
            assigned[pos] = true;
            pos += 1;
            continue;
        }
        let size = policy.group_size.sample(rng).max(1) as usize;
        let mut members = vec![pos];
        assigned[pos] = true;
        let mut cursor = pos;
        while members.len() < size {
            let gap = policy.gap.sample(rng).max(1) as usize;
            let mut next = cursor + gap;
            // Skip forward to the first unassigned position.
            while next < n && assigned[next] {
                next += 1;
            }
            if next >= n {
                break;
            }
            assigned[next] = true;
            members.push(next);
            cursor = next;
        }
        if members.len() > 1 {
            rules.push(members.iter().map(|&p| tuples[p].id()).collect());
        }
        pos += 1;
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SyntheticConfig::default();
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.tuples().iter().zip(b.tuples()) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.score(), y.score());
            assert_eq!(x.prob(), y.prob());
        }
        let c = generate(&SyntheticConfig { seed: 1, ..config }).unwrap();
        assert!(a
            .tuples()
            .iter()
            .zip(c.tuples())
            .any(|(x, y)| x.score() != y.score()));
    }

    #[test]
    fn respects_tuple_count_and_probability_bounds() {
        let table = generate(&SyntheticConfig {
            tuples: 500,
            ..SyntheticConfig::default()
        })
        .unwrap();
        assert_eq!(table.len(), 500);
        for t in table.tuples() {
            assert!(t.prob() > 0.0 && t.prob() <= 1.0);
        }
        for g in 0..table.group_count() {
            assert!(table.group_total_probability(g) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn independent_policy_creates_no_groups() {
        let table = generate(&SyntheticConfig {
            me_policy: MePolicy::independent(),
            ..SyntheticConfig::default()
        })
        .unwrap();
        assert_eq!(table.me_tuple_count(), 0);
    }

    #[test]
    fn portion_controls_me_tuple_fraction() {
        let base = SyntheticConfig {
            tuples: 600,
            ..SyntheticConfig::default()
        };
        let mut portions = Vec::new();
        for p in [0.1, 0.3, 0.5, 0.9] {
            let table = generate(&SyntheticConfig {
                me_policy: MePolicy {
                    portion: p,
                    ..MePolicy::default()
                },
                ..base
            })
            .unwrap();
            portions.push(table.me_tuple_portion());
        }
        // Monotonically (roughly) increasing in the requested portion.
        assert!(portions[0] < portions[3]);
        assert!(portions[0] > 0.0 && portions[0] < 0.35);
        assert!(portions[3] > 0.6);
    }

    #[test]
    fn larger_group_sizes_increase_group_width() {
        let small = generate(&SyntheticConfig::default()).unwrap();
        let large = generate(&SyntheticConfig {
            me_policy: MePolicy {
                group_size: IntRange::new(2, 10),
                ..MePolicy::default()
            },
            ..SyntheticConfig::default()
        })
        .unwrap();
        let avg = |t: &UncertainTable| {
            let groups: Vec<usize> = (0..t.group_count())
                .map(|g| t.group_positions(g).len())
                .filter(|&l| l > 1)
                .collect();
            groups.iter().sum::<usize>() as f64 / groups.len() as f64
        };
        assert!(avg(&large) > avg(&small));
    }

    #[test]
    fn correlation_shifts_top_scores_probability() {
        // Positive correlation: high-score tuples are more likely to exist,
        // so the average confidence of the top decile is higher than with
        // negative correlation.
        let top_decile_confidence = |rho: f64| {
            let table = generate(&SyntheticConfig::with_correlation(rho)).unwrap();
            let n = table.len() / 10;
            table.tuples()[..n].iter().map(|t| t.prob()).sum::<f64>() / n as f64
        };
        assert!(top_decile_confidence(0.8) > top_decile_confidence(0.0));
        assert!(top_decile_confidence(0.0) > top_decile_confidence(-0.8));
    }
}
