//! A CarTel-like road-delay workload (§5.1–5.3 substitution).
//!
//! The paper's real dataset consists of road-segment travel-delay
//! measurements collected by the CarTel vehicular testbed in the greater
//! Boston area. That dataset is not publicly available, so this module
//! simulates a structurally equivalent workload:
//!
//! * an *area* contains many road segments, each with a length, a speed
//!   limit and a latent congestion level;
//! * each segment is measured several times; measured delays scatter
//!   (log-normally) around the latent delay;
//! * the measurements of a segment are binned, each bin becoming one
//!   uncertain tuple whose value is the bin average and whose probability is
//!   the bin's relative frequency — exactly the procedure §5.2 describes;
//! * all bins of a segment form one mutual-exclusion group (the segment has
//!   only one true delay), so a top-k answer always contains k distinct road
//!   segments;
//! * the ranking score is the paper's congestion score
//!   `speed_limit / (length / delay)`.
//!
//! The absolute numbers differ from the CarTel data, but the structural
//! properties the evaluation depends on (one ME group per segment, group
//! probabilities summing to one, scores spread within a group) are preserved.

use ttk_uncertain::{Result, SourceTuple, TupleId, UncertainTable, UncertainTuple, VecSource};

use crate::rng::DataRng;

/// One simulated delay measurement bin (i.e. one uncertain tuple) of a road
/// segment.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayBin {
    /// Tuple id used in the generated table.
    pub tuple_id: TupleId,
    /// Average delay of the bin, in seconds.
    pub delay_seconds: f64,
    /// Relative frequency of the bin (the tuple's membership probability).
    pub probability: f64,
    /// The congestion score `speed_limit / (length / delay)`.
    pub congestion_score: f64,
}

/// One simulated road segment.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadSegment {
    /// Stable segment identifier.
    pub segment_id: u64,
    /// Segment length in metres.
    pub length_m: f64,
    /// Speed limit in km/h.
    pub speed_limit_kmh: f64,
    /// Latent congestion factor (1 = free flow, larger = more congested).
    pub congestion_factor: f64,
    /// The measurement bins (mutually exclusive alternatives).
    pub bins: Vec<DelayBin>,
}

impl RoadSegment {
    /// Free-flow travel time of the segment in seconds.
    pub fn free_flow_delay(&self) -> f64 {
        self.length_m / (self.speed_limit_kmh / 3.6)
    }
}

/// A simulated measurement area: the unit the paper's congestion query runs
/// over ("the top-k most congested road segments in an area").
#[derive(Debug, Clone)]
pub struct Area {
    /// The simulated segments.
    pub segments: Vec<RoadSegment>,
    /// The uncertain table over all measurement bins of all segments.
    table: UncertainTable,
}

impl Area {
    /// The uncertain table (scores = congestion scores, one ME group per
    /// segment).
    pub fn table(&self) -> &UncertainTable {
        &self.table
    }

    /// Consumes the area and returns the table.
    pub fn into_table(self) -> UncertainTable {
        self.table
    }

    /// Finds the segment owning a tuple id, if any.
    pub fn segment_of(&self, id: TupleId) -> Option<&RoadSegment> {
        self.segments
            .iter()
            .find(|s| s.bins.iter().any(|b| b.tuple_id == id))
    }

    /// The area's measurement bins as a rank-ordered
    /// [`TupleSource`](ttk_uncertain::TupleSource): all bins of one road
    /// segment share one ME group key (the segment id).
    pub fn tuple_source(&self) -> VecSource {
        let tuples = self
            .segments
            .iter()
            .flat_map(|segment| {
                segment.bins.iter().map(|bin| {
                    SourceTuple::grouped(
                        UncertainTuple::new(
                            bin.tuple_id,
                            bin.congestion_score,
                            bin.probability.clamp(1e-6, 1.0),
                        )
                        .expect("generated bins are valid tuples"),
                        segment.segment_id,
                    )
                })
            })
            .collect();
        VecSource::new(tuples)
    }

    /// The area's measurement bins as `shards` rank-ordered shard streams
    /// (round-robin over the rank order, shared segment-group namespace) —
    /// the partitioned counterpart of [`Area::tuple_source`]. Merging the
    /// shards with [`ttk_uncertain::MergeSource::new`] reproduces the
    /// single-stream source exactly.
    ///
    /// # Errors
    ///
    /// `shards == 0` is rejected.
    pub fn shard_sources(&self, shards: usize) -> Result<Vec<VecSource>> {
        ttk_uncertain::partition_round_robin(self.tuple_source(), shards)
    }
}

/// Configuration of the CarTel-like simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartelConfig {
    /// Number of road segments in the area.
    pub segments: usize,
    /// Minimum and maximum number of measurements per segment.
    pub measurements: (usize, usize),
    /// Minimum and maximum number of bins the measurements are grouped into.
    pub bins: (usize, usize),
    /// Log-normal sigma of the measurement noise around the latent delay.
    pub measurement_noise: f64,
    /// Log-normal sigma of the latent congestion factor across segments.
    pub congestion_spread: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CartelConfig {
    fn default() -> Self {
        CartelConfig {
            segments: 80,
            measurements: (5, 40),
            bins: (1, 6),
            measurement_noise: 0.35,
            congestion_spread: 0.6,
            seed: 0xCAB5,
        }
    }
}

/// Simulates one measurement area.
///
/// # Errors
///
/// Propagates data-model validation errors (which, given the clamping below,
/// indicate a configuration bug rather than bad luck).
pub fn generate_area(config: &CartelConfig) -> Result<Area> {
    let mut rng = DataRng::seed_from_u64(config.seed);
    let speed_limits = [30.0, 40.0, 50.0, 60.0, 80.0, 100.0];
    let mut segments = Vec::with_capacity(config.segments);
    let mut tuples = Vec::new();
    let mut rules: Vec<Vec<TupleId>> = Vec::new();
    let mut next_tuple_id: u64 = 0;

    for segment_id in 0..config.segments as u64 {
        let length_m = rng.uniform_in(150.0, 2500.0);
        let speed_limit_kmh = *rng.choose(&speed_limits);
        // Latent congestion: 1 = free flow; log-normal spread across segments.
        let congestion_factor = 1.0 + rng.log_normal(-0.3, config.congestion_spread);
        let free_flow = length_m / (speed_limit_kmh / 3.6);
        let latent_delay = free_flow * congestion_factor;

        // Simulate measurements and bin them.
        let m = rng.int_in(config.measurements.0 as u64, config.measurements.1 as u64) as usize;
        let mut samples: Vec<f64> = (0..m)
            .map(|_| latent_delay * rng.log_normal(0.0, config.measurement_noise))
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let bin_count = rng
            .int_in(config.bins.0 as u64, config.bins.1 as u64)
            .min(m as u64)
            .max(1) as usize;

        let mut bins = Vec::with_capacity(bin_count);
        let per_bin = m.div_ceil(bin_count);
        let mut rule = Vec::new();
        for chunk in samples.chunks(per_bin) {
            let delay = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let probability = chunk.len() as f64 / m as f64;
            let congestion_score = speed_limit_kmh / (length_m / delay);
            let tuple_id = TupleId(next_tuple_id);
            next_tuple_id += 1;
            tuples.push(UncertainTuple::new(
                tuple_id,
                congestion_score,
                probability.clamp(1e-6, 1.0),
            )?);
            rule.push(tuple_id);
            bins.push(DelayBin {
                tuple_id,
                delay_seconds: delay,
                probability,
                congestion_score,
            });
        }
        if rule.len() > 1 {
            rules.push(rule);
        }
        segments.push(RoadSegment {
            segment_id,
            length_m,
            speed_limit_kmh,
            congestion_factor,
            bins,
        });
    }

    let table = UncertainTable::new(tuples, rules)?;
    Ok(Area { segments, table })
}

/// Convenience wrapper: the table of a simulated area with `segments`
/// segments and the given seed, defaults elsewhere.
pub fn area_table(segments: usize, seed: u64) -> Result<UncertainTable> {
    Ok(generate_area(&CartelConfig {
        segments,
        seed,
        ..CartelConfig::default()
    })?
    .into_table())
}

/// Convenience wrapper: a rank-ordered tuple source over a freshly simulated
/// area, without retaining the area or its table.
pub fn area_source(config: &CartelConfig) -> Result<VecSource> {
    Ok(generate_area(config)?.tuple_source())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_area(&CartelConfig::default()).unwrap();
        let b = generate_area(&CartelConfig::default()).unwrap();
        assert_eq!(a.segments.len(), b.segments.len());
        assert_eq!(a.table().len(), b.table().len());
        for (x, y) in a.table().tuples().iter().zip(b.table().tuples()) {
            assert_eq!(x.score(), y.score());
        }
    }

    #[test]
    fn every_segment_is_one_me_group_summing_to_one() {
        let area = generate_area(&CartelConfig::default()).unwrap();
        for segment in &area.segments {
            let total: f64 = segment.bins.iter().map(|b| b.probability).sum();
            assert!((total - 1.0).abs() < 1e-9, "segment {}", segment.segment_id);
            // All bins of a multi-bin segment share one ME group.
            if segment.bins.len() > 1 {
                let table = area.table();
                let first = table.position(segment.bins[0].tuple_id).unwrap();
                for bin in &segment.bins {
                    let pos = table.position(bin.tuple_id).unwrap();
                    assert_eq!(table.group_index(pos), table.group_index(first));
                }
            }
        }
    }

    #[test]
    fn congestion_scores_match_the_paper_formula() {
        let area = generate_area(&CartelConfig::default()).unwrap();
        for segment in &area.segments {
            for bin in &segment.bins {
                let expected = segment.speed_limit_kmh / (segment.length_m / bin.delay_seconds);
                assert!((bin.congestion_score - expected).abs() < 1e-9);
                assert!(bin.congestion_score > 0.0);
            }
        }
    }

    #[test]
    fn segment_lookup_by_tuple_id() {
        let area = generate_area(&CartelConfig {
            segments: 10,
            ..CartelConfig::default()
        })
        .unwrap();
        let some_tuple = area.segments[3].bins[0].tuple_id;
        assert_eq!(area.segment_of(some_tuple).unwrap().segment_id, 3);
        assert!(area.segment_of(TupleId(9_999_999)).is_none());
    }

    #[test]
    fn area_table_helper_controls_size() {
        let t = area_table(25, 7).unwrap();
        assert!(t.len() >= 25);
        // Most segments have multiple bins, so the table is larger than the
        // number of segments.
        assert!(t.len() > 30);
        assert!(t.me_tuple_portion() > 0.5);
    }

    #[test]
    fn tuple_source_streams_the_same_table() {
        use ttk_uncertain::{GroupKey, TupleSource};

        let area = generate_area(&CartelConfig {
            segments: 20,
            seed: 5,
            ..CartelConfig::default()
        })
        .unwrap();
        let table = area.table();
        let mut source = area.tuple_source();
        let mut tuples = Vec::new();
        let mut keys = Vec::new();
        while let Some(st) = source.next_tuple().unwrap() {
            tuples.push(st.tuple);
            keys.push(st.group);
        }
        let rebuilt = ttk_uncertain::UncertainTable::from_rank_ordered(tuples, &keys).unwrap();
        assert_eq!(rebuilt.len(), table.len());
        for pos in 0..table.len() {
            assert_eq!(rebuilt.tuple(pos), table.tuple(pos));
            assert_eq!(rebuilt.group_members(pos), table.group_members(pos));
        }
        // Group keys are segment ids, so single-bin segments come through as
        // one-member shared groups — structurally identical to singletons.
        assert!(keys.iter().all(|k| matches!(k, GroupKey::Shared(_))));
        // The convenience wrapper produces the same stream.
        let mut wrapper = area_source(&CartelConfig {
            segments: 20,
            seed: 5,
            ..CartelConfig::default()
        })
        .unwrap();
        let first = wrapper.next_tuple().unwrap().unwrap();
        assert_eq!(&first.tuple, rebuilt.tuple(0));
    }

    #[test]
    fn free_flow_delay_is_consistent() {
        let area = generate_area(&CartelConfig::default()).unwrap();
        let s = &area.segments[0];
        let expected = s.length_m / (s.speed_limit_kmh / 3.6);
        assert!((s.free_flow_delay() - expected).abs() < 1e-12);
    }
}
