//! The soldier-monitoring toy dataset of Figure 1.
//!
//! The paper's running example: sensors embedded in soldiers' uniforms
//! estimate how much medical attention each soldier needs. Readings for the
//! same soldier taken at the same time are mutually exclusive; the
//! confidence column is the membership probability.

use ttk_uncertain::{Result, UncertainTable};

/// One row of the Figure 1 table, kept with its descriptive attributes so
/// examples can print a faithful reproduction of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SoldierReading {
    /// Tuple id (T1..T7 in the paper).
    pub tuple_id: u64,
    /// The soldier the reading refers to.
    pub soldier_id: u32,
    /// Timestamp of the reading (HH:MM as printed in the figure).
    pub time: &'static str,
    /// Reported location (grid coordinates).
    pub location: (u32, u32),
    /// Score for medical needs (higher = more urgent).
    pub score: f64,
    /// Confidence (membership probability).
    pub confidence: f64,
}

/// The seven readings of Figure 1.
pub fn readings() -> Vec<SoldierReading> {
    vec![
        SoldierReading {
            tuple_id: 1,
            soldier_id: 1,
            time: "10:50",
            location: (10, 20),
            score: 49.0,
            confidence: 0.4,
        },
        SoldierReading {
            tuple_id: 2,
            soldier_id: 2,
            time: "10:49",
            location: (10, 19),
            score: 60.0,
            confidence: 0.4,
        },
        SoldierReading {
            tuple_id: 3,
            soldier_id: 3,
            time: "10:51",
            location: (9, 25),
            score: 110.0,
            confidence: 0.4,
        },
        SoldierReading {
            tuple_id: 4,
            soldier_id: 2,
            time: "10:50",
            location: (10, 19),
            score: 80.0,
            confidence: 0.3,
        },
        SoldierReading {
            tuple_id: 5,
            soldier_id: 4,
            time: "10:49",
            location: (12, 7),
            score: 56.0,
            confidence: 1.0,
        },
        SoldierReading {
            tuple_id: 6,
            soldier_id: 3,
            time: "10:50",
            location: (9, 25),
            score: 58.0,
            confidence: 0.5,
        },
        SoldierReading {
            tuple_id: 7,
            soldier_id: 2,
            time: "10:50",
            location: (11, 19),
            score: 125.0,
            confidence: 0.3,
        },
    ]
}

/// The uncertain table of Figure 1: readings for the same soldier form one
/// mutual-exclusion group (T2 ⊕ T4 ⊕ T7 and T3 ⊕ T6).
pub fn table() -> Result<UncertainTable> {
    let rows = readings();
    let mut builder = UncertainTable::builder();
    for r in &rows {
        builder.push(ttk_uncertain::UncertainTuple::new(
            r.tuple_id,
            r.score,
            r.confidence,
        )?);
    }
    builder.add_me_rule([2u64, 4, 7]);
    builder.add_me_rule([3u64, 6]);
    builder.build()
}

/// The Figure 1 readings as a rank-ordered
/// [`TupleSource`](ttk_uncertain::TupleSource): readings for the same
/// soldier share one ME group key.
pub fn source() -> Result<ttk_uncertain::VecSource> {
    let tuples = readings()
        .into_iter()
        .map(|r| {
            Ok(ttk_uncertain::SourceTuple::grouped(
                ttk_uncertain::UncertainTuple::new(r.tuple_id, r.score, r.confidence)?,
                u64::from(r.soldier_id),
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ttk_uncertain::VecSource::new(tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::world_count;

    #[test]
    fn table_matches_the_figure() {
        let t = table().unwrap();
        assert_eq!(t.len(), 7);
        assert_eq!(world_count(&t), 18);
        // Soldier 2's readings are one ME group.
        let p2 = t.position(2u64).unwrap();
        assert_eq!(t.group_members(p2).len(), 3);
        let p3 = t.position(3u64).unwrap();
        assert_eq!(t.group_members(p3).len(), 2);
    }

    #[test]
    fn source_streams_the_figure_table() {
        use ttk_uncertain::TupleSource;

        let t = table().unwrap();
        let mut s = source().unwrap();
        let mut pos = 0;
        while let Some(st) = s.next_tuple().unwrap() {
            assert_eq!(&st.tuple, t.tuple(pos));
            pos += 1;
        }
        assert_eq!(pos, t.len());
    }

    #[test]
    fn readings_are_consistent_with_the_table() {
        let rows = readings();
        assert_eq!(rows.len(), 7);
        let t = table().unwrap();
        for r in rows {
            let pos = t.position(r.tuple_id).unwrap();
            assert_eq!(t.tuple(pos).score(), r.score);
            assert_eq!(t.tuple(pos).prob(), r.confidence);
        }
    }
}
