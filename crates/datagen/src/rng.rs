//! Small random-sampling helpers shared by the generators.
//!
//! The paper generated its synthetic data with the R statistical package;
//! here the equivalent samplers (correlated bivariate normals, log-normals,
//! integer ranges) are implemented directly on top of a seedable PRNG so
//! every dataset in the workspace is reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable source of the distributions used by the generators.
#[derive(Debug)]
pub struct DataRng {
    rng: StdRng,
    /// Cached second value of the most recent Box–Muller draw.
    spare_normal: Option<f64>,
}

impl DataRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DataRng {
            rng: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// A standard normal draw (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid log(0) by pulling u1 away from zero.
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(radius * angle.sin());
        radius * angle.cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A correlated pair of normals with the given means, standard deviations
    /// and correlation coefficient `rho ∈ [-1, 1]` (2×2 Cholesky factor).
    pub fn bivariate_normal(
        &mut self,
        mean: (f64, f64),
        std_dev: (f64, f64),
        rho: f64,
    ) -> (f64, f64) {
        let rho = rho.clamp(-1.0, 1.0);
        let z1 = self.standard_normal();
        let z2 = self.standard_normal();
        let x = mean.0 + std_dev.0 * z1;
        let y = mean.1 + std_dev.1 * (rho * z1 + (1.0 - rho * rho).sqrt() * z2);
        (x, y)
    }

    /// A log-normal draw parameterised by the mean and standard deviation of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let idx = self.int_in(0, items.len() as u64 - 1) as usize;
        &items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = DataRng::seed_from_u64(42);
        let mut b = DataRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = DataRng::seed_from_u64(43);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = DataRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.uniform_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
            let i = rng.int_in(2, 5);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn standard_normal_has_roughly_unit_moments() {
        let mut rng = DataRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn bivariate_normal_reproduces_correlation() {
        let mut rng = DataRng::seed_from_u64(11);
        let n = 20_000;
        for &rho in &[0.0, 0.8, -0.8] {
            let pairs: Vec<(f64, f64)> = (0..n)
                .map(|_| rng.bivariate_normal((10.0, -5.0), (2.0, 3.0), rho))
                .collect();
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n as f64;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n as f64;
            let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n as f64).sqrt();
            let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n as f64).sqrt();
            let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n as f64;
            let measured = cov / (sx * sy);
            assert!(
                (measured - rho).abs() < 0.05,
                "rho {rho}: measured {measured}"
            );
            assert!((mx - 10.0).abs() < 0.1);
            assert!((my + 5.0).abs() < 0.15);
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = DataRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = DataRng::seed_from_u64(5);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
