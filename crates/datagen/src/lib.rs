//! # ttk-datagen — workload generators for the typical top-k workspace
//!
//! The paper evaluates on (a) a real road-delay dataset collected by the
//! CarTel project and (b) synthetic data generated with R. Neither source is
//! available here, so this crate provides seeded, structurally faithful
//! substitutes (see `DESIGN.md` at the workspace root for the substitution
//! argument):
//!
//! * [`synthetic`] — bivariate-normal (score, confidence) pairs with a
//!   controllable correlation ρ, score spread σ and ME-group layout
//!   (group size, in-rank gaps, ME portion): the knobs of Figures 11 and
//!   13–16.
//! * [`cartel`] — a road-network delay simulator producing one ME group per
//!   road segment with binned measurements, scored by the paper's congestion
//!   formula: the workload of Figures 8–12.
//! * [`soldier`] — the exact toy table of Figure 1 used throughout §1–§2.
//!
//! All generators take a `u64` seed and are fully deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cartel;
pub mod rng;
pub mod soldier;
pub mod synthetic;

pub use cartel::{
    area_source, area_table, generate_area, Area, CartelConfig, DelayBin, RoadSegment,
};
pub use rng::DataRng;
pub use synthetic::{
    generate, generate_shard_sources, generate_source, IntRange, MePolicy, SyntheticConfig,
};
