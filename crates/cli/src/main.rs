//! `ttk` — a small command line front end for typical top-k queries on
//! uncertain data.
//!
//! Subcommands:
//!
//! * `ttk generate cartel|synthetic [options]` — write a CSV dataset to
//!   stdout (or `--out FILE`).
//! * `ttk query DATA.csv --score EXPR --k K [options]` — run a top-k
//!   distribution query over a CSV relation and print the histogram, the
//!   typical answers and the U-Topk comparison point. Every input form
//!   (positional/`--file` single file, repeatable `--shard`, out-of-core
//!   `--spill-buffer`) resolves to one `Dataset` served by one `Session`.
//! * `ttk explain DATA.csv --score EXPR [--k K]` — print the execution plan
//!   (chosen scan path, row/depth/cost estimates) without running the query;
//!   `--after` executes the query first so the plan also reports the
//!   observed scan depth and the cost model's drift.
//! * `ttk serve-shard <input> --score EXPR --listen ADDR` — a long-lived
//!   concurrent daemon serving the resolved dataset as a rank-ordered tuple
//!   stream over TCP (the wire protocol of `ttk-uncertain`), one replay per
//!   connection, with up to `--max-parallel` connections served at once. A
//!   `ttk query --remote-shard ADDR` (repeatable, mixable with local
//!   `--shard`) scans the served shards as one relation. With
//!   `--coordinator ADDR` the daemon leases its tuple-id base and group-key
//!   namespace instead of taking `--id-base` from the operator.
//! * `ttk coordinator --listen ADDR` — hands out `(id base, namespace)`
//!   leases to registering `serve-shard` daemons, so the shards of one
//!   relation land in disjoint id ranges without operator arithmetic.
//! * `ttk serve NAME=FILE.csv ... --score EXPR --listen ADDR` — a resident-
//!   dataset query daemon: the named datasets are scored once and kept
//!   resident, a bounded worker pool (each worker owning a plan-once/
//!   run-many `Session`) answers whole queries over the wire, and a
//!   concurrent LRU result cache short-circuits repeated (dataset,
//!   algorithm, k, pτ) queries. `ttk query --server ADDR --dataset NAME`
//!   ships a query instead of scanning tuples; `ttk explain --server ADDR
//!   --dataset NAME --after` reports the server-observed scan depth and
//!   cache outcome.
//! * `ttk serve --live NAME` — growing datasets: the daemon keeps a named
//!   append-only log whose sealed segments form epoch-numbered snapshots.
//!   `ttk append --server ADDR --dataset NAME` stages rows into the log
//!   (`--seal` publishes a new epoch), and `ttk watch` holds a standing
//!   top-k subscription the daemon re-evaluates on every epoch advance,
//!   pushing a fresh answer only when its distribution actually shifted.
//! * `ttk soldier` — print the paper's toy example end to end.

use std::collections::HashMap;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ttk_core::{
    bind_daemon_listener, run_daemon, serve_client, serve_stream, Algorithm, AppendLog,
    BatchOptions, ConnectOptions, ConnectionHandler, DaemonControl, DaemonOptions, Dataset,
    DatasetLoader, DatasetProvider, DatasetRegistry, PlanDescription, QueryJob, QueryServeOptions,
    RemoteQueryClient, RemoteShardDataset, ResultCache, ScanPath, ServeOptions, Session,
    ShedPolicy, TopkQuery,
};
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_datagen::soldier;
use ttk_datagen::synthetic::{generate, IntRange, MePolicy, SyntheticConfig};
use ttk_pdb::{
    count_csv_records, parse_expression, stable_group_key, table_to_csv, CsvDataset, CsvOptions,
    DataType, Expr, PTable, Schema, ShardImportOptions, SpillOptions,
};
use ttk_uncertain::{
    wire, LeaseRegistry, PrefetchPolicy, ScoreDistribution, ShardAssignment, SourceTuple,
    TupleSource, UncertainTuple,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:
  ttk soldier
  ttk generate cartel   [--segments N] [--seed S] [--out FILE] [--shards N]
  ttk generate synthetic [--tuples N] [--rho R] [--sigma S] [--me-size LO:HI] [--me-gap LO:HI] [--seed S] [--out FILE] [--shards N]
  ttk query   (DATA.csv | --file DATA.csv | --shard s0.csv --shard s1.csv ...
               | --remote-shard HOST:PORT ... [--shard s.csv ...]
               | --server HOST:PORT --dataset NAME)
              --score EXPR --k K
              [--c C] [--p-tau P] [--max-lines N] [--algorithm main|per-ending|state-expansion|k-combo]
              [--prob-column NAME] [--group-column NAME] [--buckets N]
              [--batch KS] [--threads N] [--spill-buffer TUPLES]
              [--prefetch TUPLES] [--id-base N]
              [--remote-timeout SECS] [--remote-retries N]
              [--no-pushdown] [--bound-update-every TUPLES]
  ttk explain (DATA.csv | --file DATA.csv | --shard ... | --remote-shard ...
               | --server HOST:PORT --dataset NAME --after)
              --score EXPR [--k K] [--p-tau P] [--algorithm ...]
              [--spill-buffer TUPLES] [--prefetch TUPLES] [--after]
              [--remote-timeout SECS] [--remote-retries N]
  ttk serve   [NAME=FILE.csv ...] [--live NAME ...] [--score EXPR]
              --listen HOST:PORT
              [--seal-every ROWS] [--compact-at SEGMENTS]
              [--max-conns N] [--max-parallel N] [--cache-entries N]
              [--cache-ttl-ms MS] [--write-timeout-ms MS]
              [--request-wait-ms MS] [--port-file FILE]
              [--prob-column NAME] [--group-column NAME]
  ttk append  --server HOST:PORT --dataset NAME
              (--row ID:SCORE:PROB[:GROUP] ... | --file DATA.csv --score EXPR)
              [--seal] [--prob-column NAME] [--group-column NAME]
              [--remote-timeout SECS] [--remote-retries N]
  ttk watch   --server HOST:PORT --dataset NAME --k K
              [--c C] [--p-tau P] [--max-lines N] [--algorithm ...]
              [--pushes N] [--buckets N]
              [--remote-timeout SECS] [--remote-retries N]
  ttk serve-shard (DATA.csv | --file DATA.csv | --shard ...) --score EXPR
              --listen HOST:PORT
              [--id-base N [--namespace LABEL] | --coordinator HOST:PORT]
              [--spill-buffer TUPLES]
              [--max-conns N] [--max-parallel N] [--port-file FILE]
              [--write-timeout-ms MS]
              [--pushdown-wait-ms MS] [--block-tuples N]
              [--prob-column NAME] [--group-column NAME]
  ttk coordinator --listen HOST:PORT [--namespace LABEL] [--max-leases N]
              [--port-file FILE] [--write-timeout-ms MS]
  ttk admin   --server HOST:PORT
              (stats | register NAME=FILE.csv | unregister NAME
               | reload NAME | compact NAME)
              [--remote-timeout SECS] [--remote-retries N]

  Every input form resolves to one dataset: a single CSV file (positional or
  --file), the shard files of one partitioned relation (--shard, repeatable;
  scanned under a k-way merge), an out-of-core scan (--spill-buffer T
  external-sorts a single file through runs of at most T tuples spilled to
  temp files), or remote shard servers (--remote-shard, repeatable, mixable
  with local --shard files). --prefetch B reads every shard of a merged scan
  ahead through a B-tuple channel on its own thread. Remote dials connect
  and read under --remote-timeout seconds (default 10/none) and retry
  --remote-retries times (default 3) with exponential backoff, so a server
  still starting up is retried instead of failing the query.

  Remote scans push the Theorem-2 scan gate down to the servers by default:
  the query's (k, p-tau) is announced on connect, v3 servers stop at a
  conservative per-shard bound instead of draining the shard, and the client
  refreshes each server's bound every --bound-update-every tuples pulled
  (default 64) as its merge-side gate tightens. --no-pushdown forces the
  full replay; pre-v3 servers get it automatically. Results are
  bit-identical either way.

  serve-shard scores its input once and then serves it as a rank-ordered
  binary tuple stream — a long-lived daemon handling up to --max-parallel
  connections concurrently (default 8), one full replay per connection,
  until --max-conns connections were served (0 or absent = forever) or
  SIGINT/SIGTERM; both drain in-flight connections before exiting. A slow or
  dead client only ever costs its own worker. --id-base places the served
  rows in the relation's shared tuple-id space (pass the total row count of
  the shards before this one); with --coordinator the daemon registers its
  row count and is leased its id base and group-key namespace instead.
  Group keys are hashed from the group label so independently-served shards
  agree on ME groups. --port-file writes the actually-bound address
  atomically (useful with --listen 127.0.0.1:0). Each connection waits
  --pushdown-wait-ms (default 25) for a pushdown query announcement before
  falling back to the full v1/v2 replay, and logs one summary line (rows
  scanned, tuples shipped, stop reason: gate/exhausted/client-gone). Clients
  that announce columnar block support get the replay packed into block
  frames of at most --block-tuples tuples each (default 512, clamped by the
  client's own announced cap); per-tuple clients are served unchanged.

  coordinator hands out non-overlapping id-base leases (and one shared
  namespace label, --namespace, stamped into every served hello) to
  registering serve-shard daemons; --max-leases N exits after N leases.

  serve answers whole queries instead of replaying tuples: each NAME=FILE
  positional is scored once at startup and kept resident, --max-parallel
  workers (default 4) each own a reusable Session, and a shared result
  cache of --cache-entries answers (default 64, 0 disables) returns
  repeated (dataset, algorithm, k, p-tau) queries without executing —
  bit-identical to the cold run. The accept loop hands connections to
  workers over a rendezvous channel, so a flood queues in the listen
  backlog instead of spawning threads; a client that connects but never
  sends its request is dropped after --request-wait-ms (default 10000)
  and only ever costs its own worker. --max-conns, --port-file and
  SIGINT/SIGTERM draining behave as in serve-shard. On the client,
  `ttk query --server HOST:PORT --dataset NAME --k K` ships the query
  (no --score: the server's datasets are already scored; --batch works
  and re-dials per k), and `ttk explain --server ... --after` prints the
  plan with the server-observed scan depth and result-cache outcome.

  serve --live NAME (repeatable, mixable with NAME=FILE positionals; --score
  is only needed when CSV positionals are given) registers a growing dataset
  backed by an append-only log. `ttk append` stages scored rows into it —
  either literal --row ID:SCORE:PROB[:GROUP] flags (GROUP labels hash to the
  same group keys a CSV import would derive) or a local CSV scored with
  --score — and --seal publishes the staged rows as a new immutable sealed
  segment under the next snapshot epoch (the log also auto-seals whenever
  --seal-every staged rows accumulate, default 1024). Queries always scan
  the latest sealed snapshot (staged rows stay invisible), the result cache
  is keyed on the epoch so an advance is a structural cache miss, and
  `ttk watch` holds a standing subscription: the daemon re-executes the
  query on every epoch advance and pushes the answer only when its
  distribution actually shifted (--pushes N closes the subscription after N
  pushes; the baseline answer counts as the first push). When every worker
  stays busy through the admission grace window, serve now sheds the
  connection with a busy/retry-after frame instead of parking it — clients
  retry with backoff, and shed connections do not count toward --max-conns.

  All three daemons run on one shared runtime: --port-file atomic address
  publication, a bounded worker pool fed over a rendezvous channel,
  --max-conns / signal-requested draining, and --write-timeout-ms MS (0 or
  absent = no timeout) arming a socket write timeout on every accepted
  connection so a stalled reader is shed instead of pinning a worker
  forever.

  ttk admin manages a running serve daemon over the same port (wire v6):
  `stats` prints the resident roster (per-dataset epoch, segment count,
  last compaction epoch) and result-cache counters; `register NAME=FILE.csv`
  imports a CSV server-side and makes it resident (the server must have
  been started with --score so it knows how to score imports; duplicate
  names are refused); `reload NAME` re-imports a file-backed dataset from
  its source path and swaps it in atomically — in-flight queries finish on
  the old snapshot; `unregister NAME` drops a resident dataset; `compact
  NAME` folds every sealed segment of a live dataset into one. serve also
  compacts automatically past --compact-at sealed segments (0 or absent =
  never; minimum 2), and --cache-ttl-ms MS expires cached answers by age
  on top of the epoch/generation invalidation (0 or absent = no TTL).

  --batch KS runs one query per k in KS (comma list `1,5,10` or range
  `LO:HI`) through the cost-ordered parallel batch executor and prints a
  summary table; --k is ignored when --batch is given. Batches work on every
  dataset kind — a spilled file is sorted once and its runs are replayed per
  job; remote shards are re-connected per job.

  explain prints the chosen scan path and the scheduler's row/depth/cost
  estimates without executing (with --after it executes once and reports the
  observed scan depth next to the estimate); generate --shards N writes one
  CSV per shard (FILE.shardI.csv)."
}

/// Parsed `--key value` flags; repeated flags accumulate in order.
type Flags = HashMap<String, Vec<String>>;

/// Flags that take no value (their presence means `true`).
const BOOLEAN_FLAGS: &[&str] = &["after", "no-pushdown", "seal"];

/// Parses `--key value` style flags into a map; bare words are positional.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags: Flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags
                    .entry(name.to_string())
                    .or_default()
                    .push("true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags
                .entry(name.to_string())
                .or_default()
                .push(value.clone());
            i += 2;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// The value of a single-valued flag (the last occurrence wins).
fn get<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags.get(name).and_then(|v| v.last()).map(String::as_str)
}

fn get_parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match get(flags, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --{name}")),
    }
}

fn parse_range(raw: &str) -> Result<IntRange, String> {
    let (lo, hi) = raw
        .split_once(':')
        .ok_or_else(|| format!("expected LO:HI, got `{raw}`"))?;
    let lo: u64 = lo.parse().map_err(|_| format!("invalid range `{raw}`"))?;
    let hi: u64 = hi.parse().map_err(|_| format!("invalid range `{raw}`"))?;
    if lo > hi {
        return Err(format!("empty range `{raw}`"));
    }
    Ok(IntRange::new(lo, hi))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "soldier" => cmd_soldier(),
        "generate" => cmd_generate(rest),
        "query" => cmd_query(rest),
        "explain" => cmd_explain(rest),
        "serve-shard" => cmd_serve_shard(rest),
        "serve" => cmd_serve(rest),
        "append" => cmd_append(rest),
        "watch" => cmd_watch(rest),
        "coordinator" => cmd_coordinator(rest),
        "admin" => cmd_admin(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_soldier() -> Result<(), String> {
    let table = soldier::table().map_err(|e| e.to_string())?;
    let dataset = Dataset::table(table).with_label("soldier (Figure 1)");
    let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
    let answer = Session::new()
        .execute(&dataset, &query)
        .map_err(|e| e.to_string())?;
    println!("The soldier-monitoring example of the paper (k = 2):");
    print_histogram(&answer.distribution, 14, &markers(&answer));
    print_answer_summary(&answer);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let kind = positional
        .first()
        .ok_or("generate needs a dataset kind: cartel or synthetic")?;
    let seed = get_parse(&flags, "seed", 42u64)?;
    let table = match kind.as_str() {
        "cartel" => {
            let segments = get_parse(&flags, "segments", 60usize)?;
            let area = generate_area(&CartelConfig {
                segments,
                seed,
                ..CartelConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let schema = Schema::default()
                .with("segment_id", DataType::Integer)
                .with("speed_limit", DataType::Float)
                .with("length", DataType::Float)
                .with("delay", DataType::Float);
            let mut table = PTable::new("area", schema);
            for segment in &area.segments {
                for bin in &segment.bins {
                    table
                        .insert(
                            vec![
                                (segment.segment_id as i64).into(),
                                segment.speed_limit_kmh.into(),
                                segment.length_m.into(),
                                bin.delay_seconds.into(),
                            ],
                            bin.probability.clamp(1e-6, 1.0),
                            Some(&format!("segment-{}", segment.segment_id)),
                        )
                        .map_err(|e| e.to_string())?;
                }
            }
            table
        }
        "synthetic" => {
            let tuples = get_parse(&flags, "tuples", 300usize)?;
            let rho = get_parse(&flags, "rho", 0.0f64)?;
            let sigma = get_parse(&flags, "sigma", 60.0f64)?;
            let group_size = match get(&flags, "me-size") {
                Some(raw) => parse_range(raw)?,
                None => IntRange::new(2, 3),
            };
            let gap = match get(&flags, "me-gap") {
                Some(raw) => parse_range(raw)?,
                None => IntRange::new(1, 8),
            };
            let table = generate(&SyntheticConfig {
                tuples,
                correlation: rho,
                score_std: sigma,
                me_policy: MePolicy {
                    group_size,
                    gap,
                    portion: 1.0,
                },
                seed,
                ..SyntheticConfig::default()
            })
            .map_err(|e| e.to_string())?;
            // Export as a flat relation: score column + probability + group.
            let schema = Schema::default().with("score", DataType::Float);
            let mut out = PTable::new("synthetic", schema);
            for pos in 0..table.len() {
                let t = table.tuple(pos);
                let group_label = {
                    let members = table.group_members(pos);
                    (members.len() > 1).then(|| format!("g{}", table.group_index(pos)))
                };
                out.insert(vec![t.score().into()], t.prob(), group_label.as_deref())
                    .map_err(|e| e.to_string())?;
            }
            out
        }
        other => return Err(format!("unknown dataset kind `{other}`")),
    };
    let shards = get_parse(&flags, "shards", 1usize)?;
    if shards > 1 {
        let out = get(&flags, "out")
            .ok_or("--shards needs --out FILE (used as the shard file name template)")?;
        for (index, part) in split_rows_round_robin(&table, shards)?.iter().enumerate() {
            let path = shard_path(out, index);
            std::fs::write(&path, table_to_csv(part, &CsvOptions::default()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        println!(
            "wrote {} rows as {shards} shard files: {} .. {}",
            table.len(),
            shard_path(out, 0),
            shard_path(out, shards - 1)
        );
        return Ok(());
    }
    let csv = table_to_csv(&table, &CsvOptions::default());
    match get(&flags, "out") {
        Some(path) => std::fs::write(path, csv).map_err(|e| e.to_string())?,
        None => print!("{csv}"),
    }
    Ok(())
}

/// Partitions a table's rows round-robin into `shards` tables sharing its
/// schema (and therefore its global group-key strings).
fn split_rows_round_robin(table: &PTable, shards: usize) -> Result<Vec<PTable>, String> {
    let mut parts: Vec<PTable> = (0..shards)
        .map(|i| PTable::new(format!("{}_shard{i}", table.name()), table.schema().clone()))
        .collect();
    for (i, row) in table.rows().iter().enumerate() {
        parts[i % shards]
            .insert(row.values.clone(), row.probability, row.group.as_deref())
            .map_err(|e| e.to_string())?;
    }
    Ok(parts)
}

/// Names shard file `index` after the `--out` template: `area.csv` becomes
/// `area.shard0.csv`, an extension-less name gets `.shard0` appended. Only
/// the file-name component is rewritten, so dots in directory names are left
/// alone.
fn shard_path(out: &str, index: usize) -> String {
    let path = std::path::Path::new(out);
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    let sharded = match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.shard{index}.{ext}"),
        _ => format!("{file}.shard{index}"),
    };
    path.with_file_name(sharded).to_string_lossy().into_owned()
}

/// Parses a `--batch` specification: `1,5,10` or `LO:HI` (inclusive).
fn parse_k_list(raw: &str) -> Result<Vec<usize>, String> {
    if let Some((lo, hi)) = raw.split_once(':') {
        let lo: usize = lo
            .parse()
            .map_err(|_| format!("invalid batch range `{raw}`"))?;
        let hi: usize = hi
            .parse()
            .map_err(|_| format!("invalid batch range `{raw}`"))?;
        if lo == 0 || lo > hi {
            return Err(format!("empty batch range `{raw}`"));
        }
        return Ok((lo..=hi).collect());
    }
    let ks: Vec<usize> = raw
        .split(',')
        .map(|part| part.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid batch list `{raw}`"))?;
    if ks.contains(&0) {
        return Err(format!("batch list `{raw}` must contain positive k values"));
    }
    Ok(ks)
}

/// The query-shape flags shared by `ttk query` and `ttk explain`.
struct QuerySpec {
    topk: TopkQuery,
    expression_text: String,
}

/// Parses the query-shape flags alone (k, c, p-tau, max-lines, algorithm) —
/// everything a `--server` query ships over the wire, where no local
/// scoring expression applies.
fn parse_topk_params(flags: &Flags, k: usize) -> Result<TopkQuery, String> {
    let c = get_parse(flags, "c", 3usize)?;
    let p_tau = get_parse(flags, "p-tau", 1e-3f64)?;
    let max_lines = get_parse(flags, "max-lines", 200usize)?;
    let algorithm = match get(flags, "algorithm") {
        None | Some("main") => Algorithm::Main,
        Some("per-ending") => Algorithm::MainPerEnding,
        Some("state-expansion") => Algorithm::StateExpansion,
        Some("k-combo") => Algorithm::KCombo,
        Some(other) => return Err(format!("unknown algorithm `{other}`")),
    };
    Ok(TopkQuery::new(k)
        .with_typical_count(c)
        .with_p_tau(p_tau)
        .with_max_lines(max_lines)
        .with_algorithm(algorithm))
}

/// Parses the query-parameter flags (everything except the input form).
fn parse_query_spec(flags: &Flags, k: usize) -> Result<QuerySpec, String> {
    let score = get(flags, "score").ok_or("--score is required")?;
    Ok(QuerySpec {
        topk: parse_topk_params(flags, k)?,
        expression_text: score.to_string(),
    })
}

/// Rejects the local-input flags that conflict with `--server` mode, where
/// the whole query ships to the daemon's resident, already-scored dataset.
fn reject_local_input_flags(positional: &[String], flags: &Flags) -> Result<(), String> {
    if !positional.is_empty()
        || get(flags, "file").is_some()
        || flags.contains_key("shard")
        || flags.contains_key("remote-shard")
        || get(flags, "spill-buffer").is_some()
    {
        return Err(
            "--server ships the whole query to the daemon's resident dataset; drop the local \
             input flags (positional file, --file, --shard, --remote-shard, --spill-buffer)"
                .to_string(),
        );
    }
    if get(flags, "score").is_some() {
        return Err(
            "--server queries run against the daemon's already-scored dataset; drop --score \
             (the scoring expression was fixed when the server loaded the dataset)"
                .to_string(),
        );
    }
    Ok(())
}

/// The `--server`/`--dataset` client of `query`/`explain`.
fn server_query_client(server: &str, flags: &Flags) -> Result<(RemoteQueryClient, String), String> {
    let dataset = get(flags, "dataset")
        .ok_or("--server queries name a resident dataset: add --dataset NAME")?
        .to_string();
    let client = RemoteQueryClient::new(server).with_connect_options(parse_connect_options(flags)?);
    Ok((client, dataset))
}

/// The remote-dial options of `query`/`explain`: `--remote-timeout SECS`
/// bounds both the connect and the per-read wait on every shard server
/// connection, `--remote-retries N` sets how many times a failed dial or
/// lost handshake is retried (exponential backoff between attempts).
fn parse_connect_options(flags: &Flags) -> Result<ConnectOptions, String> {
    let mut connect = ConnectOptions::default();
    if let Some(raw) = get(flags, "remote-timeout") {
        let secs: f64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --remote-timeout"))?;
        let timeout = Duration::try_from_secs_f64(secs)
            .ok()
            .filter(|t| !t.is_zero())
            .ok_or_else(|| {
                format!("--remote-timeout must be a positive number of seconds, got `{raw}`")
            })?;
        connect = connect.with_timeout(timeout);
    }
    connect.retries = get_parse(flags, "remote-retries", connect.retries)?;
    Ok(connect)
}

/// The CSV metadata-column options from the shared flags.
fn parse_csv_options(flags: &Flags) -> CsvOptions {
    CsvOptions {
        probability_column: get(flags, "prob-column")
            .unwrap_or("probability")
            .to_string(),
        group_column: Some(
            get(flags, "group-column")
                .unwrap_or("group_key")
                .to_string(),
        ),
    }
}

/// Resolves the input flags of `query`/`explain`/`serve-shard` to exactly
/// one [`Dataset`].
///
/// The input forms — a single CSV file (positional or `--file`), a shard
/// set (repeatable `--shard`), the out-of-core scan of a single file
/// (`--spill-buffer`) and remote shard servers (repeatable `--remote-shard`,
/// mixable with `--shard`) — are mutually constrained; any conflicting
/// combination is rejected with one error naming the dataset kind each flag
/// resolves to. `serving` marks the serve-shard mode: remote inputs are
/// rejected and group keys are hashed so independently-served shards agree
/// on ME groups without coordination.
fn resolve_dataset(
    positional: &[String],
    flags: &Flags,
    csv_options: &CsvOptions,
    score: &str,
    serving: bool,
) -> Result<Dataset, String> {
    let shard_files: Vec<String> = flags.get("shard").cloned().unwrap_or_default();
    let remote_shards: Vec<String> = flags.get("remote-shard").cloned().unwrap_or_default();
    let flag_file = get(flags, "file");
    if positional.len() > 1 {
        return Err(format!(
            "unexpected extra positional arguments {:?}: a query scans one dataset — pass a \
             single CSV file, or use --shard (repeatable) for the shard files of one \
             partitioned relation",
            &positional[1..]
        ));
    }
    let positional_file = positional.first().map(String::as_str);
    let spill_buffer = get_parse(flags, "spill-buffer", 0usize)?;
    let prefetch_buffer = get_parse(flags, "prefetch", 0usize)?;
    let prefetch = if prefetch_buffer > 0 {
        PrefetchPolicy::per_shard(prefetch_buffer)
    } else {
        PrefetchPolicy::Off
    };
    let id_base = get_parse(flags, "id-base", 0u64)?;
    let expression = parse_expression(score).map_err(|e| e.to_string())?;

    if let (Some(p), Some(f)) = (positional_file, flag_file) {
        return Err(format!(
            "conflicting input flags: the positional argument `{p}` and --file `{f}` both \
             resolve to a single-file CSV dataset; pass the file once"
        ));
    }
    let file = flag_file.or(positional_file);

    if !remote_shards.is_empty() {
        if serving {
            return Err(
                "serve-shard serves local data; --remote-shard only applies to query/explain"
                    .to_string(),
            );
        }
        if let Some(file) = file {
            return Err(format!(
                "conflicting input flags: `{file}` resolves to a single-file CSV dataset, \
                 but --remote-shard was also given ({} servers resolving to a remote shard \
                 dataset); use --shard for local shards merged with remote ones",
                remote_shards.len()
            ));
        }
        if spill_buffer > 0 {
            return Err(
                "conflicting input flags: --spill-buffer configures the external sort of a \
                 single-file CSV dataset, but the input resolved to a remote shard dataset; \
                 spill on the serving side (ttk serve-shard --spill-buffer) instead"
                    .to_string(),
            );
        }
        let mut dataset = RemoteShardDataset::new(remote_shards)
            .with_prefetch(prefetch)
            .with_connect_options(parse_connect_options(flags)?)
            .with_pushdown(!flags.contains_key("no-pushdown"))
            .with_bound_update_every(get_parse(flags, "bound-update-every", 64u64)?.max(1));
        if !shard_files.is_empty() {
            // Local shards merged into the same relation: hashed group keys
            // (matching the serving side) and the caller-provided id base.
            // Wrapped in a CsvDataset so the scoring pass is cached — every
            // open (e.g. each job of a --batch) replays the cached sources
            // as one pre-merged stream instead of re-reading the files.
            let count = shard_files.len();
            let local = CsvDataset::from_shard_paths(shard_files, csv_options.clone(), expression)
                .with_import(ShardImportOptions {
                    first_tuple_id: id_base,
                    hashed_group_keys: true,
                });
            dataset = dataset.with_local_shards(count, move || {
                Ok(vec![Box::new(local.open()?) as Box<dyn TupleSource + Send>])
            });
        }
        return Ok(dataset.into_dataset());
    }

    let import = ShardImportOptions {
        first_tuple_id: id_base,
        hashed_group_keys: serving,
    };
    match (file, shard_files.is_empty()) {
        (Some(file), false) => Err(format!(
            "conflicting input flags: `{file}` resolves to a single-file CSV dataset, but \
             --shard was also given ({} shard files resolving to a sharded CSV dataset); \
             pass exactly one input form",
            shard_files.len()
        )),
        (None, true) => Err(
            "no input: pass a CSV file (positional or --file), --shard files, or \
             --remote-shard servers"
                .to_string(),
        ),
        (Some(file), true) => {
            let dataset = CsvDataset::from_path(file, csv_options.clone(), expression)
                .with_prefetch(prefetch)
                .with_import(import);
            Ok(if spill_buffer > 0 {
                dataset
                    .with_spill(SpillOptions::with_run_buffer(spill_buffer))
                    .map_err(|e| e.to_string())?
                    .into_dataset()
            } else {
                dataset.into_dataset()
            })
        }
        (None, false) => {
            if spill_buffer > 0 {
                return Err(format!(
                    "conflicting input flags: --spill-buffer configures the external sort of \
                     a single-file CSV dataset, but the input resolved to a sharded CSV \
                     dataset ({} --shard files, loaded as in-memory shard streams); drop \
                     --spill-buffer or pass a single file",
                    shard_files.len()
                ));
            }
            Ok(
                CsvDataset::from_shard_paths(shard_files, csv_options.clone(), expression)
                    .with_prefetch(prefetch)
                    .with_import(import)
                    .into_dataset(),
            )
        }
    }
}

/// Set by the SIGINT/SIGTERM handler; the daemon accept loops poll it and
/// drain in-flight connections instead of dying mid-stream.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs the graceful-shutdown signal handler (SIGINT + SIGTERM). The
/// first signal requests a drain (an async-signal-safe atomic store); a
/// second signal exits immediately — the escape hatch when the drain is
/// held up by a worker blocked on a client that will never read.
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn _exit(status: i32) -> !;
    }
    extern "C" fn mark_shutdown(_signal: i32) {
        if SHUTDOWN.swap(true, Ordering::SeqCst) {
            // Second signal: the operator insists. `_exit` is
            // async-signal-safe; 130 is the conventional fatal-signal code.
            unsafe { _exit(130) }
        }
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal`/`_exit` are provided by the C library std already
    // links; the handler is async-signal-safe (atomic swap, `_exit`).
    unsafe {
        signal(SIGINT, mark_shutdown);
        signal(SIGTERM, mark_shutdown);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// The optional per-socket write timeout of a daemon (`--write-timeout-ms`,
/// default 0 = off): how long a worker's blocked reply write may stall on a
/// client that stopped reading before the connection is shed and the worker
/// freed.
fn parse_write_timeout(flags: &Flags) -> Result<Option<Duration>, String> {
    Ok(match get_parse(flags, "write-timeout-ms", 0u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    })
}

/// Counts the data records of the CSV files an input form resolves to — the
/// row count a serve-shard daemon registers with the coordinator, obtained
/// without scoring the relation. Delegates to
/// [`ttk_pdb::count_csv_records`], which shares the record discipline of
/// every import path, so the leased id range always covers exactly the rows
/// the (leased) scoring pass then assigns.
fn count_input_rows(positional: &[String], flags: &Flags) -> Result<u64, String> {
    let mut paths: Vec<&str> = Vec::new();
    if let Some(file) = get(flags, "file").or(positional.first().map(String::as_str)) {
        paths.push(file);
    }
    if let Some(shards) = flags.get("shard") {
        paths.extend(shards.iter().map(String::as_str));
    }
    if paths.is_empty() {
        return Err("no input to count rows of".to_string());
    }
    let mut rows = 0u64;
    for path in paths {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        rows += count_csv_records(std::io::BufReader::new(file))
            .map_err(|e| format!("cannot count rows of {path}: {e}"))?;
    }
    Ok(rows)
}

/// Registers with the coordinator at `coordinator` and returns the leased
/// `(id base, namespace)`. The coordinator may still be starting (daemons
/// and coordinator are typically launched together), so the registration
/// dial retries briefly with exponential backoff.
fn obtain_lease(coordinator: &str, rows: u64, label: &str) -> Result<ShardAssignment, String> {
    let mut delay = Duration::from_millis(50);
    let mut last = None;
    for attempt in 0..6 {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        let result = TcpStream::connect(coordinator)
            .map_err(|e| format!("dialing: {e}"))
            .and_then(|stream| {
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .map_err(|e| e.to_string())?;
                wire::write_register(&mut (&stream), rows, label).map_err(|e| e.to_string())?;
                wire::read_lease(&mut (&stream)).map_err(|e| e.to_string())
            });
        match result {
            Ok(lease) => return Ok(lease),
            Err(e) => last = Some(e),
        }
    }
    Err(format!(
        "registering with coordinator {coordinator}: {}",
        last.expect("at least one attempt ran")
    ))
}

/// The `ttk serve-shard` handler on the shared daemon runtime: every
/// connection gets a fresh replay of the resolved dataset through the
/// version-negotiating [`serve_stream`] — a pushdown client announcing the
/// query gets the gate-bounded replay over a v3 session, anything else the
/// full replay behind the daemon's v1/v2 hello (with the assignment
/// advertised when the daemon holds one). Failures — a poisoned socket, a
/// dataset open error — are isolated to their connection by the runtime.
struct ShardHandler {
    dataset: Dataset,
    assignment: Option<ShardAssignment>,
    options: ServeOptions,
}

impl ConnectionHandler for ShardHandler {
    type Worker = ();

    fn worker(&self, _worker_id: usize) {}

    fn serve(
        &self,
        _worker: &mut (),
        stream: TcpStream,
        _control: &DaemonControl<'_>,
    ) -> Result<String, String> {
        self.dataset
            .open()
            .and_then(|mut handle| {
                serve_stream(stream, &mut handle, self.assignment.as_ref(), &self.options)
            })
            .map(|summary| {
                format!(
                    "scanned {} rows, shipped {} tuples, stopped: {} ({})",
                    summary.scanned,
                    summary.shipped,
                    summary.reason,
                    if summary.pushdown {
                        "scan-gate pushdown"
                    } else {
                        "full replay"
                    }
                )
            })
            // A failing replay (or a peer violating the protocol) is normal
            // operation for a streaming server, not a reason to exit.
            .map_err(|e| e.to_string())
    }
}

/// `ttk serve-shard`: score the resolved dataset once, then serve it as a
/// long-lived concurrent daemon — a framed binary tuple stream over TCP,
/// one full replay per accepted connection (replayable datasets cache their
/// scoring pass / spill index, so replays are cheap), up to `--max-parallel`
/// connections at once. Exits after `--max-conns` connections or on
/// SIGINT/SIGTERM, joining in-flight connections first; a slow or dead
/// client only ever costs its own worker thread.
fn cmd_serve_shard(args: &[String]) -> Result<(), String> {
    let (positional, mut flags) = parse_flags(args)?;
    let score = get(&flags, "score")
        .ok_or("--score is required")?
        .to_string();
    let listen = get(&flags, "listen")
        .ok_or("--listen HOST:PORT is required")?
        .to_string();
    let max_conns = get_parse(&flags, "max-conns", 0usize)?;
    let max_parallel = get_parse(&flags, "max-parallel", 8usize)?;
    if max_parallel == 0 {
        return Err("--max-parallel must be at least 1".to_string());
    }
    let serve_options = ServeOptions {
        pushdown_wait: Duration::from_millis(get_parse(&flags, "pushdown-wait-ms", 25u64)?.max(1)),
        block_tuples: get_parse(&flags, "block-tuples", ServeOptions::default().block_tuples)?
            .max(1),
        ..ServeOptions::default()
    };
    let csv_options = parse_csv_options(&flags);

    // The daemon's assignment: a coordinator lease (id base + namespace),
    // or an operator-pinned namespace with the operator's --id-base. Served
    // in a v2 hello so clients can cross-check their shard set; absent both,
    // the daemon speaks plain v1 hellos that any client decodes.
    let assignment: Option<ShardAssignment> = match get(&flags, "coordinator") {
        Some(coordinator) => {
            if get(&flags, "id-base").is_some() {
                return Err(
                    "conflicting flags: --coordinator leases the id base; drop --id-base"
                        .to_string(),
                );
            }
            if get(&flags, "namespace").is_some() {
                return Err(
                    "conflicting flags: --coordinator leases the namespace (set it on the \
                     coordinator with `ttk coordinator --namespace`); drop --namespace"
                        .to_string(),
                );
            }
            let rows = count_input_rows(&positional, &flags)?;
            let label = positional
                .first()
                .map(String::as_str)
                .or_else(|| get(&flags, "file"))
                .unwrap_or("shard set")
                .to_string();
            let lease = obtain_lease(coordinator, rows, &label)?;
            eprintln!(
                "leased id base {} in namespace `{}` from {coordinator} ({rows} rows)",
                lease.id_base, lease.namespace
            );
            // The scoring pass below places rows at the leased id base.
            flags.insert("id-base".to_string(), vec![lease.id_base.to_string()]);
            Some(lease)
        }
        None => get(&flags, "namespace")
            .map(|namespace| {
                Ok::<_, String>(ShardAssignment {
                    id_base: get_parse(&flags, "id-base", 0u64)?,
                    namespace: namespace.to_string(),
                })
            })
            .transpose()?,
    };

    let dataset = resolve_dataset(&positional, &flags, &csv_options, &score, true)?;

    let (listener, bound) = bind_daemon_listener(&listen, get(&flags, "port-file"))?;
    install_shutdown_handler();
    eprintln!(
        "serving dataset `{}` on {bound} ({max_parallel} parallel connections{})",
        dataset.label(),
        if max_conns > 0 {
            format!(", exiting after {max_conns}")
        } else {
            String::new()
        }
    );

    let handler = ShardHandler {
        dataset,
        assignment,
        options: serve_options,
    };
    let daemon_options = DaemonOptions {
        workers: max_parallel,
        max_conns,
        write_timeout: parse_write_timeout(&flags)?,
        // Streaming clients block on their replay anyway: when every worker
        // is busy the flood waits in the listen backlog, as it always has.
        shed: ShedPolicy::Block,
    };
    run_daemon(&listener, &handler, &daemon_options, &SHUTDOWN)?;
    Ok(())
}

/// Builds the loader that (re-)imports `path` with the daemon's CSV options
/// and score expression. Registered alongside every file-backed dataset so
/// the admin plane's `reload` verb can re-import it without a restart, and
/// the building block of the admin `register` importer.
fn csv_loader(path: String, csv_options: CsvOptions, expression: Expr) -> DatasetLoader {
    Box::new(move || {
        let csv = CsvDataset::from_path(path.clone(), csv_options.clone(), expression.clone());
        csv.warm()
            .map_err(|e| ttk_uncertain::Error::Source(format!("cannot load {path}: {e}")))?;
        Ok(csv.into_dataset())
    })
}

/// The `ttk serve` handler on the shared daemon runtime: each worker owns
/// one plan-once/run-many [`Session`], and every connection — a query, an
/// append, a subscription or an admin request — is answered by
/// [`serve_client`] from the shared registry and result cache. When every
/// worker stays busy, shed connections get a busy/retry-after frame.
struct QueryHandler {
    registry: DatasetRegistry,
    cache: ResultCache,
    options: QueryServeOptions,
}

impl ConnectionHandler for QueryHandler {
    type Worker = Session;

    fn worker(&self, _worker_id: usize) -> Session {
        Session::new()
    }

    fn serve(
        &self,
        session: &mut Session,
        stream: TcpStream,
        control: &DaemonControl<'_>,
    ) -> Result<String, String> {
        // Per-connection error isolation: a stalled client, a garbled
        // request or a failing execution is logged and the worker moves on.
        serve_client(
            stream,
            &self.registry,
            &self.cache,
            session,
            &self.options,
            control.shutdown_flag(),
        )
        .map(|outcome| outcome.to_string())
        .map_err(|e| e.to_string())
    }

    fn shed(&self, stream: &TcpStream, retry_after_ms: u64) {
        let _ = wire::write_busy(&mut &*stream, retry_after_ms);
    }
}

/// `ttk serve`: a resident-dataset query daemon. Each `NAME=FILE.csv`
/// positional is scored once at startup (failing fast on bad inputs) and
/// registered under its name; a bounded pool of workers — each owning one
/// plan-once/run-many [`Session`] — answers whole queries over the wire,
/// consulting a shared LRU result cache so repeated (dataset, algorithm,
/// k, pτ) queries skip execution entirely. Connections are handed to
/// workers over a rendezvous channel: when every worker is busy the accept
/// loop stops accepting and the flood queues in the listen backlog
/// (admission control), and a stalled client is dropped after
/// `--request-wait-ms` so it only ever costs its own worker. Exits after
/// `--max-conns` accepted connections or on SIGINT/SIGTERM, draining
/// in-flight queries first.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    /// Handoff polls (5 ms apart) before a connection nobody can serve is
    /// shed with a busy frame instead of waiting for a worker.
    const BUSY_GRACE_POLLS: usize = 10;
    /// The retry-after hint stamped into shed busy frames.
    const BUSY_RETRY_AFTER_MS: u64 = 100;
    let (positional, flags) = parse_flags(args)?;
    let live_names: Vec<String> = flags.get("live").cloned().unwrap_or_default();
    let listen = get(&flags, "listen")
        .ok_or("--listen HOST:PORT is required")?
        .to_string();
    if positional.is_empty() && live_names.is_empty() {
        return Err(
            "no datasets: pass NAME=FILE.csv positionals naming the datasets to keep resident, \
             or --live NAME for growing datasets fed by `ttk append`"
                .to_string(),
        );
    }
    let max_conns = get_parse(&flags, "max-conns", 0usize)?;
    let max_parallel = get_parse(&flags, "max-parallel", 4usize)?;
    if max_parallel == 0 {
        return Err("--max-parallel must be at least 1".to_string());
    }
    let cache_entries = get_parse(&flags, "cache-entries", 64usize)?;
    let seal_every = get_parse(&flags, "seal-every", 1024usize)?;
    if seal_every == 0 {
        return Err("--seal-every must be at least 1".to_string());
    }
    let compact_at = get_parse(&flags, "compact-at", 0usize)?;
    if compact_at == 1 {
        return Err("--compact-at must be 0 (disabled) or at least 2 sealed segments".to_string());
    }
    let cache_ttl = match get_parse(&flags, "cache-ttl-ms", 0u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let serve_options = QueryServeOptions {
        request_wait: Duration::from_millis(get_parse(&flags, "request-wait-ms", 10_000u64)?),
        ..QueryServeOptions::default()
    };
    let csv_options = parse_csv_options(&flags);
    let expression = get(&flags, "score")
        .map(|score| parse_expression(score).map_err(|e| e.to_string()))
        .transpose()?;

    let mut registry = DatasetRegistry::new();
    if !positional.is_empty() {
        let expression = expression
            .clone()
            .ok_or("--score is required to score the NAME=FILE.csv datasets")?;
        for spec in &positional {
            let (name, path) = spec.split_once('=').ok_or_else(|| {
                format!(
                    "expected NAME=FILE.csv, got `{spec}` (name the dataset clients will query)"
                )
            })?;
            if name.is_empty() || path.is_empty() {
                return Err(format!("expected NAME=FILE.csv, got `{spec}`"));
            }
            let csv = CsvDataset::from_path(path, csv_options.clone(), expression.clone());
            // Warm eagerly: a missing file or malformed CSV fails the daemon
            // here, before it accepts a query, and the scoring pass is cached
            // so the first query opens warm.
            csv.warm()
                .map_err(|e| format!("cannot load dataset `{name}` from {path}: {e}"))?;
            let dataset = csv.into_dataset().with_label(name);
            // The loader lets the admin plane's `reload` verb re-import this
            // dataset from its original path without a restart.
            let loader = csv_loader(path.to_string(), csv_options.clone(), expression.clone());
            let id = registry
                .register_with_loader(name, dataset, loader)
                .map_err(|e| e.to_string())?;
            eprintln!("dataset `{name}` resident from {path} (dataset id {id})");
        }
    }
    for name in &live_names {
        let log = Arc::new(AppendLog::new(seal_every).with_compact_at(compact_at));
        let id = registry
            .register_live(name, log)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "dataset `{name}` live (append-only, auto-seals every {seal_every} staged rows{}, \
             dataset id {id})",
            if compact_at > 0 {
                format!(", compacts past {compact_at} sealed segments")
            } else {
                String::new()
            }
        );
    }
    // With a score expression the daemon can import datasets at runtime:
    // the admin plane's `register NAME=FILE.csv` verb scores the server-side
    // file exactly like a startup NAME=FILE.csv positional.
    if let Some(expression) = expression {
        let importer_options = csv_options.clone();
        registry.set_importer(Box::new(move |path| {
            let loader = csv_loader(
                path.to_string(),
                importer_options.clone(),
                expression.clone(),
            );
            let dataset = loader()?;
            Ok((dataset, loader))
        }));
    }
    let registry = registry;
    let cache = ResultCache::new(cache_entries).with_ttl(cache_ttl);
    let (listener, bound) = bind_daemon_listener(&listen, get(&flags, "port-file"))?;
    install_shutdown_handler();
    eprintln!(
        "serving {} resident dataset(s) on {bound} ({max_parallel} workers, result cache of \
         {cache_entries} entries{})",
        registry.len(),
        if max_conns > 0 {
            format!(", exiting after {max_conns} connections")
        } else {
            String::new()
        }
    );

    let handler = QueryHandler {
        registry,
        cache,
        options: serve_options,
    };
    let daemon_options = DaemonOptions {
        workers: max_parallel,
        max_conns,
        write_timeout: parse_write_timeout(&flags)?,
        // A pool that stays busy through the whole grace window sheds the
        // connection with a busy/retry-after frame instead of parking it —
        // the client retries with backoff, and the daemon never accumulates
        // a queue of connections nobody is draining.
        shed: ShedPolicy::Busy {
            grace_polls: BUSY_GRACE_POLLS,
            retry_after_ms: BUSY_RETRY_AFTER_MS,
        },
    };
    run_daemon(&listener, &handler, &daemon_options, &SHUTDOWN)?;
    eprintln!(
        "result cache: {} hits, {} misses, {} evictions, {} expirations",
        handler.cache.hits(),
        handler.cache.misses(),
        handler.cache.evictions(),
        handler.cache.expirations()
    );
    Ok(())
}

/// The `ttk coordinator` handler on the shared daemon runtime. A pool of
/// exactly one worker processes registrations strictly in arrival order, so
/// the id ranges of the registered shards stay contiguous and
/// non-overlapping; the worker owns the [`LeaseRegistry`] plus the count of
/// leases *delivered* (lease frame written without error). A registrant
/// dying mid-exchange advances the id watermark — re-leasing a range the
/// peer may have received risks overlap, while a gap in the id space is
/// harmless — but must not count toward `--max-leases`, or a failed
/// delivery would exit the coordinator before every daemon got a lease.
struct CoordinatorHandler {
    namespace: String,
    max_leases: usize,
}

impl ConnectionHandler for CoordinatorHandler {
    type Worker = (LeaseRegistry, usize);

    fn worker(&self, _worker_id: usize) -> (LeaseRegistry, usize) {
        (LeaseRegistry::new(self.namespace.clone()), 0)
    }

    fn serve(
        &self,
        worker: &mut (LeaseRegistry, usize),
        stream: TcpStream,
        control: &DaemonControl<'_>,
    ) -> Result<String, String> {
        let (registry, delivered) = worker;
        // Per-registration error isolation: a malformed or stalled
        // registrant is logged and dropped; it never kills the lease loop
        // (the read timeout bounds how long it can stall the line).
        let (rows, label, lease) = stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())
            .and_then(|_| wire::read_register(&mut (&stream)).map_err(|e| e.to_string()))
            .and_then(|(rows, label)| {
                let lease = registry.register(rows);
                wire::write_lease(&mut (&stream), &lease)
                    .map_err(|e| e.to_string())
                    .map(|_| (rows, label, lease))
            })?;
        *delivered += 1;
        if self.max_leases > 0 && *delivered >= self.max_leases {
            eprintln!("--max-leases reached after {delivered} leases");
            control.request_drain();
        }
        Ok(format!(
            "leased id base {} (`{label}`, {rows} rows)",
            lease.id_base
        ))
    }
}

/// `ttk coordinator`: hands out `(id base, namespace)` leases to
/// registering `serve-shard` daemons. Registrations are a two-frame
/// exchange (register in, lease out) processed in arrival order, so the id
/// ranges of the registered shards are contiguous and non-overlapping —
/// exactly the arithmetic operators previously did by hand with --id-base.
fn cmd_coordinator(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!(
            "unexpected positional arguments {positional:?}: the coordinator serves leases, \
             not data"
        ));
    }
    let listen = get(&flags, "listen").ok_or("--listen HOST:PORT is required")?;
    let namespace = get(&flags, "namespace")
        .unwrap_or("ttk-coordinated")
        .to_string();
    let max_leases = get_parse(&flags, "max-leases", 0usize)?;

    let (listener, bound) = bind_daemon_listener(listen, get(&flags, "port-file"))?;
    install_shutdown_handler();
    eprintln!("coordinating namespace `{namespace}` on {bound}");

    let handler = CoordinatorHandler {
        namespace,
        max_leases,
    };
    let daemon_options = DaemonOptions {
        workers: 1,
        max_conns: 0,
        write_timeout: parse_write_timeout(&flags)?,
        shed: ShedPolicy::Block,
    };
    run_daemon(&listener, &handler, &daemon_options, &SHUTDOWN)?;
    Ok(())
}

/// `ttk admin`: ships one management verb to a running `ttk serve` daemon
/// over the wire-v6 admin plane and prints the server's report.
fn cmd_admin(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let server = get(&flags, "server").ok_or("--server HOST:PORT is required")?;
    let mut words = positional.iter().map(String::as_str);
    let verb = words.next().ok_or(
        "missing admin verb: expected stats, register NAME=FILE.csv, unregister NAME, \
         reload NAME or compact NAME",
    )?;
    let mut named = |verb: wire::AdminVerb| -> Result<wire::AdminRequest, String> {
        let name = words
            .next()
            .ok_or_else(|| format!("{verb} needs a dataset NAME"))?;
        Ok(wire::AdminRequest {
            verb,
            name: name.to_string(),
            arg: String::new(),
        })
    };
    let request = match verb {
        "stats" => wire::AdminRequest {
            verb: wire::AdminVerb::Stats,
            name: String::new(),
            arg: String::new(),
        },
        "register" => {
            let spec = words.next().ok_or("register needs NAME=FILE.csv")?;
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("expected NAME=FILE.csv, got `{spec}`"))?;
            if name.is_empty() || path.is_empty() {
                return Err(format!("expected NAME=FILE.csv, got `{spec}`"));
            }
            wire::AdminRequest {
                verb: wire::AdminVerb::Register,
                name: name.to_string(),
                arg: path.to_string(),
            }
        }
        "unregister" => named(wire::AdminVerb::Unregister)?,
        "reload" => named(wire::AdminVerb::Reload)?,
        "compact" => named(wire::AdminVerb::Compact)?,
        other => {
            return Err(format!(
                "unknown admin verb `{other}`: expected stats, register, unregister, \
                 reload or compact"
            ))
        }
    };
    if let Some(extra) = words.next() {
        return Err(format!("unexpected argument `{extra}` after {verb}"));
    }
    let client =
        RemoteQueryClient::new(server).with_connect_options(parse_connect_options(&flags)?);
    let report = client.admin(&request).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

/// One line summarising what was scanned, from the post-execution plan.
fn describe_scan(plan: &PlanDescription) -> String {
    let rows = plan
        .rows
        .map(|r| r.to_string())
        .unwrap_or_else(|| "?".to_string());
    match plan.path {
        ScanPath::InMemory => format!("{rows} rows (in-memory table) from {}", plan.dataset),
        ScanPath::Stream => format!("{rows} rows loaded from {}", plan.dataset),
        ScanPath::MergedShards { shards } => {
            format!(
                "{rows} rows loaded from {} ({shards} shard streams)",
                plan.dataset
            )
        }
        ScanPath::SpilledRuns {
            runs: Some(runs),
            spilled: Some(spilled),
            ..
        } => format!(
            "{rows} rows external-sorted from {} into {runs} runs ({spilled} spilled to disk)",
            plan.dataset
        ),
        ScanPath::SpilledRuns { .. } => {
            format!("{rows} rows from {} (external sort pending)", plan.dataset)
        }
        ScanPath::Remote { remote, local } => {
            if local > 0 {
                format!(
                    "{rows} rows merged from {remote} remote shard streams and {local} local \
                     shards ({})",
                    plan.dataset
                )
            } else {
                format!(
                    "{rows} rows streamed from {remote} remote shards ({})",
                    plan.dataset
                )
            }
        }
        ScanPath::RemotePushdown { remote, local } => {
            let blocks = match (plan.observed_wire_blocks, plan.mean_block_fill()) {
                (Some(blocks), Some(fill)) => {
                    format!(" in {blocks} blocks, mean fill {fill:.1}")
                }
                (Some(0), None) => " tuple-at-a-time".to_string(),
                _ => String::new(),
            };
            let wire = plan
                .observed_wire_tuples
                .map(|n| format!(", {n} tuples observed over the wire{blocks}"))
                .unwrap_or_default();
            if local > 0 {
                format!(
                    "{rows} rows merged from {remote} remote shard streams (scan-gate \
                     pushdown{wire}) and {local} local shards ({})",
                    plan.dataset
                )
            } else {
                format!(
                    "{rows} rows streamed from {remote} remote shards (scan-gate \
                     pushdown{wire}) ({})",
                    plan.dataset
                )
            }
        }
        ScanPath::Prefetched { shards, buffer } => format!(
            "{rows} rows loaded from {} ({shards} shard streams, each prefetched through a \
             {buffer}-tuple channel)",
            plan.dataset
        ),
        ScanPath::Live {
            segments,
            epoch,
            compacted_epoch,
        } => format!(
            "{rows} rows from the live snapshot at epoch {epoch} ({segments} sealed segments, \
             {}, {})",
            if compacted_epoch > 0 {
                format!("last compacted at epoch {compacted_epoch}")
            } else {
                "never compacted".to_string()
            },
            plan.dataset
        ),
        ScanPath::RemoteQuery => {
            let cache = match plan.server_cache_hit {
                Some(true) => ", server cache hit",
                Some(false) => ", server cache miss",
                None => "",
            };
            format!(
                "whole query answered by the serving daemon ({}{cache})",
                plan.dataset
            )
        }
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let k = get_parse(&flags, "k", 0usize)?;
    let batch_ks = match get(&flags, "batch") {
        Some(raw) => Some(parse_k_list(raw)?),
        None => None,
    };
    if k == 0 && batch_ks.is_none() {
        return Err("--k (or --batch) is required and must be at least 1".to_string());
    }

    if let Some(server) = get(&flags, "server") {
        reject_local_input_flags(&positional, &flags)?;
        let (client, dataset) = server_query_client(server, &flags)?;
        let topk = parse_topk_params(&flags, k.max(1))?;
        let buckets = get_parse(&flags, "buckets", 16usize)?;
        if let Some(ks) = batch_ks {
            // The batch re-dials per k; repeated shapes land in the server's
            // result cache, so a re-run of the batch is answered cache-hot.
            let started = std::time::Instant::now();
            let answers: Vec<ttk_uncertain::Result<ttk_core::QueryAnswer>> = ks
                .iter()
                .map(|&batch_k| {
                    client
                        .execute(&dataset, &topk.with_k(batch_k))
                        .map(|remote| remote.answer)
                })
                .collect();
            println!(
                "batch served remotely from `{dataset}` on {}",
                client.addr()
            );
            print_batch_summary(&ks, &answers, started.elapsed(), 1);
            return Ok(());
        }
        let remote = client.execute(&dataset, &topk).map_err(|e| e.to_string())?;
        let plan = client.plan(&dataset, &topk, &remote);
        println!("{}", describe_scan(&plan));
        print_histogram(
            &remote.answer.distribution,
            buckets,
            &markers(&remote.answer),
        );
        print_answer_summary(&remote.answer);
        return Ok(());
    }

    let spec = parse_query_spec(&flags, k.max(1))?;
    let buckets = get_parse(&flags, "buckets", 16usize)?;
    let threads = get_parse(&flags, "threads", 0usize)?;
    let csv_options = parse_csv_options(&flags);
    let dataset = resolve_dataset(
        &positional,
        &flags,
        &csv_options,
        &spec.expression_text,
        false,
    )?;
    let mut session = Session::new();

    if let Some(ks) = batch_ks {
        let jobs: Vec<QueryJob> = ks
            .iter()
            .map(|&batch_k| QueryJob::new(&dataset, spec.topk.with_k(batch_k)))
            .collect();
        let started = std::time::Instant::now();
        let answers = session.execute_batch(&jobs, &BatchOptions::new().with_threads(threads));
        let plan = session.explain(&dataset, &spec.topk);
        println!(
            "{}; scoring expression: {}",
            describe_scan(&plan),
            spec.expression_text
        );
        print_batch_summary(&ks, &answers, started.elapsed(), threads);
        return Ok(());
    }

    let answer = session
        .execute(&dataset, &spec.topk)
        .map_err(|e| e.to_string())?;
    let plan = session.explain(&dataset, &spec.topk);
    println!(
        "{}; scoring expression: {}",
        describe_scan(&plan),
        spec.expression_text
    );
    print_histogram(&answer.distribution, buckets, &markers(&answer));
    print_answer_summary(&answer);
    Ok(())
}

/// Parses one `--row ID:SCORE:PROB[:GROUP]` spec into a scored row. A GROUP
/// label is hashed with the same FNV the CSV importer uses, so literal rows
/// and CSV-file appends naming the same group land in the same ME group.
fn parse_row_spec(raw: &str) -> Result<SourceTuple, String> {
    let mut parts = raw.splitn(4, ':');
    let bad = || format!("expected ID:SCORE:PROB[:GROUP], got `{raw}`");
    let id: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let score: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let prob: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let tuple = UncertainTuple::new(id, score, prob).map_err(|e| format!("row `{raw}`: {e}"))?;
    Ok(match parts.next() {
        Some(label) if !label.is_empty() => SourceTuple::grouped(tuple, stable_group_key(label)),
        _ => SourceTuple::independent(tuple),
    })
}

/// `ttk append`: ship scored rows to a live dataset of a `ttk serve` daemon.
/// Rows come either from repeatable `--row ID:SCORE:PROB[:GROUP]` literals
/// or from a local CSV scored with `--score` — exactly the scoring pass
/// `ttk serve` itself would run. `--seal` publishes the staged rows as a new
/// snapshot epoch in the same request.
fn cmd_append(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!(
            "unexpected positional arguments {positional:?}: appends name their input with \
             --row or --file"
        ));
    }
    let server = get(&flags, "server")
        .ok_or("--server HOST:PORT is required (appends go to a ttk serve daemon)")?;
    let dataset = get(&flags, "dataset")
        .ok_or("--dataset NAME is required: name the live dataset to append to")?
        .to_string();
    let seal = get(&flags, "seal").is_some();

    let row_specs: Vec<String> = flags.get("row").cloned().unwrap_or_default();
    let file = get(&flags, "file");
    let rows: Vec<SourceTuple> =
        match (row_specs.is_empty(), file) {
            (false, Some(_)) => return Err(
                "conflicting input flags: pass either --row literals or one --file CSV, not both"
                    .to_string(),
            ),
            (true, None) => {
                return Err(
                    "no rows: pass --row ID:SCORE:PROB[:GROUP] (repeatable) or --file DATA.csv \
                 --score EXPR"
                        .to_string(),
                )
            }
            (false, None) => {
                if get(&flags, "score").is_some() {
                    return Err(
                        "--score only applies to --file appends; --row literals carry their score"
                            .to_string(),
                    );
                }
                row_specs
                    .iter()
                    .map(|raw| parse_row_spec(raw))
                    .collect::<Result<_, _>>()?
            }
            (true, Some(path)) => {
                let score = get(&flags, "score")
                    .ok_or("--score is required to score the --file CSV before appending")?;
                let expression = parse_expression(score).map_err(|e| e.to_string())?;
                CsvDataset::from_path(path, parse_csv_options(&flags), expression)
                    .scored_rows()
                    .map_err(|e| format!("cannot score {path}: {e}"))?
            }
        };

    let accepted = rows.len();
    let client =
        RemoteQueryClient::new(server).with_connect_options(parse_connect_options(&flags)?);
    let ack = client
        .append(&dataset, rows, seal)
        .map_err(|e| e.to_string())?;
    println!(
        "appended {accepted} row(s) to `{dataset}` on {}: epoch {}, {} staged, {} rows visible{}",
        client.addr(),
        ack.epoch,
        ack.staged,
        ack.sealed_rows,
        if ack.sealed_now { " (sealed now)" } else { "" }
    );
    Ok(())
}

/// `ttk watch`: hold a standing top-k subscription against a live dataset.
/// The daemon pushes the answer once as a baseline and then again on every
/// epoch advance that actually shifted its distribution; `--pushes N` asks
/// the server to close the subscription after N pushes (0 = until either
/// side disconnects).
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    reject_local_input_flags(&positional, &flags)?;
    let server = get(&flags, "server")
        .ok_or("--server HOST:PORT is required (watch subscribes to a ttk serve daemon)")?;
    let k = get_parse(&flags, "k", 0usize)?;
    if k == 0 {
        return Err("--k is required and must be at least 1".to_string());
    }
    let (client, dataset) = server_query_client(server, &flags)?;
    let topk = parse_topk_params(&flags, k)?;
    let pushes = get_parse(&flags, "pushes", 0u64)?;
    let buckets = get_parse(&flags, "buckets", 16usize)?;

    let mut watch = client
        .watch(&dataset, &topk, pushes)
        .map_err(|e| e.to_string())?;
    println!(
        "watching `{dataset}` on {} (k = {k}{})",
        client.addr(),
        if pushes > 0 {
            format!(", closing after {pushes} push(es)")
        } else {
            String::new()
        }
    );
    let mut received = 0u64;
    while let Some(push) = watch.next_push().map_err(|e| e.to_string())? {
        received += 1;
        println!(
            "push {received}: epoch {}, answer hash {:016x}",
            push.epoch, push.answer_hash
        );
        print_histogram(&push.answer.distribution, buckets, &markers(&push.answer));
        print_answer_summary(&push.answer);
    }
    println!("subscription closed by the server after {received} push(es)");
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let k = get_parse(&flags, "k", 1usize)?;
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }

    if let Some(server) = get(&flags, "server") {
        reject_local_input_flags(&positional, &flags)?;
        if get(&flags, "after").is_none() {
            return Err(
                "explain --server needs --after: the plan lives on the server, so the query \
                 must execute once for the daemon to report its observed scan depth and \
                 result-cache outcome"
                    .to_string(),
            );
        }
        let (client, dataset) = server_query_client(server, &flags)?;
        let topk = parse_topk_params(&flags, k)?;
        let remote = client.execute(&dataset, &topk).map_err(|e| e.to_string())?;
        let plan = client.plan(&dataset, &topk, &remote);
        println!("{plan}");
        if let Some(drift) = plan.observed_vs_estimated() {
            println!("cost-model drift (observed / estimated scan depth): {drift:.3}");
        }
        return Ok(());
    }

    let spec = parse_query_spec(&flags, k)?;
    let csv_options = parse_csv_options(&flags);
    let dataset = resolve_dataset(
        &positional,
        &flags,
        &csv_options,
        &spec.expression_text,
        false,
    )?;
    let mut session = Session::new();
    if get(&flags, "after").is_some() {
        // Execute once so the plan can report the observed scan depth (and
        // the cost model's drift) next to the estimate.
        session
            .execute(&dataset, &spec.topk)
            .map_err(|e| e.to_string())?;
    }
    let plan = session.explain(&dataset, &spec.topk);
    println!("{plan}");
    if let Some(drift) = plan.observed_vs_estimated() {
        println!("cost-model drift (observed / estimated scan depth): {drift:.3}");
    }
    Ok(())
}

/// Prints the per-k summary table of a batch run.
fn print_batch_summary(
    ks: &[usize],
    answers: &[ttk_uncertain::Result<ttk_core::QueryAnswer>],
    elapsed: std::time::Duration,
    threads: usize,
) {
    println!(
        "batch of {} queries executed in {:.3} s ({} worker threads)",
        ks.len(),
        elapsed.as_secs_f64(),
        if threads == 0 {
            "auto".to_string()
        } else {
            // The executor never spawns more workers than jobs.
            threads.min(ks.len()).to_string()
        }
    );
    println!(
        "{:>4}  {:>10}  {:>9}  {:>6}  {:>10}  typical scores",
        "k", "E[score]", "std dev", "depth", "U-Topk"
    );
    for (batch_k, answer) in ks.iter().zip(answers) {
        match answer {
            Ok(a) => {
                let u = a
                    .u_topk
                    .as_ref()
                    .map(|u| format!("{:.2}", u.vector.total_score()))
                    .unwrap_or_else(|| "-".to_string());
                let typical: Vec<String> = a
                    .typical
                    .scores()
                    .iter()
                    .map(|s| format!("{s:.2}"))
                    .collect();
                println!(
                    "{batch_k:>4}  {:>10.2}  {:>9.2}  {:>6}  {u:>10}  [{}]",
                    a.expected_score(),
                    a.distribution.std_dev(),
                    a.scan_depth,
                    typical.join(", ")
                );
            }
            Err(e) => println!("{batch_k:>4}  error: {e}"),
        }
    }
}

fn markers(answer: &ttk_core::QueryAnswer) -> Vec<(f64, String)> {
    let mut markers = Vec::new();
    if let Some(u) = &answer.u_topk {
        markers.push((u.vector.total_score(), "U-Topk".to_string()));
    }
    for (i, s) in answer.typical.scores().iter().enumerate() {
        markers.push((*s, format!("typical #{}", i + 1)));
    }
    markers
}

fn print_histogram(distribution: &ScoreDistribution, buckets: usize, markers: &[(f64, String)]) {
    let Some(lo) = distribution.min_score() else {
        println!("(empty distribution)");
        return;
    };
    let hi = distribution.max_score().unwrap_or(lo);
    let width = if hi > lo {
        (hi - lo) / buckets as f64
    } else {
        1.0
    };
    let Some(hist) = distribution.histogram(width) else {
        println!("(empty distribution)");
        return;
    };
    let max_mass = hist
        .buckets
        .iter()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    for (i, &mass) in hist.buckets.iter().enumerate() {
        let start = hist.bucket_start(i);
        let end = start + hist.width;
        let bar = "#".repeat(((mass / max_mass) * 50.0).round() as usize);
        let mut annotation = String::new();
        for (value, label) in markers {
            let in_last = i + 1 == hist.buckets.len() && *value >= start;
            if (*value >= start && *value < end) || in_last {
                annotation.push_str(&format!("  <-- {label} ({value:.1})"));
            }
        }
        println!("[{start:9.2}, {end:9.2})  {mass:6.4}  {bar}{annotation}");
    }
}

fn print_answer_summary(answer: &ttk_core::QueryAnswer) {
    println!();
    println!(
        "captured mass {:.4}, expected score {:.2}, std dev {:.2}, scan depth {}",
        answer.distribution.total_probability(),
        answer.expected_score(),
        answer.distribution.std_dev(),
        answer.scan_depth
    );
    println!("typical answers:");
    for t in &answer.typical.answers {
        match &t.vector {
            Some(v) => println!("  score {:10.2}  {}", t.score, v),
            None => println!(
                "  score {:10.2}  (probability {:.4})",
                t.score, t.probability
            ),
        }
    }
    if let Some(u) = &answer.u_topk {
        println!("U-Topk: {}", u.vector);
        if let Some(p) = answer.u_topk_percentile() {
            println!("U-Topk score percentile within the distribution: {:.3}", p);
        }
    }
    println!(
        "distribution computed in {:.3} s, typical selection in {:.6} s",
        answer.distribution_time.as_secs_f64(),
        answer.typical_time.as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// Polls for a `--port-file` until it appears. Port files are written
    /// atomically (temp file + rename), so any successful non-empty read is
    /// a complete address — the partial-read race of the non-atomic write
    /// is gone, which the parse below asserts.
    fn poll_port_file(pf: &std::path::Path) -> String {
        for _ in 0..500 {
            if let Ok(addr) = std::fs::read_to_string(pf) {
                if !addr.is_empty() {
                    addr.parse::<std::net::SocketAddr>()
                        .expect("an atomically-written port file holds a complete address");
                    return addr;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("server did not write {pf:?}");
    }

    #[test]
    fn flag_parsing_separates_positionals_and_flags() {
        let (pos, flags) = parse_flags(&s(&["cartel", "--segments", "40", "--seed", "7"])).unwrap();
        assert_eq!(pos, vec!["cartel"]);
        assert_eq!(get(&flags, "segments"), Some("40"));
        assert_eq!(get(&flags, "seed"), Some("7"));
        assert!(parse_flags(&s(&["--oops"])).is_err());
        // Repeated flags accumulate in order; `get` returns the last value.
        let (_, flags) = parse_flags(&s(&[
            "--shard", "a.csv", "--shard", "b.csv", "--k", "1", "--k", "2",
        ]))
        .unwrap();
        assert_eq!(flags.get("shard").unwrap(), &vec!["a.csv", "b.csv"]);
        assert_eq!(get(&flags, "k"), Some("2"));
    }

    #[test]
    fn shard_paths_are_derived_from_the_out_template() {
        assert_eq!(shard_path("area.csv", 0), "area.shard0.csv");
        assert_eq!(shard_path("area.csv", 11), "area.shard11.csv");
        assert_eq!(shard_path("area", 2), "area.shard2");
        assert_eq!(shard_path(".hidden", 1), ".hidden.shard1");
        // Dots in directory components never attract the shard suffix.
        assert_eq!(shard_path("results.d/area", 0), "results.d/area.shard0");
        assert_eq!(shard_path("data/v1.2/a.csv", 3), "data/v1.2/a.shard3.csv");
    }

    #[test]
    fn flag_value_parsing_and_ranges() {
        let (_, flags) = parse_flags(&s(&["--k", "5"])).unwrap();
        assert_eq!(get_parse(&flags, "k", 0usize).unwrap(), 5);
        assert_eq!(get_parse(&flags, "missing", 3usize).unwrap(), 3);
        assert!(get_parse::<usize>(&flags, "k", 0).is_ok());
        let (_, bad) = parse_flags(&s(&["--k", "five"])).unwrap();
        assert!(get_parse::<usize>(&bad, "k", 0).is_err());
        assert_eq!(parse_range("2:10").unwrap(), IntRange::new(2, 10));
        assert!(parse_range("10:2").is_err());
        assert!(parse_range("abc").is_err());
    }

    #[test]
    fn unknown_commands_are_rejected_and_soldier_runs() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&s(&["soldier"])).is_ok());
    }

    #[test]
    fn batch_specs_parse() {
        assert_eq!(parse_k_list("1,5,10").unwrap(), vec![1, 5, 10]);
        assert_eq!(parse_k_list("2:5").unwrap(), vec![2, 3, 4, 5]);
        assert!(parse_k_list("0:4").is_err());
        assert!(parse_k_list("5:2").is_err());
        assert!(parse_k_list("1,0").is_err());
        assert!(parse_k_list("abc").is_err());
    }

    #[test]
    fn batch_query_runs_over_a_range_of_k() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_batch.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "15",
            "--seed",
            "11",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--batch",
            "1:4",
            "--threads",
            "2",
        ]))
        .unwrap();
        // A bad batch spec is rejected.
        assert!(run(&s(&[
            "query", "--file", &path, "--score", "delay", "--batch", "4:1",
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn sharded_generate_and_query_round_trip() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_shards.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "20",
            "--seed",
            "5",
            "--shards",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        let shard_paths: Vec<String> = (0..3).map(|i| shard_path(&path, i)).collect();
        for p in &shard_paths {
            assert!(std::path::Path::new(p).exists(), "{p} missing");
        }
        // Single query and a batch, both over the shard files.
        let mut query_args = s(&["query", "--score", "speed_limit / (length / delay)"]);
        for p in &shard_paths {
            query_args.extend(s(&["--shard", p]));
        }
        let mut single = query_args.clone();
        single.extend(s(&["--k", "3"]));
        run(&single).unwrap();
        let mut batch = query_args.clone();
        batch.extend(s(&["--batch", "1:4", "--threads", "2"]));
        run(&batch).unwrap();
        // --file and --shard conflict, with an error naming both dataset kinds.
        let mut both = single.clone();
        both.extend(s(&["--file", &path]));
        let err = run(&both).unwrap_err();
        assert!(err.contains("single-file CSV dataset"), "{err}");
        assert!(err.contains("sharded CSV dataset"), "{err}");
        // --spill-buffer applies to a single file only, never silently ignored.
        let mut spill = single.clone();
        spill.extend(s(&["--spill-buffer", "64"]));
        let err = run(&spill).unwrap_err();
        assert!(err.contains("sharded CSV dataset"), "{err}");
        // A positional file and --file together are ambiguous.
        let err = run(&s(&[
            "query", &path, "--file", &path, "--score", "delay", "--k", "2",
        ]))
        .unwrap_err();
        assert!(err.contains("pass the file once"), "{err}");
        assert!(run(&s(&["query", "--score", "delay", "--k", "2"])).is_err());
        // --shards without --out is rejected.
        assert!(run(&s(&["generate", "cartel", "--shards", "2"])).is_err());
        // explain works over the shard set without executing.
        let mut explain = s(&["explain", "--score", "speed_limit / (length / delay)"]);
        for p in &shard_paths {
            explain.extend(s(&["--shard", p]));
        }
        run(&explain).unwrap();
        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn spill_buffer_query_runs_out_of_core() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_spill.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "25",
            "--seed",
            "13",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        // The spill index is replayable, so --batch works over a spilled
        // file: the external sort runs once and every job replays the runs.
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "delay",
            "--batch",
            "1:3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        // explain over the spilled dataset reports the external-sort path.
        run(&s(&[
            "explain",
            &path,
            "--score",
            "delay",
            "--k",
            "3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn serve_shard_and_remote_query_round_trip() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_remote.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "18",
            "--seed",
            "21",
            "--shards",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        let shard_paths: Vec<String> = (0..2).map(|i| shard_path(&path, i)).collect();
        // Row count of shard 0 = the id base of shard 1 in the shared space.
        let shard0_rows = std::fs::read_to_string(&shard_paths[0])
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
            - 1; // header
        let expr = "speed_limit / (length / delay)";

        // Serve both shards on ephemeral ports. Shard 0 serves two
        // connections (the pure-remote query and the mixed query below);
        // shard 1 serves one — the servers exit once those are done.
        let mut port_files = Vec::new();
        let mut servers = Vec::new();
        for (i, shard) in shard_paths.iter().enumerate() {
            let port_file = dir.join(format!("ttk_cli_test_remote_port{i}"));
            std::fs::remove_file(&port_file).ok();
            let args = s(&[
                "serve-shard",
                shard,
                "--score",
                expr,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &port_file.to_string_lossy(),
                "--max-conns",
                if i == 0 { "2" } else { "1" },
                "--id-base",
                &if i == 0 { 0 } else { shard0_rows }.to_string(),
            ]);
            servers.push(std::thread::spawn(move || run(&args)));
            port_files.push(port_file);
        }
        let addrs: Vec<String> = port_files.iter().map(|pf| poll_port_file(pf)).collect();

        // Pure remote: both shards over loopback, single query and explain.
        run(&s(&[
            "query",
            "--remote-shard",
            &addrs[0],
            "--remote-shard",
            &addrs[1],
            "--score",
            expr,
            "--k",
            "3",
            "--prefetch",
            "64",
        ]))
        .unwrap();
        run(&s(&[
            "explain",
            "--remote-shard",
            &addrs[0],
            "--remote-shard",
            &addrs[1],
            "--score",
            expr,
            "--k",
            "3",
        ]))
        .unwrap();

        // Mixed: shard 0 remote, shard 1 local (hashed keys + id base align
        // the local shard with the served one).
        run(&s(&[
            "query",
            "--remote-shard",
            &addrs[0],
            "--shard",
            &shard_paths[1],
            "--id-base",
            &shard0_rows.to_string(),
            "--score",
            expr,
            "--k",
            "2",
        ]))
        .unwrap();

        for server in servers {
            server.join().unwrap().unwrap();
        }

        // Conflicting input forms are rejected with explanatory errors.
        let err = run(&s(&[
            "query",
            "--remote-shard",
            "127.0.0.1:1",
            "--file",
            &path,
            "--score",
            expr,
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("remote shard dataset"), "{err}");
        let err = run(&s(&[
            "query",
            "--remote-shard",
            "127.0.0.1:1",
            "--spill-buffer",
            "8",
            "--score",
            expr,
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("serving side"), "{err}");
        // serve-shard refuses remote inputs and requires --listen.
        assert!(run(&s(&[
            "serve-shard",
            "--remote-shard",
            "127.0.0.1:1",
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0"
        ]))
        .is_err());
        assert!(run(&s(&["serve-shard", &path, "--score", expr])).is_err());

        for p in shard_paths.iter().map(std::path::Path::new) {
            std::fs::remove_file(p).ok();
        }
        for pf in &port_files {
            std::fs::remove_file(pf).ok();
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn remote_flag_validation() {
        let (_, flags) =
            parse_flags(&s(&["--remote-timeout", "2.5", "--remote-retries", "7"])).unwrap();
        let connect = parse_connect_options(&flags).unwrap();
        assert_eq!(
            connect.connect_timeout,
            std::time::Duration::from_millis(2500)
        );
        assert_eq!(
            connect.read_timeout,
            Some(std::time::Duration::from_millis(2500))
        );
        assert_eq!(connect.retries, 7);
        let (_, bad) = parse_flags(&s(&["--remote-timeout", "-1"])).unwrap();
        assert!(parse_connect_options(&bad).is_err());
        let (_, bad) = parse_flags(&s(&["--remote-timeout", "forever"])).unwrap();
        assert!(parse_connect_options(&bad).is_err());
    }

    /// The acceptance property of the concurrent daemon: two clients query
    /// one `serve-shard` process **concurrently** and both complete with
    /// results bit-identical to the local scan, while a deliberately stalled
    /// third connection stays open the whole time. Under the old sequential
    /// accept loop the stalled connection (whose replay cannot fit in the
    /// socket buffers) would block the daemon before the query connections
    /// were ever accepted.
    #[test]
    fn concurrent_clients_complete_around_a_stalled_reader() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_concurrent.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "synthetic",
            "--tuples",
            "30000",
            "--seed",
            "9",
            "--out",
            &path,
        ]))
        .unwrap();
        let port_file = dir.join("ttk_cli_test_concurrent_port");
        std::fs::remove_file(&port_file).ok();
        let server_args = s(&[
            "serve-shard",
            &path,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "3",
            "--max-parallel",
            "4",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The stalled client: connects first, reads only the 14-byte hello
        // frame, then holds the connection open without reading further —
        // the replay of 30k tuples cannot fit the socket buffers, so its
        // worker blocks mid-write until we hang up.
        let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
        let mut hello = [0u8; 14];
        std::io::Read::read_exact(&mut stalled, &mut hello).unwrap();

        // The local reference: the same file imported exactly as the daemon
        // imports it (hashed group keys, id base 0).
        let query = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
        let local = CsvDataset::from_path(
            &path,
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .with_import(ShardImportOptions {
            first_tuple_id: 0,
            hashed_group_keys: true,
        })
        .into_dataset();
        let reference = Session::new().execute(&local, &query).unwrap();

        // Two full query clients, concurrently, while the third connection
        // stalls.
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    Session::new().execute(&RemoteShardDataset::new([addr]).into_dataset(), &query)
                })
            })
            .collect();
        for client in clients {
            let answer = client.join().unwrap().unwrap();
            assert_eq!(answer.distribution, reference.distribution);
            assert_eq!(answer.scan_depth, reference.scan_depth);
            assert_eq!(answer.typical.scores(), reference.typical.scores());
        }

        // Only now release the stalled connection; the daemon drains its
        // worker and exits cleanly at --max-conns.
        drop(stalled);
        server.join().unwrap().unwrap();
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data).ok();
    }

    /// End-to-end `ttk serve` round trip over loopback: two resident
    /// datasets, a cold query then the identical query again, asserting the
    /// repeat is answered from the result cache (via the client's plan — the
    /// explain surface) and that cold, cached and `run()`-driven answers are
    /// all bit-identical to a local `Session::execute` of the same file.
    #[test]
    fn serve_query_round_trip_with_cache_parity_and_explain_surface() {
        let dir = std::env::temp_dir();
        let data_alpha = dir.join("ttk_cli_test_serve_alpha.csv");
        let data_beta = dir.join("ttk_cli_test_serve_beta.csv");
        let path_alpha = data_alpha.to_string_lossy().to_string();
        let path_beta = data_beta.to_string_lossy().to_string();
        let expr = "speed_limit / (length / delay)";
        for (path, segments, seed) in [(&path_alpha, "20", "5"), (&path_beta, "12", "8")] {
            run(&s(&[
                "generate",
                "cartel",
                "--segments",
                segments,
                "--seed",
                seed,
                "--out",
                path,
            ]))
            .unwrap();
        }

        let port_file = dir.join("ttk_cli_test_serve_port");
        std::fs::remove_file(&port_file).ok();
        let alpha_spec = format!("alpha={path_alpha}");
        let beta_spec = format!("beta={path_beta}");
        // Exactly six connections: cold, cached, beta, `run` query, `run`
        // explain --after, unknown dataset.
        let server_args = s(&[
            "serve",
            &alpha_spec,
            &beta_spec,
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "6",
            "--max-parallel",
            "2",
            "--cache-entries",
            "8",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The local reference: the same file, scored the same way the
        // daemon scores it at startup.
        let query = TopkQuery::new(3);
        let local = CsvDataset::from_path(
            &path_alpha,
            CsvOptions::default(),
            parse_expression(expr).unwrap(),
        )
        .into_dataset();
        let reference = Session::new().execute(&local, &query).unwrap();

        let client = RemoteQueryClient::new(addr.as_str());
        let cold = client.execute("alpha", &query).unwrap();
        assert!(!cold.cache_hit, "first query must execute");
        let cached = client.execute("alpha", &query).unwrap();
        assert!(
            cached.cache_hit,
            "the repeat must be answered from the cache"
        );
        for remote in [&cold, &cached] {
            assert_eq!(remote.answer.distribution, reference.distribution);
            assert_eq!(remote.answer.typical, reference.typical);
            assert_eq!(remote.answer.scan_depth, reference.scan_depth);
            let u = remote.answer.u_topk.as_ref().expect("U-Topk requested");
            let ru = reference.u_topk.as_ref().expect("U-Topk requested");
            assert_eq!(u.vector, ru.vector);
            assert_eq!(u.deepest_position, ru.deepest_position);
        }

        // The explain surface reports the cache outcome.
        let plan_cold = client.plan("alpha", &query, &cold);
        assert!(plan_cold.to_string().contains("server result cache: miss"));
        let plan_cached = client.plan("alpha", &query, &cached);
        assert!(plan_cached.to_string().contains("server result cache: hit"));
        assert!(describe_scan(&plan_cached).contains("server cache hit"));

        // The second resident dataset answers under its own cache key.
        let beta = client.execute("beta", &query).unwrap();
        assert!(!beta.cache_hit);
        assert_ne!(beta.answer.distribution, reference.distribution);

        // The CLI client paths work end to end.
        run(&s(&[
            "query",
            "--server",
            &addr,
            "--dataset",
            "alpha",
            "--k",
            "3",
        ]))
        .unwrap();
        run(&s(&[
            "explain",
            "--server",
            &addr,
            "--dataset",
            "alpha",
            "--k",
            "3",
            "--after",
        ]))
        .unwrap();

        // An unknown dataset is a clean error naming the resident ones.
        let err = client.execute("missing", &query).unwrap_err().to_string();
        assert!(err.contains("no such dataset"), "{err}");
        assert!(err.contains("alpha"), "{err}");

        server.join().unwrap().unwrap();

        // Client-side flag validation (nothing dials).
        let err = run(&s(&["query", "--server", &addr, "--k", "1"])).unwrap_err();
        assert!(err.contains("--dataset"), "{err}");
        let err = run(&s(&[
            "query",
            "--server",
            &addr,
            "--dataset",
            "alpha",
            "--score",
            "x",
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("drop --score"), "{err}");
        let err = run(&s(&[
            "query",
            "--server",
            &addr,
            "--dataset",
            "alpha",
            "--file",
            "x.csv",
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("resident dataset"), "{err}");
        let err = run(&s(&[
            "explain",
            "--server",
            &addr,
            "--dataset",
            "alpha",
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("--after"), "{err}");
        // Serve-side validation: malformed NAME=FILE and missing datasets.
        assert!(run(&s(&[
            "serve",
            "alpha",
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0",
        ]))
        .is_err());
        assert!(run(&s(&["serve", "--score", expr, "--listen", "127.0.0.1:0"])).is_err());

        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data_alpha).ok();
        std::fs::remove_file(&data_beta).ok();
    }

    /// A client that connects to `ttk serve` and never sends its request
    /// only costs its own worker: two full query clients complete (bit-
    /// identically to a local run) while the stalled connection sits there,
    /// and the daemon still drains cleanly at --max-conns.
    #[test]
    fn serve_concurrent_query_clients_complete_around_a_stalled_reader() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_serve_stall.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "synthetic",
            "--tuples",
            "20000",
            "--seed",
            "13",
            "--out",
            &path,
        ]))
        .unwrap();
        let port_file = dir.join("ttk_cli_test_serve_stall_port");
        std::fs::remove_file(&port_file).ok();
        let dataset_spec = format!("data={path}");
        let server_args = s(&[
            "serve",
            &dataset_spec,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "3",
            "--max-parallel",
            "2",
            "--request-wait-ms",
            "400",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The stalled client: connects first (occupying one of the two
        // workers) and never sends the request frame.
        let stalled = std::net::TcpStream::connect(&addr).unwrap();

        let query = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
        let local = CsvDataset::from_path(
            &path,
            CsvOptions::default(),
            parse_expression("score").unwrap(),
        )
        .into_dataset();
        let reference = Session::new().execute(&local, &query).unwrap();

        // Two full query clients, concurrently, around the stalled one.
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || RemoteQueryClient::new(addr).execute("data", &query))
            })
            .collect();
        for client in clients {
            let remote = client.join().unwrap().unwrap();
            assert_eq!(remote.answer.distribution, reference.distribution);
            assert_eq!(remote.answer.scan_depth, reference.scan_depth);
            assert_eq!(remote.answer.typical.scores(), reference.typical.scores());
        }

        // The daemon reaches --max-conns and drains: the stalled worker is
        // released by --request-wait-ms, no hang. Only then hang up.
        server.join().unwrap().unwrap();
        drop(stalled);
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data).ok();
    }

    /// The whole live-dataset flow over the wire: `ttk append` feeds a
    /// `--live` dataset, queries scan exactly the sealed snapshot (a seal is
    /// an epoch-keyed cache miss on the next query), a standing `watch`
    /// subscription is pushed only when the answer distribution actually
    /// shifts, and the `ttk watch`/`ttk append --file` verbs work end to
    /// end.
    #[test]
    fn serve_live_append_watch_round_trip() {
        let dir = std::env::temp_dir();
        let port_file = dir.join("ttk_cli_test_live_port");
        std::fs::remove_file(&port_file).ok();
        let extra_csv = dir.join("ttk_cli_test_live_extra.csv");
        std::fs::write(&extra_csv, "score,probability,group_key\n5,0.5,\n").unwrap();
        // Exactly nine connections: the append verb, cold query, cached
        // requery, the standing subscription, the no-shift append, the
        // shift append, the post-shift requery, the --file append, and the
        // watch verb.
        let server_args = s(&[
            "serve",
            "--live",
            "feed",
            "--seal-every",
            "1000",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "9",
            "--max-parallel",
            "2",
            "--cache-entries",
            "8",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // Seed the log through the CLI verb: three rows, sealed into epoch 1.
        run(&s(&[
            "append",
            "--server",
            &addr,
            "--dataset",
            "feed",
            "--row",
            "1:100:1.0",
            "--row",
            "2:50:0.5",
            "--row",
            "3:10:0.8",
            "--seal",
        ]))
        .unwrap();

        // Cold query at epoch 1: the certain score-100 tuple is the whole
        // top-1 distribution. The repeat is a cache hit at the same epoch.
        let query = TopkQuery::new(1).with_p_tau(1e-6).with_u_topk(false);
        let client = RemoteQueryClient::new(addr.as_str());
        let cold = client.execute("feed", &query).unwrap();
        assert!(!cold.cache_hit, "first query must execute");
        assert_eq!(cold.epoch, Some(1), "three sealed rows mean epoch 1");
        assert_eq!(cold.answer.distribution.len(), 1);
        let cached = client.execute("feed", &query).unwrap();
        assert!(cached.cache_hit, "same epoch, same shape: cache hit");
        assert_eq!(cached.answer.distribution, cold.answer.distribution);

        // The standing subscription, on its own thread: the baseline answer
        // is the first push, the distribution shift is the second (and
        // last: max_pushes = 2 makes the server close the stream).
        let (push_tx, push_rx) = std::sync::mpsc::channel();
        let watch_addr = addr.clone();
        let watch_query = query;
        let watcher = std::thread::spawn(move || {
            let mut watch = RemoteQueryClient::new(watch_addr)
                .watch("feed", &watch_query, 2)
                .unwrap();
            let baseline = watch.next_push().unwrap().expect("baseline push");
            push_tx.send(baseline).unwrap();
            let shifted = watch.next_push().unwrap().expect("shift push");
            push_tx.send(shifted).unwrap();
            watch.next_push().unwrap()
        });
        let baseline = push_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the subscription pushes its baseline answer");
        assert_eq!(baseline.epoch, 1);
        assert_eq!(baseline.answer.distribution, cold.answer.distribution);

        // A no-shift append: a low certain-loser row seals epoch 2, but the
        // top-1 distribution is unchanged, so nothing may be pushed. Give
        // the subscription ample time to have evaluated epoch 2.
        let no_shift = vec![SourceTuple::independent(
            UncertainTuple::new(4u64, 20.0, 0.5).unwrap(),
        )];
        let ack = client.append("feed", no_shift, true).unwrap();
        assert_eq!(ack.epoch, 2);
        assert!(ack.sealed_now);
        std::thread::sleep(Duration::from_millis(400));
        assert!(
            push_rx.try_recv().is_err(),
            "an epoch advance that does not shift the answer must push nothing"
        );

        // The shift: a score-200 maybe-tuple seals epoch 3 and changes the
        // top-1 distribution. The push reports epoch 3 — epoch 2 was
        // evaluated and skipped, not queued.
        let shift = vec![SourceTuple::independent(
            UncertainTuple::new(5u64, 200.0, 0.5).unwrap(),
        )];
        let ack = client.append("feed", shift, true).unwrap();
        assert_eq!(ack.epoch, 3);
        let shifted = push_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the shift must be pushed");
        assert_eq!(shifted.epoch, 3, "the no-shift epoch is skipped");
        assert_ne!(shifted.answer_hash, baseline.answer_hash);
        assert_eq!(shifted.answer.distribution.len(), 2);
        assert!(
            watcher.join().unwrap().is_none(),
            "after max_pushes the server closes the push stream cleanly"
        );

        // The sealed epoch is part of the cache key: the same query shape
        // misses and sees the shifted distribution.
        let reheated = client.execute("feed", &query).unwrap();
        assert!(!reheated.cache_hit, "epoch 3 is a different cache key");
        assert_eq!(reheated.epoch, Some(3));
        assert_eq!(reheated.answer.distribution, shifted.answer.distribution);

        // `ttk append --file` scores a CSV locally and stages it (no seal:
        // the rows stay invisible, the epoch stays put).
        run(&s(&[
            "append",
            "--server",
            &addr,
            "--dataset",
            "feed",
            "--file",
            &extra_csv.to_string_lossy(),
            "--score",
            "score",
        ]))
        .unwrap();

        // The `ttk watch` verb: the baseline push arrives and --pushes 1
        // closes the subscription server-side.
        run(&s(&[
            "watch",
            "--server",
            &addr,
            "--dataset",
            "feed",
            "--k",
            "1",
            "--pushes",
            "1",
        ]))
        .unwrap();

        server.join().unwrap().unwrap();

        // Client-side validation (nothing dials).
        let err = run(&s(&["append", "--server", &addr, "--dataset", "feed"])).unwrap_err();
        assert!(err.contains("no rows"), "{err}");
        let err = run(&s(&[
            "append",
            "--server",
            &addr,
            "--dataset",
            "feed",
            "--row",
            "1:2:0.5",
            "--file",
            "x.csv",
        ]))
        .unwrap_err();
        assert!(err.contains("either --row literals or one --file"), "{err}");
        let err = run(&s(&[
            "append",
            "--server",
            &addr,
            "--dataset",
            "feed",
            "--row",
            "nope",
        ]))
        .unwrap_err();
        assert!(err.contains("ID:SCORE:PROB"), "{err}");
        let err = run(&s(&["watch", "--server", &addr, "--dataset", "feed"])).unwrap_err();
        assert!(err.contains("--k"), "{err}");
        // Serve-side: --live without a score works, but no datasets at all
        // is still an error.
        assert!(run(&s(&["serve", "--listen", "127.0.0.1:0"])).is_err());

        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&extra_csv).ok();
    }

    /// Admission control: when the only worker stays busy past the grace
    /// window, new connections are shed with a busy/retry-after frame. The
    /// client retries with backoff and completes once the worker frees, and
    /// the shed attempts do not count toward --max-conns (the daemon exits
    /// after exactly the two *served* connections).
    #[test]
    fn serve_sheds_busy_connections_and_clients_retry() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_shed.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "synthetic",
            "--tuples",
            "2000",
            "--seed",
            "21",
            "--out",
            &path,
        ]))
        .unwrap();
        let port_file = dir.join("ttk_cli_test_shed_port");
        std::fs::remove_file(&port_file).ok();
        let dataset_spec = format!("data={path}");
        let server_args = s(&[
            "serve",
            &dataset_spec,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "2",
            "--max-parallel",
            "1",
            "--request-wait-ms",
            "400",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The stall: the sole worker sits on this connection until the
        // request timeout fires at 400ms. Every dial in between must be
        // shed, not queued.
        let stalled = std::net::TcpStream::connect(&addr).unwrap();
        // Let the handoff land before dialling the real client.
        std::thread::sleep(Duration::from_millis(100));

        let query = TopkQuery::new(2).with_p_tau(1e-3).with_u_topk(false);
        let client = RemoteQueryClient::new(addr.as_str()).with_connect_options(ConnectOptions {
            retries: 6,
            ..ConnectOptions::default()
        });
        let remote = client.execute("data", &query).unwrap();
        assert!(!remote.cache_hit);

        // --max-conns 2 counts the stalled and the served connection only;
        // if shed attempts counted, the daemon would have exited before the
        // query was ever served and the execute above would have failed.
        server.join().unwrap().unwrap();
        drop(stalled);
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data).ok();
    }

    /// Three `serve-shard` daemons lease their id bases from one
    /// `ttk coordinator` (no `--id-base` anywhere) and a query over all
    /// three is bit-identical to the local `--shard` scan of the same files.
    #[test]
    fn coordinator_assigned_three_server_query_round_trip() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_coord.csv");
        let path = data.to_string_lossy().to_string();
        let expr = "speed_limit / (length / delay)";
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "18",
            "--seed",
            "33",
            "--shards",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        let shard_paths: Vec<String> = (0..3).map(|i| shard_path(&path, i)).collect();

        // The coordinator on an ephemeral port, exiting after three leases.
        let coord_port_file = dir.join("ttk_cli_test_coord_port");
        std::fs::remove_file(&coord_port_file).ok();
        let coord_args = s(&[
            "coordinator",
            "--listen",
            "127.0.0.1:0",
            "--namespace",
            "cli-e2e",
            "--max-leases",
            "3",
            "--port-file",
            &coord_port_file.to_string_lossy(),
        ]);
        let coordinator = std::thread::spawn(move || run(&coord_args));
        let coord_addr = poll_port_file(&coord_port_file);

        // Start the shard daemons one at a time, waiting for each port file
        // (written after the lease arrives), so the registration order is
        // the shard order and the leased bases equal the operator
        // arithmetic — making the comparison below bit-identical, ids
        // included.
        let mut servers = Vec::new();
        let mut server_port_files = Vec::new();
        let mut addrs = Vec::new();
        for (i, shard) in shard_paths.iter().enumerate() {
            let pf = dir.join(format!("ttk_cli_test_coord_s{i}"));
            std::fs::remove_file(&pf).ok();
            let args = s(&[
                "serve-shard",
                shard,
                "--score",
                expr,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &pf.to_string_lossy(),
                "--max-conns",
                "2",
                "--coordinator",
                &coord_addr,
            ]);
            servers.push(std::thread::spawn(move || run(&args)));
            addrs.push(poll_port_file(&pf));
            server_port_files.push(pf);
        }
        coordinator.join().unwrap().unwrap();

        // CLI query over the three coordinated servers (connection 1 each).
        let mut query_args = s(&[
            "query",
            "--score",
            expr,
            "--k",
            "3",
            "--remote-timeout",
            "10",
        ]);
        for addr in &addrs {
            query_args.extend(s(&["--remote-shard", addr]));
        }
        run(&query_args).unwrap();

        // Library-level parity (connection 2 each): bit-identical to the
        // local shard scan with the same import discipline.
        let query = TopkQuery::new(3).with_p_tau(1e-3);
        let local = CsvDataset::from_shard_paths(
            shard_paths.clone(),
            CsvOptions::default(),
            parse_expression(expr).unwrap(),
        )
        .with_import(ShardImportOptions {
            first_tuple_id: 0,
            hashed_group_keys: true,
        })
        .into_dataset();
        let mut session = Session::new();
        let reference = session.execute(&local, &query).unwrap();
        let remote = session
            .execute(&RemoteShardDataset::new(addrs).into_dataset(), &query)
            .unwrap();
        assert_eq!(remote.distribution, reference.distribution);
        assert_eq!(remote.scan_depth, reference.scan_depth);
        assert_eq!(
            remote.u_topk.as_ref().unwrap().vector.ids(),
            reference.u_topk.as_ref().unwrap().vector.ids()
        );
        for server in servers {
            server.join().unwrap().unwrap();
        }

        // --coordinator and --id-base conflict (checked before any dial).
        let err = run(&s(&[
            "serve-shard",
            &shard_paths[0],
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0",
            "--coordinator",
            "127.0.0.1:1",
            "--id-base",
            "5",
        ]))
        .unwrap_err();
        assert!(err.contains("--coordinator"), "{err}");
        // ... and so do --coordinator and --namespace (the lease carries it).
        let err = run(&s(&[
            "serve-shard",
            &shard_paths[0],
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0",
            "--coordinator",
            "127.0.0.1:1",
            "--namespace",
            "mine",
        ]))
        .unwrap_err();
        assert!(err.contains("--namespace"), "{err}");
        // The coordinator serves leases, not data.
        assert!(run(&s(&["coordinator", "data.csv", "--listen", "127.0.0.1:0"])).is_err());
        assert!(run(&s(&["coordinator"])).is_err());

        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(&coord_port_file).ok();
        for pf in &server_port_files {
            std::fs::remove_file(pf).ok();
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn explain_after_reports_observed_depth() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_after.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "10",
            "--seed",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "explain", &path, "--score", "delay", "--k", "2", "--after",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn generate_and_query_round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_area.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "12",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
        ]))
        .unwrap();
        // The positional input form resolves to the same single-file dataset.
        run(&s(&[
            "query",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
        ]))
        .unwrap();
        // explain prints the plan without executing.
        run(&s(&["explain", &path, "--score", "delay", "--k", "3"])).unwrap();
        assert!(run(&s(&["explain", &path, "--score", "delay", "--k", "0"])).is_err());
        // Missing required flags are reported as errors.
        assert!(run(&s(&["query", "--file", &path])).is_err());
        assert!(run(&s(&["query", "--file", &path, "--score", "delay"])).is_err());
        std::fs::remove_file(&data).ok();
    }

    /// The wire-v6 admin plane against a live daemon: stats, runtime
    /// registration (guarded by the same duplicate-name check as startup),
    /// reload picking up a rewritten source file, and unregister — while
    /// the original resident keeps answering throughout.
    #[test]
    fn admin_plane_manages_residents_end_to_end() {
        let dir = std::env::temp_dir();
        let alpha_csv = dir.join("ttk_cli_test_admin_alpha.csv");
        let beta_csv = dir.join("ttk_cli_test_admin_beta.csv");
        std::fs::write(&alpha_csv, "score,probability\n100,1.0\n90,0.5\n80,0.25\n").unwrap();
        std::fs::write(&beta_csv, "score,probability\n50,1.0\n40,0.5\n").unwrap();
        let port_file = dir.join("ttk_cli_test_admin_port");
        std::fs::remove_file(&port_file).ok();
        let alpha_spec = format!("alpha={}", alpha_csv.to_string_lossy());
        // Nine connections: stats, register, cold beta query, duplicate
        // register, reload, reloaded query, stats, unregister, missing
        // query.
        let server_args = s(&[
            "serve",
            &alpha_spec,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "9",
            "--max-parallel",
            "2",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);
        let client = RemoteQueryClient::new(addr.as_str());
        let query = TopkQuery::new(1).with_p_tau(1e-6).with_u_topk(false);
        let stats_request = wire::AdminRequest {
            verb: wire::AdminVerb::Stats,
            name: String::new(),
            arg: String::new(),
        };

        // The roster before any admin mutation.
        let stats = client.admin(&stats_request).unwrap();
        assert!(stats.contains("resident datasets: 1"), "{stats}");
        assert!(stats.contains("alpha: static"), "{stats}");

        // Runtime registration through the CLI verb, then the fresh
        // resident answers immediately (its top score is certain).
        let beta_spec = format!("beta={}", beta_csv.to_string_lossy());
        run(&s(&["admin", "--server", &addr, "register", &beta_spec])).unwrap();
        let v1 = client.execute("beta", &query).unwrap();
        assert_eq!(v1.answer.distribution.max_score(), Some(50.0));

        // The startup duplicate-name check guards the admin plane too.
        let err = client
            .admin(&wire::AdminRequest {
                verb: wire::AdminVerb::Register,
                name: "beta".to_string(),
                arg: beta_csv.to_string_lossy().into_owned(),
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("already registered"), "{err}");

        // Rewrite the source and reload: the swap is epoch-safe (queries
        // in flight finish on their Arc'd handle) and lands as a new
        // dataset id, so the repeat is a structural cache miss that sees
        // the new rows.
        std::fs::write(&beta_csv, "score,probability\n70,1.0\n60,0.5\n").unwrap();
        let report = client
            .admin(&wire::AdminRequest {
                verb: wire::AdminVerb::Reload,
                name: "beta".to_string(),
                arg: String::new(),
            })
            .unwrap();
        assert!(report.contains("reloaded `beta`"), "{report}");
        let v2 = client.execute("beta", &query).unwrap();
        assert!(!v2.cache_hit, "a reload must not serve the stale answer");
        assert_eq!(v2.answer.distribution.max_score(), Some(70.0));

        // Stats reflect the grown roster; unregister names the survivors;
        // the dropped name stops resolving.
        let stats = client.admin(&stats_request).unwrap();
        assert!(stats.contains("resident datasets: 2"), "{stats}");
        assert!(stats.contains("beta: static"), "{stats}");
        let report = client
            .admin(&wire::AdminRequest {
                verb: wire::AdminVerb::Unregister,
                name: "beta".to_string(),
                arg: String::new(),
            })
            .unwrap();
        assert!(report.contains("unregistered `beta`"), "{report}");
        assert!(report.contains("alpha"), "{report}");
        let err = client.execute("beta", &query).unwrap_err().to_string();
        assert!(err.contains("no such dataset"), "{err}");
        assert!(err.contains("alpha"), "{err}");

        server.join().unwrap().unwrap();

        // Verb parsing fails before anything dials.
        assert!(run(&s(&["admin", "stats"])).is_err());
        assert!(run(&s(&["admin", "--server", &addr])).is_err());
        assert!(run(&s(&["admin", "--server", &addr, "frobnicate"])).is_err());
        assert!(run(&s(&["admin", "--server", &addr, "register", "nope"])).is_err());
        assert!(run(&s(&["admin", "--server", &addr, "reload"])).is_err());
        assert!(run(&s(&["admin", "--server", &addr, "stats", "extra"])).is_err());

        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&alpha_csv).ok();
        std::fs::remove_file(&beta_csv).ok();
    }

    /// Live-log compaction over the admin plane: seal three segments, fold
    /// them into one, and the merged answer (and its v6 plan tail) stays
    /// bit-identical while the segment count drops to one.
    #[test]
    fn admin_compacts_a_live_dataset_over_the_wire() {
        let dir = std::env::temp_dir();
        let port_file = dir.join("ttk_cli_test_admin_compact_port");
        std::fs::remove_file(&port_file).ok();
        // Nine connections: three sealing appends, the fragmented query,
        // compact, the compacted query, the no-op compact, the
        // importer-less register, and the reload-of-a-live-log error.
        let server_args = s(&[
            "serve",
            "--live",
            "stream",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "9",
            "--max-parallel",
            "2",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);
        let client = RemoteQueryClient::new(addr.as_str());
        let query = TopkQuery::new(2).with_p_tau(1e-6).with_u_topk(false);

        // Three sealed segments (epochs 1-3), appended out of rank order so
        // the fragmented scan genuinely k-way merges.
        let mut epoch = 0;
        for pair in [
            [(1u64, 90.0), (2u64, 50.0)],
            [(3, 120.0), (4, 30.0)],
            [(5, 70.0), (6, 110.0)],
        ] {
            let rows: Vec<SourceTuple> = pair
                .iter()
                .map(|&(id, score)| {
                    SourceTuple::independent(UncertainTuple::new(id, score, 0.5).unwrap())
                })
                .collect();
            let ack = client.append("stream", rows, true).unwrap();
            epoch = ack.epoch;
        }
        assert_eq!(epoch, 3);

        // The fragmented answer, with the v6 live tail on the wire.
        let fragmented = client.execute("stream", &query).unwrap();
        assert_eq!(fragmented.epoch, Some(3));
        assert_eq!(fragmented.live_segments, Some(3));
        assert_eq!(fragmented.compacted_epoch, Some(0), "never compacted");

        // Fold all three segments into one; the fold publishes epoch 4.
        let compact_request = wire::AdminRequest {
            verb: wire::AdminVerb::Compact,
            name: "stream".to_string(),
            arg: String::new(),
        };
        let report = client.admin(&compact_request).unwrap();
        assert!(
            report.contains("compacted `stream`: 3 segments -> 1 at epoch 4"),
            "{report}"
        );

        // Bit-identical answer from one segment. The compaction epoch is a
        // different cache key, so this executed rather than serving the
        // fragmented run's cached answer.
        let compacted = client.execute("stream", &query).unwrap();
        assert!(!compacted.cache_hit);
        assert_eq!(compacted.epoch, Some(4));
        assert_eq!(compacted.live_segments, Some(1));
        assert_eq!(compacted.compacted_epoch, Some(4));
        assert_eq!(
            compacted.answer.distribution,
            fragmented.answer.distribution
        );
        assert_eq!(compacted.answer.typical, fragmented.answer.typical);
        assert_eq!(compacted.answer.scan_depth, fragmented.answer.scan_depth);

        // Compaction is idempotent: one segment is nothing to fold.
        let report = client.admin(&compact_request).unwrap();
        assert!(report.contains("nothing to compact"), "{report}");

        // No --score at startup means no importer for runtime registration,
        // and reload targets file-backed datasets, never live logs.
        let err = client
            .admin(&wire::AdminRequest {
                verb: wire::AdminVerb::Register,
                name: "x".to_string(),
                arg: "x.csv".to_string(),
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("cannot import"), "{err}");
        let err = client
            .admin(&wire::AdminRequest {
                verb: wire::AdminVerb::Reload,
                name: "stream".to_string(),
                arg: String::new(),
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("live"), "{err}");

        server.join().unwrap().unwrap();

        // Flag validation: a compaction bound of one segment is senseless.
        let err = run(&s(&[
            "serve",
            "--live",
            "x",
            "--listen",
            "127.0.0.1:0",
            "--compact-at",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("--compact-at"), "{err}");

        std::fs::remove_file(&port_file).ok();
    }

    /// `--write-timeout-ms` on the shared runtime: a client that connects
    /// and never reads is shed once the socket write stalls past the
    /// timeout, releasing the only worker for a real query — and the daemon
    /// still drains cleanly at --max-conns.
    #[test]
    fn serve_shard_write_timeout_sheds_a_stalled_reader() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_wtimeout.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "synthetic",
            "--tuples",
            "200000",
            "--seed",
            "29",
            "--out",
            &path,
        ]))
        .unwrap();
        let port_file = dir.join("ttk_cli_test_wtimeout_port");
        std::fs::remove_file(&port_file).ok();
        let server_args = s(&[
            "serve-shard",
            &path,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "2",
            "--max-parallel",
            "1",
            "--write-timeout-ms",
            "200",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The stalled reader: connects, announces nothing, reads nothing.
        // After the pushdown grace the server replays 200k tuples into the
        // socket until the kernel buffers fill, then the 200 ms write
        // timeout sheds the connection and frees the worker.
        let stalled = TcpStream::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));

        // The real query completes on the single worker the stall would
        // otherwise have pinned forever.
        run(&s(&[
            "query",
            "--remote-shard",
            &addr,
            "--score",
            "score",
            "--k",
            "2",
            "--remote-timeout",
            "30",
        ]))
        .unwrap();

        drop(stalled);
        server.join().unwrap().unwrap();
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data).ok();
    }

    /// A v5 client (the previous wire revision) against a v6 server: the
    /// result comes back in v5 framing with no v6 tail — the shared
    /// cursor's trailing-byte check and the post-end EOF prove it — and
    /// decodes bit-identically to the v6 client's answer.
    #[test]
    fn v5_clients_read_byte_identical_results_from_a_v6_server() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_v5_compat.csv");
        std::fs::write(
            &data,
            "score,probability\n100,1.0\n90,0.5\n80,0.25\n70,0.125\n",
        )
        .unwrap();
        let port_file = dir.join("ttk_cli_test_v5_compat_port");
        std::fs::remove_file(&port_file).ok();
        let spec = format!("data={}", data.to_string_lossy());
        let server_args = s(&[
            "serve",
            &spec,
            "--score",
            "score",
            "--listen",
            "127.0.0.1:0",
            "--port-file",
            &port_file.to_string_lossy(),
            "--max-conns",
            "2",
        ]);
        let server = std::thread::spawn(move || run(&server_args));
        let addr = poll_port_file(&port_file);

        // The hand-rolled v5 exchange: pin the request version and decode
        // with the shared reader, whose frame cursor rejects trailing bytes
        // — a v6 tail smuggled into the header frame would fail the decode.
        let query = TopkQuery::new(2).with_p_tau(1e-6);
        let mut request = ttk_core::request_for("data", &query);
        request.version = wire::WIRE_VERSION_V5;
        let stream = TcpStream::connect(&addr).unwrap();
        wire::write_query_request(&mut (&stream), &request).unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        let result = wire::read_query_result(&mut reader).unwrap();
        assert_eq!(result.version, wire::WIRE_VERSION_V5);
        assert!(!result.live, "v5 results carry no live tail");
        assert_eq!(result.live_segments, 0);
        assert_eq!(result.compacted_epoch, 0);
        // After the end frame the server has nothing more to say: EOF, not
        // surplus v6 bytes.
        use std::io::Read as _;
        let mut surplus = [0u8; 1];
        assert_eq!(
            reader.read(&mut surplus).unwrap_or(0),
            0,
            "no bytes may follow a v5 result"
        );
        drop(reader);
        drop(stream);

        // The modern client sees the same answer bit for bit.
        let modern = RemoteQueryClient::new(addr.as_str())
            .execute("data", &query)
            .unwrap();
        let (v5_answer, v5_cache_hit) = ttk_core::answer_from_wire(result);
        assert!(!v5_cache_hit, "the cold v5 run executed");
        assert_eq!(v5_answer.distribution, modern.answer.distribution);
        assert_eq!(v5_answer.typical, modern.answer.typical);
        assert_eq!(v5_answer.scan_depth, modern.answer.scan_depth);

        server.join().unwrap().unwrap();
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&data).ok();
    }
}
