//! `ttk` — a small command line front end for typical top-k queries on
//! uncertain data.
//!
//! Subcommands:
//!
//! * `ttk generate cartel|synthetic [options]` — write a CSV dataset to
//!   stdout (or `--out FILE`).
//! * `ttk query DATA.csv --score EXPR --k K [options]` — run a top-k
//!   distribution query over a CSV relation and print the histogram, the
//!   typical answers and the U-Topk comparison point. Every input form
//!   (positional/`--file` single file, repeatable `--shard`, out-of-core
//!   `--spill-buffer`) resolves to one `Dataset` served by one `Session`.
//! * `ttk explain DATA.csv --score EXPR [--k K]` — print the execution plan
//!   (chosen scan path, row/depth/cost estimates) without running the query;
//!   `--after` executes the query first so the plan also reports the
//!   observed scan depth and the cost model's drift.
//! * `ttk serve-shard <input> --score EXPR --listen ADDR` — serve the
//!   resolved dataset as a rank-ordered tuple stream over TCP (the wire
//!   protocol of `ttk-uncertain`), one replay per connection. A `ttk query
//!   --remote-shard ADDR` (repeatable, mixable with local `--shard`) scans
//!   the served shards as one relation.
//! * `ttk soldier` — print the paper's toy example end to end.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::TcpListener;
use std::process::ExitCode;

use ttk_core::{
    Algorithm, BatchOptions, Dataset, DatasetProvider, PlanDescription, QueryJob,
    RemoteShardDataset, ScanPath, Session, TopkQuery,
};
use ttk_datagen::cartel::{generate_area, CartelConfig};
use ttk_datagen::soldier;
use ttk_datagen::synthetic::{generate, IntRange, MePolicy, SyntheticConfig};
use ttk_pdb::{
    parse_expression, table_to_csv, CsvDataset, CsvOptions, DataType, PTable, Schema,
    ShardImportOptions, SpillOptions,
};
use ttk_uncertain::{PrefetchPolicy, ScoreDistribution, TupleSource, WireWriter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:
  ttk soldier
  ttk generate cartel   [--segments N] [--seed S] [--out FILE] [--shards N]
  ttk generate synthetic [--tuples N] [--rho R] [--sigma S] [--me-size LO:HI] [--me-gap LO:HI] [--seed S] [--out FILE] [--shards N]
  ttk query   (DATA.csv | --file DATA.csv | --shard s0.csv --shard s1.csv ...
               | --remote-shard HOST:PORT ... [--shard s.csv ...])
              --score EXPR --k K
              [--c C] [--p-tau P] [--max-lines N] [--algorithm main|per-ending|state-expansion|k-combo]
              [--prob-column NAME] [--group-column NAME] [--buckets N]
              [--batch KS] [--threads N] [--spill-buffer TUPLES]
              [--prefetch TUPLES] [--id-base N]
  ttk explain (DATA.csv | --file DATA.csv | --shard ... | --remote-shard ...)
              --score EXPR [--k K] [--p-tau P] [--algorithm ...]
              [--spill-buffer TUPLES] [--prefetch TUPLES] [--after]
  ttk serve-shard (DATA.csv | --file DATA.csv | --shard ...) --score EXPR
              --listen HOST:PORT [--id-base N] [--spill-buffer TUPLES]
              [--max-conns N] [--port-file FILE]
              [--prob-column NAME] [--group-column NAME]

  Every input form resolves to one dataset: a single CSV file (positional or
  --file), the shard files of one partitioned relation (--shard, repeatable;
  scanned under a k-way merge), an out-of-core scan (--spill-buffer T
  external-sorts a single file through runs of at most T tuples spilled to
  temp files), or remote shard servers (--remote-shard, repeatable, mixable
  with local --shard files). --prefetch B reads every shard of a merged scan
  ahead through a B-tuple channel on its own thread.

  serve-shard scores its input once and then serves it as a rank-ordered
  binary tuple stream, one full replay per connection, until --max-conns
  connections were served (0 or absent = forever). --id-base places the
  served rows in the relation's shared tuple-id space (pass the total row
  count of the shards before this one); group keys are hashed from the group
  label so independently-served shards agree on ME groups. --port-file
  writes the actually-bound address (useful with --listen 127.0.0.1:0).

  --batch KS runs one query per k in KS (comma list `1,5,10` or range
  `LO:HI`) through the cost-ordered parallel batch executor and prints a
  summary table; --k is ignored when --batch is given. Batches work on every
  dataset kind — a spilled file is sorted once and its runs are replayed per
  job; remote shards are re-connected per job.

  explain prints the chosen scan path and the scheduler's row/depth/cost
  estimates without executing (with --after it executes once and reports the
  observed scan depth next to the estimate); generate --shards N writes one
  CSV per shard (FILE.shardI.csv)."
}

/// Parsed `--key value` flags; repeated flags accumulate in order.
type Flags = HashMap<String, Vec<String>>;

/// Flags that take no value (their presence means `true`).
const BOOLEAN_FLAGS: &[&str] = &["after"];

/// Parses `--key value` style flags into a map; bare words are positional.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags: Flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags
                    .entry(name.to_string())
                    .or_default()
                    .push("true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags
                .entry(name.to_string())
                .or_default()
                .push(value.clone());
            i += 2;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// The value of a single-valued flag (the last occurrence wins).
fn get<'a>(flags: &'a Flags, name: &str) -> Option<&'a str> {
    flags.get(name).and_then(|v| v.last()).map(String::as_str)
}

fn get_parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match get(flags, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --{name}")),
    }
}

fn parse_range(raw: &str) -> Result<IntRange, String> {
    let (lo, hi) = raw
        .split_once(':')
        .ok_or_else(|| format!("expected LO:HI, got `{raw}`"))?;
    let lo: u64 = lo.parse().map_err(|_| format!("invalid range `{raw}`"))?;
    let hi: u64 = hi.parse().map_err(|_| format!("invalid range `{raw}`"))?;
    if lo > hi {
        return Err(format!("empty range `{raw}`"));
    }
    Ok(IntRange::new(lo, hi))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "soldier" => cmd_soldier(),
        "generate" => cmd_generate(rest),
        "query" => cmd_query(rest),
        "explain" => cmd_explain(rest),
        "serve-shard" => cmd_serve_shard(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_soldier() -> Result<(), String> {
    let table = soldier::table().map_err(|e| e.to_string())?;
    let dataset = Dataset::table(table).with_label("soldier (Figure 1)");
    let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
    let answer = Session::new()
        .execute(&dataset, &query)
        .map_err(|e| e.to_string())?;
    println!("The soldier-monitoring example of the paper (k = 2):");
    print_histogram(&answer.distribution, 14, &markers(&answer));
    print_answer_summary(&answer);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let kind = positional
        .first()
        .ok_or("generate needs a dataset kind: cartel or synthetic")?;
    let seed = get_parse(&flags, "seed", 42u64)?;
    let table = match kind.as_str() {
        "cartel" => {
            let segments = get_parse(&flags, "segments", 60usize)?;
            let area = generate_area(&CartelConfig {
                segments,
                seed,
                ..CartelConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let schema = Schema::default()
                .with("segment_id", DataType::Integer)
                .with("speed_limit", DataType::Float)
                .with("length", DataType::Float)
                .with("delay", DataType::Float);
            let mut table = PTable::new("area", schema);
            for segment in &area.segments {
                for bin in &segment.bins {
                    table
                        .insert(
                            vec![
                                (segment.segment_id as i64).into(),
                                segment.speed_limit_kmh.into(),
                                segment.length_m.into(),
                                bin.delay_seconds.into(),
                            ],
                            bin.probability.clamp(1e-6, 1.0),
                            Some(&format!("segment-{}", segment.segment_id)),
                        )
                        .map_err(|e| e.to_string())?;
                }
            }
            table
        }
        "synthetic" => {
            let tuples = get_parse(&flags, "tuples", 300usize)?;
            let rho = get_parse(&flags, "rho", 0.0f64)?;
            let sigma = get_parse(&flags, "sigma", 60.0f64)?;
            let group_size = match get(&flags, "me-size") {
                Some(raw) => parse_range(raw)?,
                None => IntRange::new(2, 3),
            };
            let gap = match get(&flags, "me-gap") {
                Some(raw) => parse_range(raw)?,
                None => IntRange::new(1, 8),
            };
            let table = generate(&SyntheticConfig {
                tuples,
                correlation: rho,
                score_std: sigma,
                me_policy: MePolicy {
                    group_size,
                    gap,
                    portion: 1.0,
                },
                seed,
                ..SyntheticConfig::default()
            })
            .map_err(|e| e.to_string())?;
            // Export as a flat relation: score column + probability + group.
            let schema = Schema::default().with("score", DataType::Float);
            let mut out = PTable::new("synthetic", schema);
            for pos in 0..table.len() {
                let t = table.tuple(pos);
                let group_label = {
                    let members = table.group_members(pos);
                    (members.len() > 1).then(|| format!("g{}", table.group_index(pos)))
                };
                out.insert(vec![t.score().into()], t.prob(), group_label.as_deref())
                    .map_err(|e| e.to_string())?;
            }
            out
        }
        other => return Err(format!("unknown dataset kind `{other}`")),
    };
    let shards = get_parse(&flags, "shards", 1usize)?;
    if shards > 1 {
        let out = get(&flags, "out")
            .ok_or("--shards needs --out FILE (used as the shard file name template)")?;
        for (index, part) in split_rows_round_robin(&table, shards)?.iter().enumerate() {
            let path = shard_path(out, index);
            std::fs::write(&path, table_to_csv(part, &CsvOptions::default()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        println!(
            "wrote {} rows as {shards} shard files: {} .. {}",
            table.len(),
            shard_path(out, 0),
            shard_path(out, shards - 1)
        );
        return Ok(());
    }
    let csv = table_to_csv(&table, &CsvOptions::default());
    match get(&flags, "out") {
        Some(path) => std::fs::write(path, csv).map_err(|e| e.to_string())?,
        None => print!("{csv}"),
    }
    Ok(())
}

/// Partitions a table's rows round-robin into `shards` tables sharing its
/// schema (and therefore its global group-key strings).
fn split_rows_round_robin(table: &PTable, shards: usize) -> Result<Vec<PTable>, String> {
    let mut parts: Vec<PTable> = (0..shards)
        .map(|i| PTable::new(format!("{}_shard{i}", table.name()), table.schema().clone()))
        .collect();
    for (i, row) in table.rows().iter().enumerate() {
        parts[i % shards]
            .insert(row.values.clone(), row.probability, row.group.as_deref())
            .map_err(|e| e.to_string())?;
    }
    Ok(parts)
}

/// Names shard file `index` after the `--out` template: `area.csv` becomes
/// `area.shard0.csv`, an extension-less name gets `.shard0` appended. Only
/// the file-name component is rewritten, so dots in directory names are left
/// alone.
fn shard_path(out: &str, index: usize) -> String {
    let path = std::path::Path::new(out);
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    let sharded = match file.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.shard{index}.{ext}"),
        _ => format!("{file}.shard{index}"),
    };
    path.with_file_name(sharded).to_string_lossy().into_owned()
}

/// Parses a `--batch` specification: `1,5,10` or `LO:HI` (inclusive).
fn parse_k_list(raw: &str) -> Result<Vec<usize>, String> {
    if let Some((lo, hi)) = raw.split_once(':') {
        let lo: usize = lo
            .parse()
            .map_err(|_| format!("invalid batch range `{raw}`"))?;
        let hi: usize = hi
            .parse()
            .map_err(|_| format!("invalid batch range `{raw}`"))?;
        if lo == 0 || lo > hi {
            return Err(format!("empty batch range `{raw}`"));
        }
        return Ok((lo..=hi).collect());
    }
    let ks: Vec<usize> = raw
        .split(',')
        .map(|part| part.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid batch list `{raw}`"))?;
    if ks.contains(&0) {
        return Err(format!("batch list `{raw}` must contain positive k values"));
    }
    Ok(ks)
}

/// The query-shape flags shared by `ttk query` and `ttk explain`.
struct QuerySpec {
    topk: TopkQuery,
    expression_text: String,
}

/// Parses the query-parameter flags (everything except the input form).
fn parse_query_spec(flags: &Flags, k: usize) -> Result<QuerySpec, String> {
    let score = get(flags, "score").ok_or("--score is required")?;
    let c = get_parse(flags, "c", 3usize)?;
    let p_tau = get_parse(flags, "p-tau", 1e-3f64)?;
    let max_lines = get_parse(flags, "max-lines", 200usize)?;
    let algorithm = match get(flags, "algorithm") {
        None | Some("main") => Algorithm::Main,
        Some("per-ending") => Algorithm::MainPerEnding,
        Some("state-expansion") => Algorithm::StateExpansion,
        Some("k-combo") => Algorithm::KCombo,
        Some(other) => return Err(format!("unknown algorithm `{other}`")),
    };
    Ok(QuerySpec {
        topk: TopkQuery::new(k)
            .with_typical_count(c)
            .with_p_tau(p_tau)
            .with_max_lines(max_lines)
            .with_algorithm(algorithm),
        expression_text: score.to_string(),
    })
}

/// The CSV metadata-column options from the shared flags.
fn parse_csv_options(flags: &Flags) -> CsvOptions {
    CsvOptions {
        probability_column: get(flags, "prob-column")
            .unwrap_or("probability")
            .to_string(),
        group_column: Some(
            get(flags, "group-column")
                .unwrap_or("group_key")
                .to_string(),
        ),
    }
}

/// Resolves the input flags of `query`/`explain`/`serve-shard` to exactly
/// one [`Dataset`].
///
/// The input forms — a single CSV file (positional or `--file`), a shard
/// set (repeatable `--shard`), the out-of-core scan of a single file
/// (`--spill-buffer`) and remote shard servers (repeatable `--remote-shard`,
/// mixable with `--shard`) — are mutually constrained; any conflicting
/// combination is rejected with one error naming the dataset kind each flag
/// resolves to. `serving` marks the serve-shard mode: remote inputs are
/// rejected and group keys are hashed so independently-served shards agree
/// on ME groups without coordination.
fn resolve_dataset(
    positional: &[String],
    flags: &Flags,
    csv_options: &CsvOptions,
    score: &str,
    serving: bool,
) -> Result<Dataset, String> {
    let shard_files: Vec<String> = flags.get("shard").cloned().unwrap_or_default();
    let remote_shards: Vec<String> = flags.get("remote-shard").cloned().unwrap_or_default();
    let flag_file = get(flags, "file");
    if positional.len() > 1 {
        return Err(format!(
            "unexpected extra positional arguments {:?}: a query scans one dataset — pass a \
             single CSV file, or use --shard (repeatable) for the shard files of one \
             partitioned relation",
            &positional[1..]
        ));
    }
    let positional_file = positional.first().map(String::as_str);
    let spill_buffer = get_parse(flags, "spill-buffer", 0usize)?;
    let prefetch_buffer = get_parse(flags, "prefetch", 0usize)?;
    let prefetch = if prefetch_buffer > 0 {
        PrefetchPolicy::per_shard(prefetch_buffer)
    } else {
        PrefetchPolicy::Off
    };
    let id_base = get_parse(flags, "id-base", 0u64)?;
    let expression = parse_expression(score).map_err(|e| e.to_string())?;

    if let (Some(p), Some(f)) = (positional_file, flag_file) {
        return Err(format!(
            "conflicting input flags: the positional argument `{p}` and --file `{f}` both \
             resolve to a single-file CSV dataset; pass the file once"
        ));
    }
    let file = flag_file.or(positional_file);

    if !remote_shards.is_empty() {
        if serving {
            return Err(
                "serve-shard serves local data; --remote-shard only applies to query/explain"
                    .to_string(),
            );
        }
        if let Some(file) = file {
            return Err(format!(
                "conflicting input flags: `{file}` resolves to a single-file CSV dataset, \
                 but --remote-shard was also given ({} servers resolving to a remote shard \
                 dataset); use --shard for local shards merged with remote ones",
                remote_shards.len()
            ));
        }
        if spill_buffer > 0 {
            return Err(
                "conflicting input flags: --spill-buffer configures the external sort of a \
                 single-file CSV dataset, but the input resolved to a remote shard dataset; \
                 spill on the serving side (ttk serve-shard --spill-buffer) instead"
                    .to_string(),
            );
        }
        let mut dataset = RemoteShardDataset::new(remote_shards).with_prefetch(prefetch);
        if !shard_files.is_empty() {
            // Local shards merged into the same relation: hashed group keys
            // (matching the serving side) and the caller-provided id base.
            // Wrapped in a CsvDataset so the scoring pass is cached — every
            // open (e.g. each job of a --batch) replays the cached sources
            // as one pre-merged stream instead of re-reading the files.
            let count = shard_files.len();
            let local = CsvDataset::from_shard_paths(shard_files, csv_options.clone(), expression)
                .with_import(ShardImportOptions {
                    first_tuple_id: id_base,
                    hashed_group_keys: true,
                });
            dataset = dataset.with_local_shards(count, move || {
                Ok(vec![Box::new(local.open()?) as Box<dyn TupleSource + Send>])
            });
        }
        return Ok(dataset.into_dataset());
    }

    let import = ShardImportOptions {
        first_tuple_id: id_base,
        hashed_group_keys: serving,
    };
    match (file, shard_files.is_empty()) {
        (Some(file), false) => Err(format!(
            "conflicting input flags: `{file}` resolves to a single-file CSV dataset, but \
             --shard was also given ({} shard files resolving to a sharded CSV dataset); \
             pass exactly one input form",
            shard_files.len()
        )),
        (None, true) => Err(
            "no input: pass a CSV file (positional or --file), --shard files, or \
             --remote-shard servers"
                .to_string(),
        ),
        (Some(file), true) => {
            let dataset = CsvDataset::from_path(file, csv_options.clone(), expression)
                .with_prefetch(prefetch)
                .with_import(import);
            Ok(if spill_buffer > 0 {
                dataset
                    .with_spill(SpillOptions::with_run_buffer(spill_buffer))
                    .map_err(|e| e.to_string())?
                    .into_dataset()
            } else {
                dataset.into_dataset()
            })
        }
        (None, false) => {
            if spill_buffer > 0 {
                return Err(format!(
                    "conflicting input flags: --spill-buffer configures the external sort of \
                     a single-file CSV dataset, but the input resolved to a sharded CSV \
                     dataset ({} --shard files, loaded as in-memory shard streams); drop \
                     --spill-buffer or pass a single file",
                    shard_files.len()
                ));
            }
            Ok(
                CsvDataset::from_shard_paths(shard_files, csv_options.clone(), expression)
                    .with_prefetch(prefetch)
                    .with_import(import)
                    .into_dataset(),
            )
        }
    }
}

/// `ttk serve-shard`: score the resolved dataset once, then serve it as a
/// framed binary tuple stream over TCP — one full replay per accepted
/// connection (replayable datasets cache their scoring pass / spill index,
/// so replays are cheap).
fn cmd_serve_shard(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let score = get(&flags, "score")
        .ok_or("--score is required")?
        .to_string();
    let listen = get(&flags, "listen").ok_or("--listen HOST:PORT is required")?;
    let max_conns = get_parse(&flags, "max-conns", 0usize)?;
    let csv_options = parse_csv_options(&flags);
    let dataset = resolve_dataset(&positional, &flags, &csv_options, &score, true)?;

    let listener =
        TcpListener::bind(listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    if let Some(path) = get(&flags, "port-file") {
        std::fs::write(path, &bound).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "serving dataset `{}` on {bound}{}",
        dataset.label(),
        if max_conns > 0 {
            format!(" for {max_conns} connection(s)")
        } else {
            String::new()
        }
    );

    let mut served_conns = 0usize;
    for stream in listener.incoming() {
        // Transient accept failures (aborted handshakes, fd pressure) must
        // not take the server down; log and keep accepting.
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("accepting connection: {e}");
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let result = dataset.open().and_then(|mut handle| {
            let hint = handle.remaining_hint();
            WireWriter::new(BufWriter::new(stream), hint)?.serve(&mut handle)
        });
        match result {
            Ok(tuples) => eprintln!("served {tuples} tuples to {peer}"),
            // A peer hanging up early (its scan gate closed) is normal
            // operation for a streaming server, not a reason to exit.
            Err(e) => eprintln!("connection {peer}: {e}"),
        }
        served_conns += 1;
        if max_conns > 0 && served_conns >= max_conns {
            break;
        }
    }
    Ok(())
}

/// One line summarising what was scanned, from the post-execution plan.
fn describe_scan(plan: &PlanDescription) -> String {
    let rows = plan
        .rows
        .map(|r| r.to_string())
        .unwrap_or_else(|| "?".to_string());
    match plan.path {
        ScanPath::InMemory => format!("{rows} rows (in-memory table) from {}", plan.dataset),
        ScanPath::Stream => format!("{rows} rows loaded from {}", plan.dataset),
        ScanPath::MergedShards { shards } => {
            format!(
                "{rows} rows loaded from {} ({shards} shard streams)",
                plan.dataset
            )
        }
        ScanPath::SpilledRuns {
            runs: Some(runs),
            spilled: Some(spilled),
            ..
        } => format!(
            "{rows} rows external-sorted from {} into {runs} runs ({spilled} spilled to disk)",
            plan.dataset
        ),
        ScanPath::SpilledRuns { .. } => {
            format!("{rows} rows from {} (external sort pending)", plan.dataset)
        }
        ScanPath::Remote { remote, local } => {
            if local > 0 {
                format!(
                    "{rows} rows merged from {remote} remote shard streams and {local} local \
                     shards ({})",
                    plan.dataset
                )
            } else {
                format!(
                    "{rows} rows streamed from {remote} remote shards ({})",
                    plan.dataset
                )
            }
        }
        ScanPath::Prefetched { shards, buffer } => format!(
            "{rows} rows loaded from {} ({shards} shard streams, each prefetched through a \
             {buffer}-tuple channel)",
            plan.dataset
        ),
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let k = get_parse(&flags, "k", 0usize)?;
    let batch_ks = match get(&flags, "batch") {
        Some(raw) => Some(parse_k_list(raw)?),
        None => None,
    };
    if k == 0 && batch_ks.is_none() {
        return Err("--k (or --batch) is required and must be at least 1".to_string());
    }
    let spec = parse_query_spec(&flags, k.max(1))?;
    let buckets = get_parse(&flags, "buckets", 16usize)?;
    let threads = get_parse(&flags, "threads", 0usize)?;
    let csv_options = parse_csv_options(&flags);
    let dataset = resolve_dataset(
        &positional,
        &flags,
        &csv_options,
        &spec.expression_text,
        false,
    )?;
    let mut session = Session::new();

    if let Some(ks) = batch_ks {
        let jobs: Vec<QueryJob> = ks
            .iter()
            .map(|&batch_k| QueryJob::new(&dataset, spec.topk.with_k(batch_k)))
            .collect();
        let started = std::time::Instant::now();
        let answers = session.execute_batch(&jobs, &BatchOptions::new().with_threads(threads));
        let plan = session.explain(&dataset, &spec.topk);
        println!(
            "{}; scoring expression: {}",
            describe_scan(&plan),
            spec.expression_text
        );
        print_batch_summary(&ks, &answers, started.elapsed(), threads);
        return Ok(());
    }

    let answer = session
        .execute(&dataset, &spec.topk)
        .map_err(|e| e.to_string())?;
    let plan = session.explain(&dataset, &spec.topk);
    println!(
        "{}; scoring expression: {}",
        describe_scan(&plan),
        spec.expression_text
    );
    print_histogram(&answer.distribution, buckets, &markers(&answer));
    print_answer_summary(&answer);
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let k = get_parse(&flags, "k", 1usize)?;
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let spec = parse_query_spec(&flags, k)?;
    let csv_options = parse_csv_options(&flags);
    let dataset = resolve_dataset(
        &positional,
        &flags,
        &csv_options,
        &spec.expression_text,
        false,
    )?;
    let mut session = Session::new();
    if get(&flags, "after").is_some() {
        // Execute once so the plan can report the observed scan depth (and
        // the cost model's drift) next to the estimate.
        session
            .execute(&dataset, &spec.topk)
            .map_err(|e| e.to_string())?;
    }
    let plan = session.explain(&dataset, &spec.topk);
    println!("{plan}");
    if let Some(drift) = plan.observed_vs_estimated() {
        println!("cost-model drift (observed / estimated scan depth): {drift:.3}");
    }
    Ok(())
}

/// Prints the per-k summary table of a batch run.
fn print_batch_summary(
    ks: &[usize],
    answers: &[ttk_uncertain::Result<ttk_core::QueryAnswer>],
    elapsed: std::time::Duration,
    threads: usize,
) {
    println!(
        "batch of {} queries executed in {:.3} s ({} worker threads)",
        ks.len(),
        elapsed.as_secs_f64(),
        if threads == 0 {
            "auto".to_string()
        } else {
            // The executor never spawns more workers than jobs.
            threads.min(ks.len()).to_string()
        }
    );
    println!(
        "{:>4}  {:>10}  {:>9}  {:>6}  {:>10}  typical scores",
        "k", "E[score]", "std dev", "depth", "U-Topk"
    );
    for (batch_k, answer) in ks.iter().zip(answers) {
        match answer {
            Ok(a) => {
                let u = a
                    .u_topk
                    .as_ref()
                    .map(|u| format!("{:.2}", u.vector.total_score()))
                    .unwrap_or_else(|| "-".to_string());
                let typical: Vec<String> = a
                    .typical
                    .scores()
                    .iter()
                    .map(|s| format!("{s:.2}"))
                    .collect();
                println!(
                    "{batch_k:>4}  {:>10.2}  {:>9.2}  {:>6}  {u:>10}  [{}]",
                    a.expected_score(),
                    a.distribution.std_dev(),
                    a.scan_depth,
                    typical.join(", ")
                );
            }
            Err(e) => println!("{batch_k:>4}  error: {e}"),
        }
    }
}

fn markers(answer: &ttk_core::QueryAnswer) -> Vec<(f64, String)> {
    let mut markers = Vec::new();
    if let Some(u) = &answer.u_topk {
        markers.push((u.vector.total_score(), "U-Topk".to_string()));
    }
    for (i, s) in answer.typical.scores().iter().enumerate() {
        markers.push((*s, format!("typical #{}", i + 1)));
    }
    markers
}

fn print_histogram(distribution: &ScoreDistribution, buckets: usize, markers: &[(f64, String)]) {
    let Some(lo) = distribution.min_score() else {
        println!("(empty distribution)");
        return;
    };
    let hi = distribution.max_score().unwrap_or(lo);
    let width = if hi > lo {
        (hi - lo) / buckets as f64
    } else {
        1.0
    };
    let Some(hist) = distribution.histogram(width) else {
        println!("(empty distribution)");
        return;
    };
    let max_mass = hist
        .buckets
        .iter()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    for (i, &mass) in hist.buckets.iter().enumerate() {
        let start = hist.bucket_start(i);
        let end = start + hist.width;
        let bar = "#".repeat(((mass / max_mass) * 50.0).round() as usize);
        let mut annotation = String::new();
        for (value, label) in markers {
            let in_last = i + 1 == hist.buckets.len() && *value >= start;
            if (*value >= start && *value < end) || in_last {
                annotation.push_str(&format!("  <-- {label} ({value:.1})"));
            }
        }
        println!("[{start:9.2}, {end:9.2})  {mass:6.4}  {bar}{annotation}");
    }
}

fn print_answer_summary(answer: &ttk_core::QueryAnswer) {
    println!();
    println!(
        "captured mass {:.4}, expected score {:.2}, std dev {:.2}, scan depth {}",
        answer.distribution.total_probability(),
        answer.expected_score(),
        answer.distribution.std_dev(),
        answer.scan_depth
    );
    println!("typical answers:");
    for t in &answer.typical.answers {
        match &t.vector {
            Some(v) => println!("  score {:10.2}  {}", t.score, v),
            None => println!(
                "  score {:10.2}  (probability {:.4})",
                t.score, t.probability
            ),
        }
    }
    if let Some(u) = &answer.u_topk {
        println!("U-Topk: {}", u.vector);
        if let Some(p) = answer.u_topk_percentile() {
            println!("U-Topk score percentile within the distribution: {:.3}", p);
        }
    }
    println!(
        "distribution computed in {:.3} s, typical selection in {:.6} s",
        answer.distribution_time.as_secs_f64(),
        answer.typical_time.as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing_separates_positionals_and_flags() {
        let (pos, flags) = parse_flags(&s(&["cartel", "--segments", "40", "--seed", "7"])).unwrap();
        assert_eq!(pos, vec!["cartel"]);
        assert_eq!(get(&flags, "segments"), Some("40"));
        assert_eq!(get(&flags, "seed"), Some("7"));
        assert!(parse_flags(&s(&["--oops"])).is_err());
        // Repeated flags accumulate in order; `get` returns the last value.
        let (_, flags) = parse_flags(&s(&[
            "--shard", "a.csv", "--shard", "b.csv", "--k", "1", "--k", "2",
        ]))
        .unwrap();
        assert_eq!(flags.get("shard").unwrap(), &vec!["a.csv", "b.csv"]);
        assert_eq!(get(&flags, "k"), Some("2"));
    }

    #[test]
    fn shard_paths_are_derived_from_the_out_template() {
        assert_eq!(shard_path("area.csv", 0), "area.shard0.csv");
        assert_eq!(shard_path("area.csv", 11), "area.shard11.csv");
        assert_eq!(shard_path("area", 2), "area.shard2");
        assert_eq!(shard_path(".hidden", 1), ".hidden.shard1");
        // Dots in directory components never attract the shard suffix.
        assert_eq!(shard_path("results.d/area", 0), "results.d/area.shard0");
        assert_eq!(shard_path("data/v1.2/a.csv", 3), "data/v1.2/a.shard3.csv");
    }

    #[test]
    fn flag_value_parsing_and_ranges() {
        let (_, flags) = parse_flags(&s(&["--k", "5"])).unwrap();
        assert_eq!(get_parse(&flags, "k", 0usize).unwrap(), 5);
        assert_eq!(get_parse(&flags, "missing", 3usize).unwrap(), 3);
        assert!(get_parse::<usize>(&flags, "k", 0).is_ok());
        let (_, bad) = parse_flags(&s(&["--k", "five"])).unwrap();
        assert!(get_parse::<usize>(&bad, "k", 0).is_err());
        assert_eq!(parse_range("2:10").unwrap(), IntRange::new(2, 10));
        assert!(parse_range("10:2").is_err());
        assert!(parse_range("abc").is_err());
    }

    #[test]
    fn unknown_commands_are_rejected_and_soldier_runs() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&s(&["soldier"])).is_ok());
    }

    #[test]
    fn batch_specs_parse() {
        assert_eq!(parse_k_list("1,5,10").unwrap(), vec![1, 5, 10]);
        assert_eq!(parse_k_list("2:5").unwrap(), vec![2, 3, 4, 5]);
        assert!(parse_k_list("0:4").is_err());
        assert!(parse_k_list("5:2").is_err());
        assert!(parse_k_list("1,0").is_err());
        assert!(parse_k_list("abc").is_err());
    }

    #[test]
    fn batch_query_runs_over_a_range_of_k() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_batch.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "15",
            "--seed",
            "11",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--batch",
            "1:4",
            "--threads",
            "2",
        ]))
        .unwrap();
        // A bad batch spec is rejected.
        assert!(run(&s(&[
            "query", "--file", &path, "--score", "delay", "--batch", "4:1",
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn sharded_generate_and_query_round_trip() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_shards.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "20",
            "--seed",
            "5",
            "--shards",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        let shard_paths: Vec<String> = (0..3).map(|i| shard_path(&path, i)).collect();
        for p in &shard_paths {
            assert!(std::path::Path::new(p).exists(), "{p} missing");
        }
        // Single query and a batch, both over the shard files.
        let mut query_args = s(&["query", "--score", "speed_limit / (length / delay)"]);
        for p in &shard_paths {
            query_args.extend(s(&["--shard", p]));
        }
        let mut single = query_args.clone();
        single.extend(s(&["--k", "3"]));
        run(&single).unwrap();
        let mut batch = query_args.clone();
        batch.extend(s(&["--batch", "1:4", "--threads", "2"]));
        run(&batch).unwrap();
        // --file and --shard conflict, with an error naming both dataset kinds.
        let mut both = single.clone();
        both.extend(s(&["--file", &path]));
        let err = run(&both).unwrap_err();
        assert!(err.contains("single-file CSV dataset"), "{err}");
        assert!(err.contains("sharded CSV dataset"), "{err}");
        // --spill-buffer applies to a single file only, never silently ignored.
        let mut spill = single.clone();
        spill.extend(s(&["--spill-buffer", "64"]));
        let err = run(&spill).unwrap_err();
        assert!(err.contains("sharded CSV dataset"), "{err}");
        // A positional file and --file together are ambiguous.
        let err = run(&s(&[
            "query", &path, "--file", &path, "--score", "delay", "--k", "2",
        ]))
        .unwrap_err();
        assert!(err.contains("pass the file once"), "{err}");
        assert!(run(&s(&["query", "--score", "delay", "--k", "2"])).is_err());
        // --shards without --out is rejected.
        assert!(run(&s(&["generate", "cartel", "--shards", "2"])).is_err());
        // explain works over the shard set without executing.
        let mut explain = s(&["explain", "--score", "speed_limit / (length / delay)"]);
        for p in &shard_paths {
            explain.extend(s(&["--shard", p]));
        }
        run(&explain).unwrap();
        for p in &shard_paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn spill_buffer_query_runs_out_of_core() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_spill.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "25",
            "--seed",
            "13",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        // The spill index is replayable, so --batch works over a spilled
        // file: the external sort runs once and every job replays the runs.
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "delay",
            "--batch",
            "1:3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        // explain over the spilled dataset reports the external-sort path.
        run(&s(&[
            "explain",
            &path,
            "--score",
            "delay",
            "--k",
            "3",
            "--spill-buffer",
            "16",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn serve_shard_and_remote_query_round_trip() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_remote.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "18",
            "--seed",
            "21",
            "--shards",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        let shard_paths: Vec<String> = (0..2).map(|i| shard_path(&path, i)).collect();
        // Row count of shard 0 = the id base of shard 1 in the shared space.
        let shard0_rows = std::fs::read_to_string(&shard_paths[0])
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
            - 1; // header
        let expr = "speed_limit / (length / delay)";

        // Serve both shards on ephemeral ports. Shard 0 serves two
        // connections (the pure-remote query and the mixed query below);
        // shard 1 serves one — the servers exit once those are done.
        let mut port_files = Vec::new();
        let mut servers = Vec::new();
        for (i, shard) in shard_paths.iter().enumerate() {
            let port_file = dir.join(format!("ttk_cli_test_remote_port{i}"));
            std::fs::remove_file(&port_file).ok();
            let args = s(&[
                "serve-shard",
                shard,
                "--score",
                expr,
                "--listen",
                "127.0.0.1:0",
                "--port-file",
                &port_file.to_string_lossy(),
                "--max-conns",
                if i == 0 { "2" } else { "1" },
                "--id-base",
                &if i == 0 { 0 } else { shard0_rows }.to_string(),
            ]);
            servers.push(std::thread::spawn(move || run(&args)));
            port_files.push(port_file);
        }
        let addrs: Vec<String> = port_files
            .iter()
            .map(|pf| {
                for _ in 0..200 {
                    if let Ok(addr) = std::fs::read_to_string(pf) {
                        if !addr.is_empty() {
                            return addr;
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                panic!("server did not write {pf:?}");
            })
            .collect();

        // Pure remote: both shards over loopback, single query and explain.
        run(&s(&[
            "query",
            "--remote-shard",
            &addrs[0],
            "--remote-shard",
            &addrs[1],
            "--score",
            expr,
            "--k",
            "3",
            "--prefetch",
            "64",
        ]))
        .unwrap();
        run(&s(&[
            "explain",
            "--remote-shard",
            &addrs[0],
            "--remote-shard",
            &addrs[1],
            "--score",
            expr,
            "--k",
            "3",
        ]))
        .unwrap();

        // Mixed: shard 0 remote, shard 1 local (hashed keys + id base align
        // the local shard with the served one).
        run(&s(&[
            "query",
            "--remote-shard",
            &addrs[0],
            "--shard",
            &shard_paths[1],
            "--id-base",
            &shard0_rows.to_string(),
            "--score",
            expr,
            "--k",
            "2",
        ]))
        .unwrap();

        for server in servers {
            server.join().unwrap().unwrap();
        }

        // Conflicting input forms are rejected with explanatory errors.
        let err = run(&s(&[
            "query",
            "--remote-shard",
            "127.0.0.1:1",
            "--file",
            &path,
            "--score",
            expr,
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("remote shard dataset"), "{err}");
        let err = run(&s(&[
            "query",
            "--remote-shard",
            "127.0.0.1:1",
            "--spill-buffer",
            "8",
            "--score",
            expr,
            "--k",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("serving side"), "{err}");
        // serve-shard refuses remote inputs and requires --listen.
        assert!(run(&s(&[
            "serve-shard",
            "--remote-shard",
            "127.0.0.1:1",
            "--score",
            expr,
            "--listen",
            "127.0.0.1:0"
        ]))
        .is_err());
        assert!(run(&s(&["serve-shard", &path, "--score", expr])).is_err());

        for p in shard_paths.iter().map(std::path::Path::new) {
            std::fs::remove_file(p).ok();
        }
        for pf in &port_files {
            std::fs::remove_file(pf).ok();
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn explain_after_reports_observed_depth() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_after.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "10",
            "--seed",
            "2",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "explain", &path, "--score", "delay", "--k", "2", "--after",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn generate_and_query_round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir();
        let data = dir.join("ttk_cli_test_area.csv");
        let path = data.to_string_lossy().to_string();
        run(&s(&[
            "generate",
            "cartel",
            "--segments",
            "12",
            "--seed",
            "3",
            "--out",
            &path,
        ]))
        .unwrap();
        run(&s(&[
            "query",
            "--file",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
        ]))
        .unwrap();
        // The positional input form resolves to the same single-file dataset.
        run(&s(&[
            "query",
            &path,
            "--score",
            "speed_limit / (length / delay)",
            "--k",
            "3",
        ]))
        .unwrap();
        // explain prints the plan without executing.
        run(&s(&["explain", &path, "--score", "delay", "--k", "3"])).unwrap();
        assert!(run(&s(&["explain", &path, "--score", "delay", "--k", "0"])).is_err());
        // Missing required flags are reported as errors.
        assert!(run(&s(&["query", "--file", &path])).is_err());
        assert!(run(&s(&["query", "--file", &path, "--score", "delay"])).is_err());
        std::fs::remove_file(&data).ok();
    }
}
