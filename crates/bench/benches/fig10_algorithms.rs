//! Figure 10: execution time of the main algorithm vs. the StateExpansion
//! and k-Combo baselines as k grows.
//!
//! The naive baselines grow exponentially with k (that is the figure's
//! point), so they are benchmarked only at small k to keep `cargo bench`
//! runnable; the main algorithm is measured across the full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, FIG10_MAX_LINES, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig};
use ttk_core::state_expansion::NaiveConfig;
use ttk_core::{k_combo, state_expansion};
use ttk_uncertain::CoalescePolicy;

fn configs() -> (MainConfig, NaiveConfig) {
    (
        MainConfig {
            p_tau: P_TAU,
            max_lines: FIG10_MAX_LINES,
            track_witnesses: false,
            ..MainConfig::default()
        },
        NaiveConfig {
            p_tau: P_TAU,
            max_lines: FIG10_MAX_LINES,
            coalesce_policy: CoalescePolicy::PaperMean,
            track_witnesses: false,
        },
    )
}

fn bench_algorithms(c: &mut Criterion) {
    let area = evaluation_area(200, 9);
    let table = area.table();
    let (main_config, naive_config) = configs();

    let mut group = c.benchmark_group("fig10_main");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [10usize, 20, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| topk_score_distribution(table, k, &main_config).unwrap());
        });
    }
    group.finish();

    // The naive baselines blow up exponentially on this workload (the point
    // of Figure 10); keep their k small so the bench suite stays runnable.
    let mut group = c.benchmark_group("fig10_state_expansion");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| state_expansion(table, k, &naive_config).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig10_k_combo");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| k_combo(table, k, &naive_config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
