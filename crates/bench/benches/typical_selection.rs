//! Cost of the c-Typical-Topk selection DP (§4) as the number of requested
//! typical answers and the distribution size grow. The paper notes that once
//! the distribution has been computed, re-running the selection for a
//! different c is cheap; this bench quantifies that claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig};
use ttk_core::typical::typical_topk;

fn bench_typical_selection(c: &mut Criterion) {
    let area = evaluation_area(200, 9);
    let mut group = c.benchmark_group("typical_selection");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for max_lines in [100usize, 300, 500] {
        let config = MainConfig {
            p_tau: P_TAU,
            max_lines,
            track_witnesses: false,
            ..MainConfig::default()
        };
        let dist = topk_score_distribution(area.table(), 20, &config)
            .unwrap()
            .distribution;
        for c_value in [1usize, 3, 10] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("lines{}_c{}", dist.len(), c_value)),
                &dist,
                |b, dist| {
                    b.iter(|| typical_topk(dist, c_value).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_typical_selection);
criterion_main!(benches);
