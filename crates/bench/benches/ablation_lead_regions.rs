//! Ablation: the lead-tuple-region refinement of §3.3.3 against the simple
//! per-ending decomposition of §3.3.2 on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, FIG10_MAX_LINES, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig, MeStrategy};

fn bench_strategies(c: &mut Criterion) {
    let area = evaluation_area(120, 23);
    let table = area.table();
    let mut group = c.benchmark_group("ablation_me_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
        let config = MainConfig {
            p_tau: P_TAU,
            max_lines: FIG10_MAX_LINES,
            track_witnesses: false,
            me_strategy: strategy,
            ..MainConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &config,
            |b, config| {
                b.iter(|| topk_score_distribution(table, 15, config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
