//! Figure 11: execution time of the main algorithm as the portion of
//! mutually-exclusive tuples grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{synthetic_table, FIG10_MAX_LINES, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig};
use ttk_datagen::synthetic::{MePolicy, SyntheticConfig};

fn bench_me_portion(c: &mut Criterion) {
    let config = MainConfig {
        p_tau: P_TAU,
        max_lines: FIG10_MAX_LINES,
        track_witnesses: false,
        ..MainConfig::default()
    };
    let mut group = c.benchmark_group("fig11_me_portion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for portion in [0.1f64, 0.3, 0.5] {
        let table = synthetic_table(&SyntheticConfig {
            tuples: 1_000,
            me_policy: MePolicy {
                portion,
                ..MePolicy::default()
            },
            ..SyntheticConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{portion:.1}")),
            &table,
            |b, table| {
                b.iter(|| topk_score_distribution(table, 20, &config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_me_portion);
criterion_main!(benches);
