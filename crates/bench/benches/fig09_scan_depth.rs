//! Figure 9: cost of computing the Theorem-2 scan depth as k grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::scan_depth;

fn bench_scan_depth(c: &mut Criterion) {
    let area = evaluation_area(400, 9);
    let table = area.table();
    let mut group = c.benchmark_group("fig09_scan_depth");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [10usize, 20, 30, 40, 50, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| scan_depth(table, k, P_TAU).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_depth);
criterion_main!(benches);
