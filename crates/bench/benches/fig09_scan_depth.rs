//! Figure 9: cost of the Theorem-2 scan as k grows, in three variants:
//!
//! * `depth` — just computing the scan depth (the paper's figure);
//! * `materialized` — the pre-streaming pipeline: compute the depth over the
//!   full table, then *truncate* (re-sort, re-group) to the prefix;
//! * `streamed` — the rank-scan executor: pull tuples through the
//!   incremental `ScanGate` and assemble the prefix directly, never touching
//!   the tuples past the bound;
//! * `sharded/S` — the same streamed scan over an S-shard round-robin
//!   partition fused under the loser-tree `MergeSource`, quantifying the
//!   per-tuple cost of the k-way merge on top of the single stream.
//!
//! The `materialized`/`streamed` pair quantifies what fusing the stopping
//! condition into the scan saves before any algorithm even runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::{scan_depth, RankScan, ScanGate};
use ttk_uncertain::{MergeSource, TableSource};

fn bench_scan_depth(c: &mut Criterion) {
    let area = evaluation_area(400, 9);
    let table = area.table();
    let mut group = c.benchmark_group("fig09_scan_depth");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [10usize, 20, 30, 40, 50, 60] {
        group.bench_with_input(BenchmarkId::new("depth", k), &k, |b, &k| {
            b.iter(|| scan_depth(table, k, P_TAU).unwrap());
        });
    }
    group.finish();
}

fn bench_streamed_vs_materialized(c: &mut Criterion) {
    let area = evaluation_area(400, 9);
    let table = area.table();
    let mut group = c.benchmark_group("fig09_scan_variants");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("materialized", k), &k, |b, &k| {
            b.iter(|| {
                let depth = scan_depth(table, k, P_TAU).unwrap();
                black_box(table.truncate(depth))
            });
        });
        group.bench_with_input(BenchmarkId::new("streamed", k), &k, |b, &k| {
            let mut scan = RankScan::new();
            b.iter(|| {
                let mut source = TableSource::new(table);
                let mut gate = ScanGate::new(k, P_TAU).unwrap();
                black_box(scan.collect_prefix(&mut source, &mut gate).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_sharded_merge(c: &mut Criterion) {
    let area = evaluation_area(400, 9);
    let k = 20usize;
    let mut group = c.benchmark_group("fig09_sharded_scan");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for shards in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                // Partition once; each iteration rewinds the shard streams and
                // merges by `&mut` reference, so only the loser-tree merge and
                // the gated prefix are inside the timed region.
                let mut parts = area.shard_sources(shards).unwrap();
                let mut scan = RankScan::new();
                b.iter(|| {
                    for part in parts.iter_mut() {
                        part.rewind();
                    }
                    let mut merged = MergeSource::new(parts.iter_mut().collect());
                    let mut gate = ScanGate::new(k, P_TAU).unwrap();
                    black_box(scan.collect_prefix(&mut merged, &mut gate).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_depth,
    bench_streamed_vs_materialized,
    bench_sharded_merge
);
criterion_main!(benches);
