//! Ablation: the cost and behaviour of the two line-coalescing policies
//! (the paper's plain-average rule vs. the probability-weighted refinement),
//! plus the cost of running the main algorithm completely uncoalesced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig};
use ttk_uncertain::{CoalescePolicy, ScoreDistribution};

fn bench_policies(c: &mut Criterion) {
    // Policy cost on a raw distribution with many lines.
    let wide = ScoreDistribution::from_pairs((0..4_000).map(|i| (i as f64 * 0.37, 0.00025)));
    let mut group = c.benchmark_group("ablation_coalesce_policy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for policy in [CoalescePolicy::PaperMean, CoalescePolicy::WeightedMean] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || wide.clone(),
                    |mut d| d.coalesce(200, policy),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    // End-to-end effect: main algorithm with and without coalescing.
    let area = evaluation_area(80, 17);
    let mut group = c.benchmark_group("ablation_coalescing_budget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for max_lines in [0usize, 100, 400] {
        let config = MainConfig {
            p_tau: P_TAU,
            max_lines,
            track_witnesses: false,
            ..MainConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if max_lines == 0 {
                "exact".to_string()
            } else {
                max_lines.to_string()
            }),
            &config,
            |b, config| {
                b.iter(|| topk_score_distribution(area.table(), 10, config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
