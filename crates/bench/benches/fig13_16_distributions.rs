//! Figures 13–16: cost of computing the top-10 score distribution (with
//! witnesses, typical selection and the U-Topk marker) for each synthetic
//! configuration of §5.4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{distribution_figure, synthetic_sweep, synthetic_table};

fn bench_synthetic_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_16_distribution_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, config) in synthetic_sweep() {
        let table = synthetic_table(&config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &table, |b, table| {
            b.iter(|| distribution_figure("bench", table, 10));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic_sweep);
criterion_main!(benches);
