//! Figure 12: execution time of the main algorithm as the line-coalescing
//! budget grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::dp::{topk_score_distribution, MainConfig};

fn bench_max_lines(c: &mut Criterion) {
    let area = evaluation_area(200, 9);
    let table = area.table();
    let mut group = c.benchmark_group("fig12_max_lines");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for max_lines in [50usize, 200, 500] {
        let config = MainConfig {
            p_tau: P_TAU,
            max_lines,
            track_witnesses: false,
            ..MainConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(max_lines),
            &config,
            |b, config| {
                b.iter(|| topk_score_distribution(table, 10, config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_max_lines);
criterion_main!(benches);
