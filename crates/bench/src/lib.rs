//! Shared workloads and data-series generators for the benchmark harness.
//!
//! Every figure of the paper's evaluation section (§5) corresponds to one
//! `figNN_*` function here returning the data series the figure plots. The
//! `figures` binary prints them; the Criterion benches re-measure the
//! timing-based figures with statistical rigour. Keeping the logic in a
//! library makes the series unit-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use ttk_core::baselines::{u_topk, UTopkConfig};
use ttk_core::dp::{topk_score_distribution, MainConfig, MeStrategy};
use ttk_core::state_expansion::NaiveConfig;
use ttk_core::typical::typical_topk;
use ttk_core::{k_combo, scan_depth, state_expansion};
use ttk_datagen::cartel::{generate_area, Area, CartelConfig};
use ttk_datagen::soldier;
use ttk_datagen::synthetic::{generate, IntRange, MePolicy, SyntheticConfig};
use ttk_uncertain::{CoalescePolicy, ScoreDistribution, UncertainTable};

/// The probability threshold used throughout the evaluation (§5.3).
pub const P_TAU: f64 = 1e-3;
/// The line budget used by the timing experiments ("no more than 100 lines").
pub const FIG10_MAX_LINES: usize = 100;

/// A CarTel-like measurement area used by Figures 8–12.
pub fn evaluation_area(segments: usize, seed: u64) -> Area {
    generate_area(&CartelConfig {
        segments,
        seed,
        ..CartelConfig::default()
    })
    .expect("area generation cannot fail for valid configurations")
}

/// The standard synthetic table of Figure 13a (ρ = 0, σ = 60).
pub fn synthetic_table(config: &SyntheticConfig) -> UncertainTable {
    generate(config).expect("synthetic generation cannot fail for valid configurations")
}

fn main_config(max_lines: usize, witnesses: bool) -> MainConfig {
    MainConfig {
        p_tau: P_TAU,
        max_lines,
        coalesce_policy: CoalescePolicy::PaperMean,
        track_witnesses: witnesses,
        me_strategy: MeStrategy::LeadRegions,
    }
}

/// A distribution figure: the PMF plus the U-Topk and 3-Typical markers.
#[derive(Debug, Clone)]
pub struct DistributionFigure {
    /// Label of the figure/sub-plot.
    pub label: String,
    /// The (coalesced) score distribution.
    pub distribution: ScoreDistribution,
    /// Total score of the U-Topk vector, when one exists.
    pub u_topk_score: Option<f64>,
    /// Probability of the U-Topk vector.
    pub u_topk_probability: Option<f64>,
    /// The 3-Typical-Topk scores.
    pub typical_scores: Vec<f64>,
    /// Expected total score.
    pub expected_score: f64,
}

impl DistributionFigure {
    /// Where the U-Topk score falls in the distribution (normalised CDF).
    pub fn u_topk_percentile(&self) -> Option<f64> {
        let score = self.u_topk_score?;
        let total = self.distribution.total_probability();
        (total > 0.0).then(|| self.distribution.cdf(score) / total)
    }
}

/// Computes a distribution figure for a table and query size.
pub fn distribution_figure(label: &str, table: &UncertainTable, k: usize) -> DistributionFigure {
    let out = topk_score_distribution(table, k, &main_config(300, true))
        .expect("main algorithm cannot fail for valid parameters");
    let typical = typical_topk(&out.distribution, 3).expect("non-empty distribution");
    let u = u_topk(table, k, &UTopkConfig::default())
        .expect("search within expansion budget")
        .map(|a| (a.vector.total_score(), a.vector.probability()));
    DistributionFigure {
        label: label.to_string(),
        expected_score: out.distribution.expected_score(),
        typical_scores: typical.scores(),
        u_topk_score: u.map(|x| x.0),
        u_topk_probability: u.map(|x| x.1),
        distribution: out.distribution,
    }
}

/// Figure 3: the toy soldier example (top-2 distribution, U-Top2 marker).
pub fn fig03_soldier() -> DistributionFigure {
    let table = soldier::table().expect("static table is valid");
    let out = topk_score_distribution(
        &table,
        2,
        &MainConfig {
            p_tau: 1e-9,
            max_lines: 0,
            ..main_config(0, true)
        },
    )
    .expect("main algorithm on the toy table");
    let typical = typical_topk(&out.distribution, 3).expect("non-empty distribution");
    let u = u_topk(&table, 2, &UTopkConfig::default())
        .expect("search terminates")
        .map(|a| (a.vector.total_score(), a.vector.probability()));
    DistributionFigure {
        label: "Figure 3: soldier toy example, top-2".to_string(),
        expected_score: out.distribution.expected_score(),
        typical_scores: typical.scores(),
        u_topk_score: u.map(|x| x.0),
        u_topk_probability: u.map(|x| x.1),
        distribution: out.distribution,
    }
}

/// Figure 8: congestion score distributions of top-k roads in three areas.
pub fn fig08_areas() -> Vec<DistributionFigure> {
    [(0u64, 5usize), (1, 5), (2, 10)]
        .iter()
        .map(|&(seed, k)| {
            let area = evaluation_area(60, 100 + seed);
            distribution_figure(
                &format!(
                    "Figure 8{}: area seed {seed}, top-{k}",
                    (b'a' + seed as u8) as char
                ),
                area.table(),
                k,
            )
        })
        .collect()
}

/// Figure 9: k vs. scan depth n (Theorem 2) on the CarTel-like area.
pub fn fig09_scan_depth(ks: &[usize]) -> Vec<(usize, usize)> {
    let area = evaluation_area(400, 9);
    ks.iter()
        .map(|&k| {
            (
                k,
                scan_depth(area.table(), k, P_TAU).expect("valid parameters"),
            )
        })
        .collect()
}

/// One row of the Figure 10 series.
#[derive(Debug, Clone)]
pub struct AlgorithmTiming {
    /// Query size.
    pub k: usize,
    /// Main-algorithm execution time.
    pub main: Duration,
    /// StateExpansion execution time, when it was run for this k.
    pub state_expansion: Option<Duration>,
    /// k-Combo execution time, when it was run for this k.
    pub k_combo: Option<Duration>,
}

/// Figure 10: execution time vs. k for the three algorithms. The naive
/// algorithms grow exponentially on this workload (that is the figure's
/// point), so each gets its own cap: StateExpansion is skipped above
/// `se_max_k` and k-Combo above `kcombo_max_k`.
pub fn fig10_algorithms(
    ks: &[usize],
    se_max_k: usize,
    kcombo_max_k: usize,
) -> Vec<AlgorithmTiming> {
    let area = evaluation_area(400, 9);
    let table = area.table();
    let naive = NaiveConfig {
        p_tau: P_TAU,
        max_lines: FIG10_MAX_LINES,
        coalesce_policy: CoalescePolicy::PaperMean,
        track_witnesses: false,
    };
    ks.iter()
        .map(|&k| {
            let start = Instant::now();
            topk_score_distribution(table, k, &main_config(FIG10_MAX_LINES, false))
                .expect("main algorithm");
            let main = start.elapsed();
            let state_expansion = (k <= se_max_k).then(|| {
                let start = Instant::now();
                state_expansion(table, k, &naive).expect("state expansion");
                start.elapsed()
            });
            let k_combo_time = (k <= kcombo_max_k).then(|| {
                let start = Instant::now();
                k_combo(table, k, &naive).expect("k-combo");
                start.elapsed()
            });
            AlgorithmTiming {
                k,
                main,
                state_expansion,
                k_combo: k_combo_time,
            }
        })
        .collect()
}

/// Figure 11: execution time of the main algorithm vs. the portion of tuples
/// that are mutually exclusive with other tuples.
pub fn fig11_me_portion(portions: &[f64], k: usize) -> Vec<(f64, f64, Duration)> {
    portions
        .iter()
        .map(|&portion| {
            let table = synthetic_table(&SyntheticConfig {
                tuples: 2_000,
                me_policy: MePolicy {
                    portion,
                    ..MePolicy::default()
                },
                ..SyntheticConfig::default()
            });
            let start = Instant::now();
            topk_score_distribution(&table, k, &main_config(FIG10_MAX_LINES, false))
                .expect("main algorithm");
            (portion, table.me_tuple_portion(), start.elapsed())
        })
        .collect()
}

/// Figure 12: execution time of the main algorithm vs. the maximum number of
/// lines kept by coalescing.
pub fn fig12_max_lines(line_budgets: &[usize], k: usize) -> Vec<(usize, Duration)> {
    let area = evaluation_area(400, 9);
    line_budgets
        .iter()
        .map(|&lines| {
            let start = Instant::now();
            topk_score_distribution(area.table(), k, &main_config(lines, false))
                .expect("main algorithm");
            (lines, start.elapsed())
        })
        .collect()
}

/// Figures 13–16: the synthetic sweeps. Each entry is (label, config).
pub fn synthetic_sweep() -> Vec<(String, SyntheticConfig)> {
    let base = SyntheticConfig::default();
    vec![
        ("Figure 13a: rho = 0".to_string(), base),
        (
            "Figure 13b: rho = +0.8".to_string(),
            SyntheticConfig {
                correlation: 0.8,
                ..base
            },
        ),
        (
            "Figure 13c: rho = -0.8".to_string(),
            SyntheticConfig {
                correlation: -0.8,
                ..base
            },
        ),
        (
            "Figure 14: sigma = 100".to_string(),
            SyntheticConfig {
                score_std: 100.0,
                ..base
            },
        ),
        (
            "Figure 15: ME gaps 1-40".to_string(),
            SyntheticConfig {
                me_policy: MePolicy {
                    gap: IntRange::new(1, 40),
                    ..MePolicy::default()
                },
                ..base
            },
        ),
        (
            "Figure 16: ME group sizes 2-10".to_string(),
            SyntheticConfig {
                me_policy: MePolicy {
                    group_size: IntRange::new(2, 10),
                    ..MePolicy::default()
                },
                ..base
            },
        ),
    ]
}

/// Computes the distribution figures for the synthetic sweep (k = 10).
pub fn fig13_16_distributions() -> Vec<DistributionFigure> {
    synthetic_sweep()
        .into_iter()
        .map(|(label, config)| {
            let table = synthetic_table(&config);
            distribution_figure(&label, &table, 10)
        })
        .collect()
}

/// Ablation A1: accuracy of line coalescing — earth mover's distance between
/// the exact and coalesced distributions as the line budget shrinks.
pub fn ablation_coalescing(k: usize, line_budgets: &[usize]) -> Vec<(usize, f64)> {
    let area = evaluation_area(40, 17);
    let exact = topk_score_distribution(area.table(), k, &main_config(0, false))
        .expect("exact run")
        .distribution;
    line_budgets
        .iter()
        .map(|&lines| {
            let approx = topk_score_distribution(area.table(), k, &main_config(lines, false))
                .expect("approximate run")
                .distribution;
            (lines, exact.earth_movers_distance(&approx))
        })
        .collect()
}

/// Ablation A2: the §3.3.3 lead-region refinement vs. the §3.3.2 per-ending
/// decomposition, as wall-clock time on the same workload.
pub fn ablation_lead_regions(k: usize) -> (Duration, Duration) {
    let area = evaluation_area(150, 23);
    let lead = {
        let start = Instant::now();
        topk_score_distribution(area.table(), k, &main_config(FIG10_MAX_LINES, false))
            .expect("lead-region run");
        start.elapsed()
    };
    let per_ending = {
        let config = MainConfig {
            me_strategy: MeStrategy::PerEnding,
            ..main_config(FIG10_MAX_LINES, false)
        };
        let start = Instant::now();
        topk_score_distribution(area.table(), k, &config).expect("per-ending run");
        start.elapsed()
    };
    (lead, per_ending)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_matches_the_paper_numbers() {
        let fig = fig03_soldier();
        assert!((fig.expected_score - 164.1).abs() < 0.05);
        assert_eq!(fig.u_topk_score, Some(118.0));
        assert_eq!(fig.typical_scores, vec![118.0, 183.0, 235.0]);
    }

    #[test]
    fn fig09_scan_depth_grows_with_k() {
        let series = fig09_scan_depth(&[10, 20, 40]);
        assert_eq!(series.len(), 3);
        assert!(series[0].1 < series[1].1 && series[1].1 < series[2].1);
    }

    #[test]
    fn fig10_runs_all_three_algorithms_for_small_k() {
        let rows = fig10_algorithms(&[3], 3, 3);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].state_expansion.is_some());
        assert!(rows[0].k_combo.is_some());
    }

    #[test]
    fn fig11_me_portion_is_monotone_in_the_request() {
        let rows = fig11_me_portion(&[0.1, 0.5], 10);
        assert!(rows[0].1 < rows[1].1);
    }

    #[test]
    fn fig13_correlation_shifts_the_distribution() {
        let table_pos = synthetic_table(&SyntheticConfig::with_correlation(0.8));
        let table_neg = synthetic_table(&SyntheticConfig::with_correlation(-0.8));
        let pos = distribution_figure("pos", &table_pos, 10);
        let neg = distribution_figure("neg", &table_neg, 10);
        assert!(pos.expected_score > neg.expected_score);
    }

    #[test]
    fn ablation_coalescing_distance_shrinks_with_more_lines() {
        let rows = ablation_coalescing(5, &[10, 200]);
        assert!(rows[0].1 >= rows[1].1);
    }
}
