//! CI bench smoke: a fast, deterministic slice of the fig09 scan benchmarks
//! on a tiny dataset, emitted as machine-readable JSON so the CI pipeline can
//! archive a perf trajectory per commit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ttk-bench --bin bench_smoke -- --out BENCH_ci.json
//! ```
//!
//! Without `--out` the JSON goes to stdout. The measurements cover the three
//! scan variants of `fig09_scan_depth` (depth only, streamed single-source
//! prefix, sharded merge prefix), a sharded **spill** scan with per-run
//! prefetching on and off (tracking the I/O-overlap win of the transport
//! layer), one end-to-end main-algorithm query, a loopback `ttk serve` pair —
//! cold execution vs result-cache hit for the identical query — and a
//! loopback remote-shard pair — scan-gate pushdown vs forced full replay —
//! whose `remote_pushdown` summary records the tuples actually shipped per
//! query each way. Enough signal to catch a hot-path regression without
//! turning CI into a benchmark farm.
//!
//! The emitted JSON doubles as the CI regression gate's input: `bench_compare`
//! diffs a fresh run against the committed `BENCH_baseline.json` per sample
//! name and fails the build on slowdowns past its threshold.

use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use ttk_bench::{evaluation_area, P_TAU};
use ttk_core::{
    scan_depth, serve_query, serve_stream, AppendLog, Dataset, DatasetRegistry, LiveDataset,
    QueryServeOptions, RankScan, RemoteQueryClient, RemoteShardDataset, ResultCache, ScanGate,
    ServeOptions, Session, ShardScanGate, TopkQuery,
};
use ttk_pdb::{CsvOptions, SpillIndex, SpillOptions};
use ttk_uncertain::{
    MergeSource, PrefetchPolicy, SourceTuple, TableSource, TupleSource, UncertainTuple, VecSource,
    WireReader, WireWriter,
};

/// Segments of the smoke dataset — an order of magnitude below the paper's
/// evaluation area so a CI leg finishes in seconds.
const SEGMENTS: usize = 60;
const SEED: u64 = 9;
const ITERS: usize = 30;

struct Sample {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    iters: usize,
    /// Tuples the routine processes per iteration, when it has a natural
    /// per-iteration tuple count — emitted as `tuples_per_iter` plus the
    /// derived `tuples_per_sec` throughput.
    tuples_per_iter: Option<u64>,
    /// Mean bytes that crossed the wire per iteration (remote legs only).
    mean_bytes_shipped: Option<u64>,
}

impl Sample {
    /// Annotates the sample with its per-iteration tuple count.
    fn with_tuples(mut self, tuples: u64) -> Self {
        self.tuples_per_iter = Some(tuples);
        self
    }

    /// Annotates the sample with its mean per-iteration wire bytes.
    fn with_bytes(mut self, bytes: u64) -> Self {
        self.mean_bytes_shipped = Some(bytes);
        self
    }
}

/// Times `routine` over `iters` iterations (after one warm-up call).
fn measure<O>(name: &str, iters: usize, mut routine: impl FnMut() -> O) -> Sample {
    std::hint::black_box(routine());
    let mut total = 0u128;
    let mut min = u128::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(routine());
        let ns = start.elapsed().as_nanos();
        total += ns;
        min = min.min(ns);
    }
    Sample {
        name: name.to_string(),
        mean_ns: total / iters as u128,
        min_ns: min,
        iters,
        tuples_per_iter: None,
        mean_bytes_shipped: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let area = evaluation_area(SEGMENTS, SEED);
    let table = area.table();
    let mut samples = Vec::new();
    let mut depths = Vec::new();

    for k in [5usize, 10, 20] {
        let depth = scan_depth(table, k, P_TAU).expect("valid parameters");
        depths.push((k, depth));
        samples.push(measure(&format!("fig09/depth/k{k}"), ITERS, || {
            scan_depth(table, k, P_TAU).unwrap()
        }));
        samples.push(measure(&format!("fig09/streamed/k{k}"), ITERS, || {
            let mut source = TableSource::new(table);
            let mut gate = ScanGate::new(k, P_TAU).unwrap();
            RankScan::new()
                .collect_prefix(&mut source, &mut gate)
                .unwrap()
        }));
        // Partitioned once up front; the timed region rewinds and merges by
        // `&mut` reference so it measures the loser-tree merge, not the
        // partitioning setup.
        let mut parts = area.shard_sources(4).unwrap();
        samples.push(measure(&format!("fig09/sharded4/k{k}"), ITERS, || {
            for part in parts.iter_mut() {
                part.rewind();
            }
            let mut merged = MergeSource::new(parts.iter_mut().collect());
            let mut gate = ScanGate::new(k, P_TAU).unwrap();
            RankScan::new()
                .collect_prefix(&mut merged, &mut gate)
                .unwrap()
        }));
    }
    // The sharded spill scan, prefetch off vs on: the external sort runs
    // once over a relation big enough that run-file decoding is real work;
    // each timed iteration replays the run files under the loser-tree merge
    // and drains the stream. With `PrefetchPolicy::per_shard`, decoding and
    // disk reads happen on one producer thread per run and overlap with the
    // merge (and each other) — the artifact tracks that overlap win per
    // commit. (On a single-core machine the two variants collapse to parity
    // — there is nothing to overlap with — so the pair also serves as a
    // regression guard on the feed's channel overhead.)
    const SPILL_ROWS: usize = 60_000;
    const SPILL_RUNS: usize = 10;
    let mut csv = String::with_capacity(SPILL_ROWS * 24);
    csv.push_str("score,probability,group_key\n");
    for i in 0..SPILL_ROWS {
        let score = ((i * 2_654_435_761) % 1_000_003) as f64 / 7.0;
        let prob = 0.05 + ((i % 89) as f64) / 100.0;
        if i % 5 == 0 {
            csv.push_str(&format!("{score},{prob},g{}\n", i / 10));
        } else {
            csv.push_str(&format!("{score},{prob},\n"));
        }
    }
    let expr = ttk_pdb::parse_expression("score").expect("valid expression");
    let index = Arc::new(
        SpillIndex::from_csv_text(
            &csv,
            &CsvOptions::default(),
            &expr,
            &SpillOptions::with_run_buffer(SPILL_ROWS / SPILL_RUNS),
        )
        .expect("spill import succeeds"),
    );
    for (name, prefetch) in [
        ("fig09/spill-drain/prefetch-off", PrefetchPolicy::Off),
        (
            "fig09/spill-drain/prefetch-8192",
            PrefetchPolicy::per_shard(8192),
        ),
    ] {
        samples.push(
            measure(name, 10, || {
                let mut replay = index.replay_with(prefetch).expect("replay succeeds");
                let mut drained = 0usize;
                while replay.next_tuple().expect("replay streams").is_some() {
                    drained += 1;
                }
                assert_eq!(drained, SPILL_ROWS);
                drained
            })
            .with_tuples(SPILL_ROWS as u64),
        );
    }

    // Columnar vs scalar drain across the wire codec: the same relation
    // encoded once as per-tuple frames and once as kind-20 block frames,
    // then decoded back through the `TupleSource` trait object exactly as a
    // remote scan consumes a connection. The scalar leg pays one
    // length-prefixed frame — header read, body read, field decode — per
    // tuple; the block leg moves up to 4096 tuples per frame and serves the
    // rest out of the already-decoded columns. The pair is the PR's ns/tuple
    // evidence for the block pipeline: the block drain is expected to stay
    // at least 2x cheaper per tuple than the scalar drain.
    const DRAIN_ROWS: usize = 40_000;
    const DRAIN_BLOCK: usize = 4096;
    let mut drain_source = VecSource::new(
        (0..DRAIN_ROWS)
            .map(|i| {
                let score = ((i * 2_654_435_761) % 1_000_003) as f64 / 7.0;
                let prob = 0.05 + ((i % 89) as f64) / 100.0;
                SourceTuple::independent(UncertainTuple::new(i as u64, score, prob).unwrap())
            })
            .collect(),
    );
    let mut tuple_wire = Vec::new();
    let mut writer = WireWriter::new(&mut tuple_wire, Some(DRAIN_ROWS)).unwrap();
    while let Some(tuple) = drain_source.next_tuple().unwrap() {
        writer.write_tuple(&tuple).unwrap();
    }
    writer.finish().unwrap();
    drain_source.rewind();
    let mut block_wire = Vec::new();
    let mut writer = WireWriter::new(&mut block_wire, Some(DRAIN_ROWS)).unwrap();
    while let Some(block) = drain_source.next_block(DRAIN_BLOCK).unwrap() {
        writer.write_block(&block).unwrap();
    }
    writer.finish().unwrap();
    for (name, wire, blocks) in [
        ("blocks/drain", &block_wire, true),
        ("blocks/drain-scalar", &tuple_wire, false),
    ] {
        samples.push(
            measure(name, 10, || {
                let mut reader: Box<dyn TupleSource> = Box::new(WireReader::new(&wire[..]));
                let mut drained = 0usize;
                if blocks {
                    while let Some(block) = reader.next_block(DRAIN_BLOCK).expect("wire decodes") {
                        drained += block.len();
                    }
                } else {
                    while reader.next_tuple().expect("wire decodes").is_some() {
                        drained += 1;
                    }
                }
                assert_eq!(drained, DRAIN_ROWS);
                drained
            })
            .with_tuples(DRAIN_ROWS as u64),
        );
    }

    // The end-to-end query costs seconds per run — a handful of iterations
    // is plenty for trend tracking.
    let dataset = Dataset::table(table.clone());
    let mut session = Session::new();
    samples.push(measure("query/main/k5", 3, || {
        session
            .execute(&dataset, &TopkQuery::new(5).with_u_topk(false))
            .unwrap()
    }));

    // The live-dataset path: staging + sealing an append log (the sort into
    // a rank-ordered segment dominates), and a query over the sealed
    // snapshot's k-way merge — the per-epoch costs of a growing dataset.
    const APPEND_ROWS: usize = 10_000;
    const APPEND_CHUNK: usize = 500;
    let append_rows: Vec<SourceTuple> = (0..APPEND_ROWS)
        .map(|i| {
            let score = ((i * 2_654_435_761) % 1_000_003) as f64 / 7.0;
            let prob = 0.05 + ((i % 89) as f64) / 100.0;
            SourceTuple::independent(UncertainTuple::new(i as u64, score, prob).unwrap())
        })
        .collect();
    samples.push(measure("live/append-seal/10k", 10, || {
        let log = AppendLog::new(usize::MAX >> 1);
        for chunk in append_rows.chunks(APPEND_CHUNK) {
            log.append(chunk.to_vec()).unwrap();
        }
        log.seal()
    }));
    let live_log = Arc::new(AppendLog::new(usize::MAX >> 1));
    for chunk in append_rows.chunks(APPEND_ROWS / 10) {
        live_log.append(chunk.to_vec()).unwrap();
        live_log.seal();
    }
    let live_dataset = Dataset::from_provider(LiveDataset::new(live_log));
    samples.push(measure("live/query-post-seal/k5", 5, || {
        session
            .execute(&live_dataset, &TopkQuery::new(5).with_u_topk(false))
            .unwrap()
    }));

    // Fragmentation vs compaction: the same 10k rows once as a 32-segment
    // log (every query pays a 32-way merge) and once folded into a single
    // sealed segment by `compact()`. The gap between the two samples is
    // what the serving daemon's `--compact-at` bound (and the admin plane's
    // on-demand `compact` verb) buys back on every query.
    const FRAGMENTS: usize = 32;
    let fragmented_log = Arc::new(AppendLog::new(usize::MAX >> 1));
    for chunk in append_rows.chunks(APPEND_ROWS.div_ceil(FRAGMENTS)) {
        fragmented_log.append(chunk.to_vec()).unwrap();
        fragmented_log.seal();
    }
    assert_eq!(fragmented_log.snapshot().segment_count(), FRAGMENTS);
    let fragmented_dataset = Dataset::from_provider(LiveDataset::new(fragmented_log));
    samples.push(measure("live/query-fragmented/k5", 5, || {
        session
            .execute(&fragmented_dataset, &TopkQuery::new(5).with_u_topk(false))
            .unwrap()
    }));
    let compacted_log = Arc::new(AppendLog::new(usize::MAX >> 1));
    for chunk in append_rows.chunks(APPEND_ROWS.div_ceil(FRAGMENTS)) {
        compacted_log.append(chunk.to_vec()).unwrap();
        compacted_log.seal();
    }
    let outcome = compacted_log.compact();
    assert!(outcome.compacted_now);
    assert_eq!(outcome.segments_after, 1);
    let compacted_dataset = Dataset::from_provider(LiveDataset::new(compacted_log));
    samples.push(measure("live/query-compacted/k5", 5, || {
        session
            .execute(&compacted_dataset, &TopkQuery::new(5).with_u_topk(false))
            .unwrap()
    }));

    // The query daemon's result cache, measured over a real loopback round
    // trip: `serve_cache/cold` varies the cache key every iteration (a
    // vanishing pτ perturbation — same work, different key) so each query
    // executes on the server, while `serve_cache/cached` repeats one key so
    // every measured iteration is a cache hit. The gap between the two is
    // the daemon's win on repeated queries; the cached sample alone tracks
    // the dial + frame + cache-lookup overhead.
    const SERVE_COLD_ITERS: usize = 3;
    const SERVE_CACHED_ITERS: usize = 30;
    let serve_listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let serve_addr = serve_listener.local_addr().unwrap().to_string();
    // One warm-up connection per sample on top of the measured iterations.
    let serve_conns = (SERVE_COLD_ITERS + 1) + (SERVE_CACHED_ITERS + 1);
    let serve_thread = std::thread::spawn({
        let table = table.clone();
        move || {
            let registry = DatasetRegistry::new();
            registry
                .register("smoke", Dataset::table(table))
                .expect("register resident dataset");
            let cache = ResultCache::new(64);
            let mut session = Session::new();
            let options = QueryServeOptions::default();
            for _ in 0..serve_conns {
                let (stream, _) = serve_listener.accept().expect("accept");
                serve_query(stream, &registry, &cache, &mut session, &options)
                    .expect("serve query");
            }
        }
    });
    let serve_client = RemoteQueryClient::new(serve_addr);
    let mut cold_seq = 0u32;
    samples.push(measure("serve_cache/cold", SERVE_COLD_ITERS, || {
        cold_seq += 1;
        let query = TopkQuery::new(5)
            .with_p_tau(P_TAU * (1.0 + f64::from(cold_seq) * 1e-9))
            .with_u_topk(false);
        let remote = serve_client.execute("smoke", &query).unwrap();
        assert!(!remote.cache_hit, "a perturbed key must miss the cache");
        remote
    }));
    let cached_query = TopkQuery::new(5).with_p_tau(P_TAU).with_u_topk(false);
    let mut cached_hits = 0usize;
    samples.push(measure("serve_cache/cached", SERVE_CACHED_ITERS, || {
        let remote = serve_client.execute("smoke", &cached_query).unwrap();
        cached_hits += usize::from(remote.cache_hit);
        remote
    }));
    // The warm-up call primed the key (a miss); every measured iteration
    // must have been served from the cache.
    assert_eq!(
        cached_hits, SERVE_CACHED_ITERS,
        "every measured cached iteration must hit"
    );
    serve_thread.join().expect("serve thread");

    // Scan-gate pushdown over the wire: a gated query against four loopback
    // serve-shard daemons, once with pushdown on (each server stops at its
    // conservative per-shard Theorem-2 bound) and once forced to full
    // replay. Besides the timings, the artifact records the tuples actually
    // shipped per query each way — the evidence that pushdown turns
    // per-query network cost into O(scan depth) instead of O(n). The relation
    // is an order of magnitude bigger than the smoke table so the depth/n gap
    // is visible: the Theorem-2 depth grows with k and the probability mix,
    // not with n, while full replay ships every row.
    const PUSHDOWN_SEGMENTS: usize = 600;
    const PUSHDOWN_SHARDS: usize = 4;
    const PUSHDOWN_K: usize = 5;
    const PUSHDOWN_RUNS: usize = 5;
    let pushdown_area = evaluation_area(PUSHDOWN_SEGMENTS, SEED);
    let pushdown_rows = pushdown_area.table().len();
    let pushdown_depth = scan_depth(pushdown_area.table(), PUSHDOWN_K, P_TAU).unwrap();
    let pushdown_query = TopkQuery::new(PUSHDOWN_K)
        .with_p_tau(P_TAU)
        .with_u_topk(false);
    // The deterministic local-only bound: what each shard's gate admits with
    // no remote tightening. Live servers never ship more than this.
    let shard_bound_total: u64 = pushdown_area
        .shard_sources(PUSHDOWN_SHARDS)
        .unwrap()
        .into_iter()
        .map(|mut source| {
            let mut gate = ShardScanGate::new(PUSHDOWN_K, P_TAU).unwrap();
            let mut admitted = 0u64;
            while let Some(t) = source.next_tuple().unwrap() {
                if !gate.admit(t.tuple.score(), t.tuple.prob(), t.group) {
                    break;
                }
                admitted += 1;
            }
            admitted
        })
        .sum();
    let (shipped_sender, shipped_counts) = mpsc::channel();
    let addrs: Vec<String> = pushdown_area
        .shard_sources(PUSHDOWN_SHARDS)
        .unwrap()
        .into_iter()
        .map(|mut source| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().unwrap().to_string();
            let sender = shipped_sender.clone();
            // Stock server configuration, *including* the default
            // `pushdown_wait`. The server cannot tell a v1/v2 full-replay
            // client from a v3 query until either a query frame arrives or
            // the wait elapses (the protocol is client-speaks-first), so a
            // silent legacy client pays the detection wait on every dial —
            // that latency is part of what full replay really costs against
            // a stock daemon, and tuning it down here would hide it from the
            // pushdown/full-replay comparison below. Pushdown clients
            // announce themselves immediately and never wait.
            let options = ServeOptions::default();
            std::thread::spawn(move || loop {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                source.rewind();
                match serve_stream(stream, &mut source, None, &options) {
                    Ok(summary) => {
                        let _ = sender.send((summary.shipped, summary.wire_bytes));
                    }
                    Err(_) => return,
                }
            });
            addr
        })
        .collect();
    let mut mean_shipped = [0u64; 2];
    let mut mean_bytes = [0u64; 2];
    for (slot, (name, pushdown)) in [
        ("remote/pushdown/k5", true),
        ("remote/full-replay/k5", false),
    ]
    .into_iter()
    .enumerate()
    {
        let remote = RemoteShardDataset::new(addrs.clone())
            .with_pushdown(pushdown)
            .into_dataset();
        let sample = measure(name, PUSHDOWN_RUNS, || {
            session.execute(&remote, &pushdown_query).unwrap()
        });
        // One warm-up plus the measured runs, one connection per shard; the
        // servers report every connection's shipped tuple and wire-byte
        // counts on the channel.
        let connections = (PUSHDOWN_RUNS + 1) * PUSHDOWN_SHARDS;
        let (tuple_total, byte_total) = (0..connections)
            .map(|_| {
                shipped_counts
                    .recv_timeout(Duration::from_secs(10))
                    .expect("per-connection serve summary")
            })
            .fold((0u64, 0u64), |(t, b), (shipped, bytes)| {
                (t + shipped, b + bytes)
            });
        mean_shipped[slot] = tuple_total / (PUSHDOWN_RUNS as u64 + 1);
        mean_bytes[slot] = byte_total / (PUSHDOWN_RUNS as u64 + 1);
        samples.push(
            sample
                .with_tuples(mean_shipped[slot])
                .with_bytes(mean_bytes[slot]),
        );
    }

    // Hand-rolled JSON: the workspace has no serde (offline build).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": {{\"generator\": \"cartel\", \"segments\": {SEGMENTS}, \"seed\": {SEED}, \"tuples\": {}}},\n",
        table.len()
    ));
    json.push_str("  \"scan_depths\": {");
    let depth_fields: Vec<String> = depths
        .iter()
        .map(|(k, d)| format!("\"k{k}\": {d}"))
        .collect();
    json.push_str(&depth_fields.join(", "));
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"remote_pushdown\": {{\"shards\": {PUSHDOWN_SHARDS}, \"k\": {PUSHDOWN_K}, \"rows\": {pushdown_rows}, \"scan_depth\": {pushdown_depth}, \"shard_bound_total\": {shard_bound_total}, \"mean_tuples_shipped_pushdown\": {}, \"mean_tuples_shipped_full_replay\": {}, \"mean_bytes_shipped_pushdown\": {}, \"mean_bytes_shipped_full_replay\": {}}},\n",
        mean_shipped[0],
        mean_shipped[1],
        mean_bytes[0],
        mean_bytes[1]
    ));
    json.push_str("  \"results\": [\n");
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            let mut extra = String::new();
            if let Some(tuples) = s.tuples_per_iter {
                let per_sec = tuples as f64 * 1e9 / s.mean_ns.max(1) as f64;
                extra.push_str(&format!(
                    ", \"tuples_per_iter\": {tuples}, \"tuples_per_sec\": {per_sec:.0}"
                ));
            }
            if let Some(bytes) = s.mean_bytes_shipped {
                extra.push_str(&format!(", \"mean_bytes_shipped\": {bytes}"));
            }
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"iters\": {}{extra}}}",
                s.name, s.mean_ns, s.min_ns, s.iters
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write benchmark JSON");
            eprintln!("wrote {} samples to {path}", samples.len());
        }
        None => print!("{json}"),
    }
}
