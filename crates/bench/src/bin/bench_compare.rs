//! CI bench-regression gate: diff a fresh `bench_smoke` run against the
//! committed baseline, per sample name, and fail the build on slowdowns.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ttk-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_ci.json [--threshold 1.25] [--noise-floor-ns 200000]
//! ```
//!
//! A sample regresses when its `mean_ns` ratio (current / baseline) exceeds
//! `--threshold` **and** the absolute slowdown exceeds `--noise-floor-ns` —
//! the floor keeps microsecond-scale samples from failing the build on
//! scheduler jitter. A sample present in the baseline but missing from the
//! current run also fails (a silently dropped sample is a gate with a hole
//! in it); a new sample with no baseline is reported but passes. Exit code 1
//! on any failure, 0 otherwise.
//!
//! The parser reads exactly the hand-rolled JSON `bench_smoke` emits (the
//! workspace builds offline, without serde): every `"name"` string is
//! followed by that sample's `"mean_ns"` integer.

use std::process::ExitCode;

/// Default maximum allowed `current / baseline` mean ratio.
const DEFAULT_THRESHOLD: f64 = 1.25;
/// Default absolute slowdown (ns) a sample must exceed to count at all.
const DEFAULT_NOISE_FLOOR_NS: u128 = 200_000;

/// One sample parsed out of `bench_smoke`-style JSON.
#[derive(Debug, Clone, PartialEq)]
struct ParsedSample {
    name: String,
    mean_ns: u128,
    /// Optional throughput annotation (samples with a natural per-iteration
    /// tuple count emit it) — reported as an informational delta, never
    /// gated on.
    tuples_per_sec: Option<f64>,
}

/// Extracts the samples from `bench_smoke`-style JSON.
fn parse_samples(json: &str) -> Vec<ParsedSample> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\":") {
        rest = &rest[pos + "\"name\":".len()..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let name = rest[..close].to_string();
        rest = &rest[close + 1..];
        let Some(mpos) = rest.find("\"mean_ns\":") else {
            break;
        };
        let digits: String = rest[mpos + "\"mean_ns\":".len()..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(char::is_ascii_digit)
            .collect();
        // The throughput field belongs to this sample only if it appears
        // before the next sample's name key.
        let next_name = rest.find("\"name\":");
        let tuples_per_sec = rest
            .find("\"tuples_per_sec\":")
            .filter(|tpos| next_name.is_none_or(|n| *tpos < n))
            .and_then(|tpos| {
                let digits: String = rest[tpos + "\"tuples_per_sec\":".len()..]
                    .chars()
                    .skip_while(|c| c.is_whitespace())
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                digits.parse().ok()
            });
        if let Ok(mean_ns) = digits.parse() {
            out.push(ParsedSample {
                name,
                mean_ns,
                tuples_per_sec,
            });
        }
    }
    out
}

/// One compared sample, ready to print.
struct Row {
    name: String,
    detail: String,
    failed: bool,
}

/// Diffs `current` against `baseline` under the gate parameters; the second
/// return is true when any row fails the gate.
fn compare(
    baseline: &[ParsedSample],
    current: &[ParsedSample],
    threshold: f64,
    noise_floor_ns: u128,
) -> (Vec<Row>, bool) {
    let mut rows = Vec::new();
    let mut failed = false;
    for base in baseline {
        let Some(cur) = current.iter().find(|s| s.name == base.name) else {
            rows.push(Row {
                name: base.name.clone(),
                detail: "MISSING from the current run".to_string(),
                failed: true,
            });
            failed = true;
            continue;
        };
        let (base_ns, cur_ns) = (base.mean_ns, cur.mean_ns);
        let ratio = cur_ns as f64 / base_ns.max(1) as f64;
        let slowdown = cur_ns.saturating_sub(base_ns);
        let regressed = ratio > threshold && slowdown > noise_floor_ns;
        failed |= regressed;
        // Throughput is informational only: the wall-clock gate above is
        // what fails the build, the tuples/s delta just makes the trend
        // readable next to it.
        let throughput = match (base.tuples_per_sec, cur.tuples_per_sec) {
            (Some(b), Some(c)) if b > 0.0 => format!(
                ", throughput {:.2}M -> {:.2}M tuples/s ({:+.0}%)",
                b / 1e6,
                c / 1e6,
                (c / b - 1.0) * 100.0
            ),
            _ => String::new(),
        };
        rows.push(Row {
            name: base.name.clone(),
            detail: format!(
                "{base_ns} ns -> {cur_ns} ns ({ratio:.2}x){throughput}{}",
                if regressed {
                    "  REGRESSION"
                } else if ratio > threshold {
                    "  (over threshold, under noise floor)"
                } else {
                    ""
                }
            ),
            failed: regressed,
        });
    }
    for cur in current {
        if !baseline.iter().any(|s| s.name == cur.name) {
            rows.push(Row {
                name: cur.name.clone(),
                detail: format!("{} ns (new sample, no baseline)", cur.mean_ns),
                failed: false,
            });
        }
    }
    (rows, failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut noise_floor_ns = DEFAULT_NOISE_FLOOR_NS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold takes a ratio like 1.25");
            }
            "--noise-floor-ns" => {
                i += 1;
                noise_floor_ns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--noise-floor-ns takes an integer nanosecond count");
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare BASELINE.json CURRENT.json \
             [--threshold {DEFAULT_THRESHOLD}] [--noise-floor-ns {DEFAULT_NOISE_FLOOR_NS}]"
        );
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|err| panic!("reading {path}: {err}"));
        let samples = parse_samples(&text);
        assert!(!samples.is_empty(), "{path} holds no samples");
        samples
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    let (rows, failed) = compare(&baseline, &current, threshold, noise_floor_ns);
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
    println!(
        "bench gate: threshold {threshold}x, noise floor {noise_floor_ns} ns \
         ({} baseline samples)",
        baseline.len()
    );
    for row in &rows {
        println!(
            "  {} {:width$}  {}",
            if row.failed { "FAIL" } else { "  ok" },
            row.name,
            row.detail
        );
    }
    if failed {
        eprintln!("bench gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("bench gate passed");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNIPPET: &str = r#"{
  "dataset": {"generator": "cartel", "segments": 60},
  "results": [
    {"name": "fig09/depth/k5", "mean_ns": 1000, "min_ns": 900, "iters": 30},
    {"name": "blocks/drain", "mean_ns": 2000, "min_ns": 1800, "iters": 10, "tuples_per_iter": 40000, "tuples_per_sec": 20000000000},
    {"name": "query/main/k5", "mean_ns": 5000000, "min_ns": 4000000, "iters": 3}
  ]
}"#;

    #[test]
    fn parses_names_means_and_optional_throughput() {
        let samples = parse_samples(SNIPPET);
        assert_eq!(
            samples,
            vec![
                ParsedSample {
                    name: "fig09/depth/k5".to_string(),
                    mean_ns: 1000,
                    tuples_per_sec: None,
                },
                ParsedSample {
                    name: "blocks/drain".to_string(),
                    mean_ns: 2000,
                    tuples_per_sec: Some(20e9),
                },
                ParsedSample {
                    name: "query/main/k5".to_string(),
                    mean_ns: 5_000_000,
                    tuples_per_sec: None,
                },
            ]
        );
    }

    fn sample(name: &str, mean_ns: u128) -> ParsedSample {
        ParsedSample {
            name: name.to_string(),
            mean_ns,
            tuples_per_sec: None,
        }
    }

    #[test]
    fn within_threshold_passes() {
        let baseline = [sample("a", 1_000_000)];
        let current = [sample("a", 1_200_000)];
        let (rows, failed) = compare(&baseline, &current, 1.25, 0);
        assert!(!failed);
        assert!(!rows[0].failed);
    }

    #[test]
    fn over_threshold_but_under_noise_floor_passes() {
        // 2x slower, but the absolute slowdown (1000 ns) is noise.
        let baseline = [sample("a", 1_000)];
        let current = [sample("a", 2_000)];
        let (_, failed) = compare(&baseline, &current, 1.25, 200_000);
        assert!(!failed);
    }

    #[test]
    fn over_threshold_and_noise_floor_fails() {
        let baseline = [sample("a", 1_000_000)];
        let current = [sample("a", 2_000_000)];
        let (rows, failed) = compare(&baseline, &current, 1.25, 200_000);
        assert!(failed);
        assert!(rows[0].failed);
        assert!(rows[0].detail.contains("REGRESSION"));
    }

    #[test]
    fn sample_missing_from_current_fails() {
        let baseline = [sample("a", 1_000), sample("b", 1_000)];
        let current = [sample("a", 1_000)];
        let (rows, failed) = compare(&baseline, &current, 1.25, 0);
        assert!(failed);
        assert!(rows
            .iter()
            .any(|r| r.failed && r.detail.contains("MISSING")));
    }

    #[test]
    fn new_sample_without_baseline_passes() {
        let baseline = [sample("a", 1_000)];
        let current = [sample("a", 1_000), sample("serve_cache/cached", 9_000)];
        let (rows, failed) = compare(&baseline, &current, 1.25, 0);
        assert!(!failed);
        assert!(rows.iter().any(|r| r.detail.contains("new sample")));
    }

    #[test]
    fn throughput_delta_is_reported_but_never_gates() {
        // 4x slower by wall clock *and* throughput — but with a generous
        // threshold the row passes, proving the tuples/s delta is
        // informational only.
        let mut base = sample("blocks/drain", 1_000_000);
        base.tuples_per_sec = Some(40e6);
        let mut cur = sample("blocks/drain", 4_000_000);
        cur.tuples_per_sec = Some(10e6);
        let (rows, failed) = compare(&[base], &[cur], 10.0, 0);
        assert!(!failed);
        assert!(rows[0].detail.contains("throughput 40.00M -> 10.00M"));
        assert!(rows[0].detail.contains("-75%"));
    }
}
