//! Regenerates the data series behind every figure of the paper's evaluation
//! section (§5) and prints them as plain-text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ttk-bench --bin figures           # all figures
//! cargo run --release -p ttk-bench --bin figures -- 9 10   # only figures 9 and 10
//! ```
//!
//! Figure numbers follow the paper: 3 (toy example), 8 (CarTel-like areas),
//! 9 (scan depth), 10 (algorithm timings), 11 (ME portion), 12 (line budget),
//! 13–16 (synthetic sweeps). `A1`/`A2` select the two ablations described in
//! DESIGN.md.

use ttk_bench::*;

fn want(selected: &[String], figure: &str) -> bool {
    selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(figure))
}

fn print_distribution(fig: &DistributionFigure) {
    println!("--- {} ---", fig.label);
    println!(
        "lines: {}, captured mass: {:.4}, expected score: {:.2}",
        fig.distribution.len(),
        fig.distribution.total_probability(),
        fig.expected_score
    );
    match (fig.u_topk_score, fig.u_topk_probability) {
        (Some(score), Some(prob)) => println!(
            "U-Topk score: {:.2} (probability {:.5}, percentile {:.3})",
            score,
            prob,
            fig.u_topk_percentile().unwrap_or(f64::NAN)
        ),
        _ => println!("U-Topk: none"),
    }
    println!(
        "3-Typical scores: {:?}",
        fig.typical_scores
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    // Print the PMF as a 20-bucket histogram series (score_bucket_start, mass).
    if let (Some(lo), Some(hi)) = (fig.distribution.min_score(), fig.distribution.max_score()) {
        let width = if hi > lo { (hi - lo) / 20.0 } else { 1.0 };
        if let Some(hist) = fig.distribution.histogram(width) {
            println!("histogram (bucket_start, probability):");
            for (i, mass) in hist.buckets.iter().enumerate() {
                println!("  {:10.2}  {:.5}", hist.bucket_start(i), mass);
            }
        }
    }
    println!();
}

fn main() {
    let selected: Vec<String> = std::env::args().skip(1).collect();

    if want(&selected, "3") {
        println!("==== Figure 3: toy soldier example ====");
        print_distribution(&fig03_soldier());
    }

    if want(&selected, "8") {
        println!("==== Figure 8: top-k congestion score distributions (CarTel-like areas) ====");
        for fig in fig08_areas() {
            print_distribution(&fig);
        }
    }

    if want(&selected, "9") {
        println!("==== Figure 9: k vs. scan depth n (p_tau = 0.001) ====");
        println!("{:>6} {:>12}", "k", "scan depth");
        for (k, depth) in fig09_scan_depth(&[10, 20, 30, 40, 50, 60]) {
            println!("{k:>6} {depth:>12}");
        }
        println!();
    }

    if want(&selected, "10") {
        println!("==== Figure 10: k vs. execution time (seconds) ====");
        println!(
            "{:>6} {:>14} {:>18} {:>14}",
            "k", "main", "state-expansion", "k-combo"
        );
        // The naive algorithms grow exponentially on this workload; they are
        // capped (StateExpansion at k = 5, k-Combo at k = 4) to keep the
        // harness runnable — the blow-up is the figure's point.
        for row in fig10_algorithms(&[2, 3, 4, 5, 10, 20, 30, 40, 50, 60], 5, 4) {
            let fmt = |d: Option<std::time::Duration>| {
                d.map(|d| format!("{:.3}", d.as_secs_f64()))
                    .unwrap_or_else(|| "(skipped)".to_string())
            };
            println!(
                "{:>6} {:>14.3} {:>18} {:>14}",
                row.k,
                row.main.as_secs_f64(),
                fmt(row.state_expansion),
                fmt(row.k_combo)
            );
        }
        println!();
    }

    if want(&selected, "11") {
        println!("==== Figure 11: ME tuple portion vs. execution time (k = 20) ====");
        println!("{:>10} {:>12} {:>12}", "requested", "actual", "seconds");
        for (requested, actual, time) in fig11_me_portion(&[0.1, 0.2, 0.3, 0.4, 0.5], 20) {
            println!(
                "{requested:>10.1} {actual:>12.3} {:>12.3}",
                time.as_secs_f64()
            );
        }
        println!();
    }

    if want(&selected, "12") {
        println!("==== Figure 12: maximum number of lines vs. execution time (k = 20) ====");
        println!("{:>10} {:>12}", "max lines", "seconds");
        for (lines, time) in fig12_max_lines(&[50, 100, 200, 300, 400, 500], 20) {
            println!("{lines:>10} {:>12.3}", time.as_secs_f64());
        }
        println!();
    }

    let sweep_wanted = ["13", "14", "15", "16"].iter().any(|f| want(&selected, f));
    if sweep_wanted {
        println!("==== Figures 13-16: synthetic sweeps (k = 10) ====");
        for fig in fig13_16_distributions() {
            let number = if fig.label.contains("13") {
                "13"
            } else if fig.label.contains("14") {
                "14"
            } else if fig.label.contains("15") {
                "15"
            } else {
                "16"
            };
            if want(&selected, number) {
                print_distribution(&fig);
            }
        }
    }

    if want(&selected, "A1") {
        println!("==== Ablation A1: line-coalescing accuracy (k = 5) ====");
        println!("{:>10} {:>22}", "max lines", "EMD vs exact");
        for (lines, emd) in ablation_coalescing(5, &[25, 50, 100, 200, 400]) {
            println!("{lines:>10} {emd:>22.4}");
        }
        println!();
    }

    if want(&selected, "A2") {
        println!(
            "==== Ablation A2: lead-region refinement vs. per-ending decomposition (k = 20) ===="
        );
        let (lead, per_ending) = ablation_lead_regions(20);
        println!("lead-region : {:.3} s", lead.as_secs_f64());
        println!("per-ending  : {:.3} s", per_ending.as_secs_f64());
        println!(
            "speedup     : {:.2}x",
            per_ending.as_secs_f64() / lead.as_secs_f64().max(1e-9)
        );
        println!();
    }
}
