//! Property-based tests for the uncertain-relation data model.

use proptest::prelude::*;
use ttk_uncertain::{
    exact_topk_score_distribution, world_count, CoalescePolicy, PossibleWorlds, ScoreDistribution,
    UncertainTable, UncertainTuple,
};

/// Strategy producing a small random uncertain table together with its ME
/// rules. Group sizes are kept small so exhaustive enumeration stays cheap.
fn small_table() -> impl Strategy<Value = UncertainTable> {
    // Up to 8 tuples; scores in a small range so ties happen regularly.
    let tuple = (0u64..1000, 0i32..12, 1u32..=10)
        .prop_map(|(id, score, p)| (id, score as f64, p as f64 / 10.0));
    proptest::collection::vec(tuple, 1..8).prop_map(|mut raw| {
        // Deduplicate ids while keeping order.
        raw.sort_by_key(|r| r.0);
        raw.dedup_by_key(|r| r.0);
        let tuples: Vec<UncertainTuple> = raw
            .iter()
            .map(|&(id, s, p)| UncertainTuple::new(id, s, p).unwrap())
            .collect();
        // Greedily form ME groups of up to 3 tuples whose probabilities sum
        // to at most 1.
        let mut rules: Vec<Vec<u64>> = Vec::new();
        let mut current: Vec<u64> = Vec::new();
        let mut current_sum = 0.0;
        for t in &tuples {
            if current.len() < 3 && current_sum + t.prob() <= 1.0 {
                current.push(t.id().raw());
                current_sum += t.prob();
            } else {
                if current.len() > 1 {
                    rules.push(current.clone());
                }
                current = vec![t.id().raw()];
                current_sum = t.prob();
            }
        }
        if current.len() > 1 {
            rules.push(current);
        }
        UncertainTable::new(
            tuples,
            rules
                .into_iter()
                .map(|r| r.into_iter().map(Into::into).collect())
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Possible-world probabilities always sum to one.
    #[test]
    fn world_probabilities_sum_to_one(table in small_table()) {
        let worlds: Vec<_> = PossibleWorlds::new(&table, 1 << 24).unwrap().collect();
        prop_assert_eq!(worlds.len() as u128, world_count(&table));
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total = {}", total);
    }

    /// The exact top-k score distribution never captures more than unit mass
    /// and equals the probability that at least k tuples exist.
    #[test]
    fn exact_distribution_mass_matches_world_mass(table in small_table(), k in 1usize..4) {
        let dist = exact_topk_score_distribution(&table, k, 1 << 24).unwrap();
        let mass_with_k: f64 = PossibleWorlds::new(&table, 1 << 24)
            .unwrap()
            .filter(|w| w.present.len() >= k)
            .map(|w| w.probability)
            .sum();
        prop_assert!(dist.total_probability() <= 1.0 + 1e-9);
        prop_assert!((dist.total_probability() - mass_with_k).abs() < 1e-9);
    }

    /// Every world either has no top-k (too few tuples) or all of its top-k
    /// vectors share the same total score (Theorem 1).
    #[test]
    fn all_topk_vectors_of_a_world_share_a_score(table in small_table(), k in 1usize..4) {
        for world in PossibleWorlds::new(&table, 1 << 24).unwrap() {
            let vectors = world.topk_vectors(&table, k);
            if world.present.len() < k {
                prop_assert!(vectors.is_empty());
                continue;
            }
            prop_assert!(!vectors.is_empty());
            let score_of = |v: &Vec<usize>| -> f64 {
                v.iter().map(|&p| table.tuple(p).score()).sum()
            };
            let expected = world.topk_score(&table, k).unwrap();
            for v in &vectors {
                prop_assert_eq!(v.len(), k);
                prop_assert!((score_of(v) - expected).abs() < 1e-9);
            }
        }
    }

    /// Coalescing reduces the number of lines to the requested bound while
    /// preserving total probability mass, and keeps the expectation within
    /// the span of the distribution.
    #[test]
    fn coalescing_preserves_mass(
        pairs in proptest::collection::vec((0.0f64..1000.0, 0.01f64..1.0), 1..60),
        max_lines in 1usize..20,
        weighted in any::<bool>(),
    ) {
        let dist = ScoreDistribution::from_pairs(pairs.iter().copied());
        let before_mass = dist.total_probability();
        let lo = dist.min_score().unwrap();
        let hi = dist.max_score().unwrap();
        let mut coalesced = dist.clone();
        let policy = if weighted { CoalescePolicy::WeightedMean } else { CoalescePolicy::PaperMean };
        coalesced.coalesce(max_lines, policy);
        prop_assert!(coalesced.len() <= max_lines);
        prop_assert!((coalesced.total_probability() - before_mass).abs() < 1e-6);
        let mean = coalesced.expected_score();
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// A histogram at any bucket width captures exactly the distribution's
    /// total mass.
    #[test]
    fn histogram_captures_all_mass(
        pairs in proptest::collection::vec((0.0f64..500.0, 0.01f64..1.0), 1..40),
        width in 0.5f64..100.0,
    ) {
        let dist = ScoreDistribution::from_pairs(pairs.iter().copied());
        let h = dist.histogram(width).unwrap();
        prop_assert!((h.total() - dist.total_probability()).abs() < 1e-9);
    }

    /// The earth mover's distance is symmetric and zero on identical inputs.
    #[test]
    fn emd_symmetry(
        a in proptest::collection::vec((0.0f64..100.0, 0.01f64..1.0), 1..20),
        b in proptest::collection::vec((0.0f64..100.0, 0.01f64..1.0), 1..20),
    ) {
        let da = ScoreDistribution::from_pairs(a.iter().copied());
        let db = ScoreDistribution::from_pairs(b.iter().copied());
        prop_assert!(da.earth_movers_distance(&da) < 1e-9);
        let d1 = da.earth_movers_distance(&db);
        let d2 = db.earth_movers_distance(&da);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    /// Quantiles are monotone in the requested level.
    #[test]
    fn quantiles_are_monotone(
        pairs in proptest::collection::vec((0.0f64..100.0, 0.01f64..1.0), 1..20),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let dist = ScoreDistribution::from_pairs(pairs.iter().copied());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(dist.quantile(lo).unwrap() <= dist.quantile(hi).unwrap());
    }
}
