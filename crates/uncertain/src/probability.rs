//! A validated probability value.

use crate::error::{Error, Result};

/// Tolerance used when comparing probability sums against 1.0.
///
/// Membership probabilities typically come from measurement binning or from
/// confidence estimates, so sums of group probabilities are allowed to exceed
/// one by a small floating point slack.
pub const PROBABILITY_EPSILON: f64 = 1e-9;

/// A tuple membership probability, guaranteed to lie in the half-open
/// interval `(0, 1]`.
///
/// The x-relation model of the paper assigns each uncertain tuple a
/// probability of existence. Tuples with probability zero carry no
/// information and are rejected at construction time, which keeps every
/// downstream algorithm free of degenerate branches.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Probability(f64);

impl Probability {
    /// A probability of exactly one (a certain tuple).
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, validating that `value ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProbability`] when the value is not a finite
    /// number in `(0, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if !value.is_finite() || value <= 0.0 || value > 1.0 + PROBABILITY_EPSILON {
            return Err(Error::InvalidProbability {
                value,
                context: "membership probability".to_string(),
            });
        }
        Ok(Probability(value.min(1.0)))
    }

    /// Rebuilds a probability from a value that was validated previously
    /// (a column of a [`TupleBlock`](crate::source::TupleBlock) only ever
    /// holds values that entered through [`Probability::new`]).
    #[inline]
    pub(crate) fn from_validated(value: f64) -> Self {
        debug_assert!(value.is_finite() && value > 0.0 && value <= 1.0);
        Probability(value)
    }

    /// Returns the raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complement `1 − p` (the probability that the tuple does
    /// not appear). The complement may legitimately be zero.
    #[inline]
    pub fn complement(self) -> f64 {
        (1.0 - self.0).max(0.0)
    }

    /// True when the tuple is certain (probability 1 up to epsilon).
    #[inline]
    pub fn is_certain(self) -> bool {
        self.0 >= 1.0 - PROBABILITY_EPSILON
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.value()
    }
}

impl std::fmt::Display for Probability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_probabilities() {
        for v in [1e-12, 0.1, 0.5, 0.999, 1.0] {
            let p = Probability::new(v).unwrap();
            assert!((p.value() - v).abs() < 1e-15);
        }
    }

    #[test]
    fn rejects_zero_negative_and_above_one() {
        assert!(Probability::new(0.0).is_err());
        assert!(Probability::new(-0.3).is_err());
        assert!(Probability::new(1.0 + 1e-6).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn tolerates_floating_point_slack_just_above_one() {
        let p = Probability::new(1.0 + 1e-12).unwrap();
        assert_eq!(p.value(), 1.0);
    }

    #[test]
    fn complement_and_certainty() {
        assert_eq!(Probability::new(0.25).unwrap().complement(), 0.75);
        assert_eq!(Probability::ONE.complement(), 0.0);
        assert!(Probability::ONE.is_certain());
        assert!(!Probability::new(0.99).unwrap().is_certain());
    }

    #[test]
    fn display_shows_raw_value() {
        assert_eq!(Probability::new(0.5).unwrap().to_string(), "0.5");
    }
}
