//! Channel-fed sources: decoupling tuple *production* from *consumption*.
//!
//! Every source in the workspace used to be a synchronous in-process pull —
//! the consumer's thread paid for parsing, disk reads, or network waits
//! inline with the Theorem-2 scan. A [`TupleFeed`] breaks that coupling: it
//! is the consumer side of a **bounded channel** of rank-ordered tuples, and
//! it implements plain [`TupleSource`], so everything downstream (the scan
//! gate, the loser-tree merge, a `Session`) works unchanged while the
//! producer runs wherever it likes — another thread, another process behind
//! a socket (see [`wire`](crate::wire)), or an ingestion pipeline pushing
//! tuples as they arrive.
//!
//! Two ways to produce:
//!
//! * [`TupleFeed::spawn`] — run any existing `TupleSource` on its own
//!   thread; the thread pulls the source and pushes into the channel,
//!   overlapping the source's I/O with the consumer's work. This is the
//!   engine behind [`PrefetchPolicy::PerShard`]: each shard of a merge reads
//!   ahead up to `buffer` tuples while the merge is busy elsewhere.
//! * [`TupleFeed::channel`] — a raw (producer handle, feed) pair for custom
//!   producers (async ingestion adapters, servers pushing decoded wire
//!   frames).
//!
//! Ordering and bounds are preserved exactly: the channel is FIFO, so the
//! feed replays the producer's rank order bit-identically, and the gate's
//! single-tuple look-ahead still holds — tuples of one tie group are simply
//! buffered inside the channel (never more than its capacity) instead of
//! inside the consumer. Error discipline: a producer failure travels down
//! the channel as the original [`Error`]; a producer that *vanishes*
//! mid-stream (panic, killed process) surfaces as [`Error::Source`] on the
//! consumer's very next pull — never a hang, because dropping the producer
//! handle disconnects the channel.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use crate::error::{Error, Result};
use crate::source::{SourceTuple, TupleBlock, TupleSource};

/// Whether (and how deeply) the shards of a merge read ahead through
/// [`TupleFeed`]s.
///
/// With `PerShard(buffer)`, every shard source is moved onto its own
/// producer thread and the merge pulls from the feeds' channels: per-shard
/// I/O (spill-run replay, socket reads, CSV decoding) overlaps with the
/// loser-tree merge instead of serializing behind it. `Off` keeps the
/// classic synchronous pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPolicy {
    /// Shards are pulled synchronously on the consumer's thread.
    #[default]
    Off,
    /// Each shard runs on its own producer thread behind a bounded channel
    /// holding at most this many tuples.
    PerShard(usize),
}

impl PrefetchPolicy {
    /// Per-shard prefetching through a channel of `buffer` tuples
    /// (`buffer` is clamped to at least 1).
    pub fn per_shard(buffer: usize) -> Self {
        PrefetchPolicy::PerShard(buffer.max(1))
    }

    /// The per-shard channel capacity, or `None` when prefetching is off.
    pub fn buffer(&self) -> Option<usize> {
        match self {
            PrefetchPolicy::Off => None,
            PrefetchPolicy::PerShard(buffer) => Some((*buffer).max(1)),
        }
    }
}

/// What travels down a feed's channel.
enum FeedMessage {
    /// One rank-ordered tuple.
    Tuple(SourceTuple),
    /// A rank-ordered columnar block — the amortized path of
    /// [`TupleFeed::spawn`]: one channel synchronization pays for a whole
    /// block of tuples, and the producer assembles it with the source's own
    /// batched [`next_block`](TupleSource::next_block) pull, so spill-run
    /// decoding and socket reads batch end-to-end.
    Block(TupleBlock),
    /// Clean end of stream.
    End,
    /// The producer failed; the error is delivered to the consumer.
    Failed(Error),
}

/// The producer handle of a [`TupleFeed`]: push tuples, then either
/// [`finish`](FeedSender::finish) or [`fail`](FeedSender::fail).
///
/// Dropping the handle without finishing disconnects the channel, which the
/// consumer reports as [`Error::Source`] — an abnormal end is never silently
/// truncated into a short stream.
pub struct FeedSender {
    tx: SyncSender<FeedMessage>,
}

impl std::fmt::Debug for FeedSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedSender").finish()
    }
}

impl FeedSender {
    /// Pushes one tuple, blocking while the channel is full. Returns `false`
    /// when the consumer has hung up (the producer should stop — nothing it
    /// sends can be observed anymore).
    pub fn send(&self, tuple: SourceTuple) -> bool {
        self.tx.send(FeedMessage::Tuple(tuple)).is_ok()
    }

    /// Marks a clean end of stream and consumes the handle.
    pub fn finish(self) {
        let _ = self.tx.send(FeedMessage::End);
    }

    /// Delivers a producer-side failure to the consumer and consumes the
    /// handle; the consumer's next pull returns exactly this error.
    pub fn fail(self, error: Error) {
        let _ = self.tx.send(FeedMessage::Failed(error));
    }
}

/// The consumer side of a bounded tuple channel — a plain [`TupleSource`]
/// whose producer runs elsewhere. See the [module documentation](self).
pub struct TupleFeed {
    rx: Receiver<FeedMessage>,
    /// The current received block; tuples before `cursor` were already
    /// handed to the consumer.
    pending: TupleBlock,
    cursor: usize,
    done: bool,
    hint: Option<usize>,
}

impl std::fmt::Debug for TupleFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TupleFeed")
            .field("done", &self.done)
            .field("hint", &self.hint)
            .finish()
    }
}

impl TupleFeed {
    /// A raw (producer handle, feed) pair over a channel holding at most
    /// `buffer` tuples (clamped to at least 1). Manual producers deliver one
    /// tuple per [`FeedSender::send`] — no batching, so every tuple is
    /// visible to the consumer as soon as it is sent.
    pub fn channel(buffer: usize) -> (FeedSender, TupleFeed) {
        let (tx, rx) = sync_channel(buffer.max(1));
        (
            FeedSender { tx },
            TupleFeed {
                rx,
                pending: TupleBlock::default(),
                cursor: 0,
                done: false,
                hint: None,
            },
        )
    }

    /// Moves `source` onto its own producer thread and returns the feed the
    /// consumer pulls from.
    ///
    /// The thread pulls `source` in columnar blocks
    /// (via [`next_block`](TupleSource::next_block), so sources with a real
    /// bulk path — spill runs, wire readers, tables — batch their own work
    /// too) and sends each block as one channel message: one synchronization
    /// pays for a whole block. At most ~`buffer` tuples are in flight; the
    /// thread blocks when the consumer falls behind, forwards a clean end of
    /// stream, forwards the source's error if it fails, and exits as soon as
    /// the consumer hangs up. The source's initial
    /// [`size_hint`](TupleSource::size_hint) is preserved on the feed, so
    /// planners still see the row count.
    pub fn spawn(source: impl TupleSource + Send + 'static, buffer: usize) -> TupleFeed {
        let buffer = buffer.max(1);
        // Blocks amortize both the channel synchronization and the source's
        // per-pull work, so they should be as large as the budget allows:
        // half the buffer per block, two blocks in flight (producer fills
        // one while the consumer drains the other). The old quarter-sized
        // chunks at depth 4+ paid more per-message overhead than they
        // amortized — that is exactly the `fig09/spill-drain` regression.
        let chunk = (buffer / 2).clamp(1, 4096);
        let depth = (buffer / chunk).max(2);
        let hint = source.size_hint();
        let (tx, rx) = sync_channel(depth);
        let feed = TupleFeed {
            rx,
            pending: TupleBlock::default(),
            cursor: 0,
            done: false,
            hint,
        };
        std::thread::Builder::new()
            .name("ttk-tuple-feed".to_string())
            .spawn(move || run_producer(source, tx, chunk))
            .expect("spawning a tuple-feed producer thread");
        feed
    }
}

/// The producer loop of [`TupleFeed::spawn`]: pull a block, send a block.
fn run_producer(mut source: impl TupleSource, tx: SyncSender<FeedMessage>, chunk: usize) {
    loop {
        match source.next_block(chunk) {
            Ok(Some(block)) => {
                if tx.send(FeedMessage::Block(block)).is_err() {
                    return; // Consumer hung up; stop producing.
                }
            }
            Ok(None) => {
                let _ = tx.send(FeedMessage::End);
                return;
            }
            Err(error) => {
                let _ = tx.send(FeedMessage::Failed(error));
                return;
            }
        }
    }
}

impl TupleFeed {
    /// Number of buffered tuples not yet handed to the consumer.
    fn buffered(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// Receives the next channel message, returning `Ok(true)` when tuples
    /// became available, `Ok(false)` on a clean end of stream.
    fn refill(&mut self) -> Result<bool> {
        match self.rx.recv() {
            Ok(FeedMessage::Tuple(tuple)) => {
                self.pending.clear();
                self.cursor = 0;
                self.pending.push(&tuple);
                Ok(true)
            }
            Ok(FeedMessage::Block(block)) => {
                self.pending = block;
                self.cursor = 0;
                Ok(!self.pending.is_empty())
            }
            Ok(FeedMessage::End) => {
                self.done = true;
                Ok(false)
            }
            Ok(FeedMessage::Failed(error)) => {
                self.done = true;
                Err(error)
            }
            // The producer handle was dropped without `finish`/`fail`:
            // the producer died. Surface it, don't truncate the stream.
            Err(_) => {
                self.done = true;
                Err(Error::Source(
                    "tuple feed producer disconnected mid-stream".into(),
                ))
            }
        }
    }

    fn consume_hint(&mut self, n: usize) {
        if let Some(hint) = &mut self.hint {
            *hint = hint.saturating_sub(n);
        }
    }
}

impl TupleSource for TupleFeed {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        loop {
            if self.cursor < self.pending.len() {
                let tuple = self.pending.get(self.cursor);
                self.cursor += 1;
                self.consume_hint(1);
                return Ok(Some(tuple));
            }
            if self.done {
                return Ok(None);
            }
            if !self.refill()? && self.done {
                return Ok(None);
            }
        }
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let max = max.max(1);
        loop {
            let buffered = self.buffered();
            if buffered > 0 {
                // Hand the whole received block over when it fits; copy the
                // requested range out otherwise.
                let block = if self.cursor == 0 && buffered <= max {
                    std::mem::take(&mut self.pending)
                } else {
                    let take = buffered.min(max);
                    let mut out = TupleBlock::with_capacity(take);
                    out.push_range(&self.pending, self.cursor, self.cursor + take);
                    self.cursor += take;
                    out
                };
                self.consume_hint(block.len());
                return Ok(Some(block));
            }
            if self.done {
                return Ok(None);
            }
            if !self.refill()? && self.done {
                return Ok(None);
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        if self.done && self.buffered() == 0 {
            return Some(0);
        }
        self.hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use crate::tuple::UncertainTuple;

    fn tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| SourceTuple::independent(UncertainTuple::new(i, (n - i) as f64, 0.5).unwrap()))
            .collect()
    }

    fn drain(source: &mut dyn TupleSource) -> Result<Vec<SourceTuple>> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }

    #[test]
    fn spawned_feed_replays_the_source_bit_identically() {
        let all = tuples(300);
        let direct = drain(&mut VecSource::new(all.clone())).unwrap();
        for buffer in [1usize, 2, 16, 1024] {
            let mut feed = TupleFeed::spawn(VecSource::new(all.clone()), buffer);
            assert_eq!(feed.size_hint(), Some(300), "buffer {buffer}");
            let streamed = drain(&mut feed).unwrap();
            assert_eq!(streamed, direct, "buffer {buffer}");
            // Exhausted feeds stay exhausted (and report zero remaining).
            assert!(feed.next_tuple().unwrap().is_none());
            assert_eq!(feed.size_hint(), Some(0));
        }
    }

    #[test]
    fn manual_channel_delivers_tuples_then_clean_end() {
        let (sender, mut feed) = TupleFeed::channel(4);
        let ts = tuples(3);
        let expected = ts.clone();
        let producer = std::thread::spawn(move || {
            for t in ts {
                assert!(sender.send(t));
            }
            sender.finish();
        });
        assert_eq!(drain(&mut feed).unwrap(), expected);
        producer.join().unwrap();
    }

    #[test]
    fn producer_failure_surfaces_as_the_original_error() {
        struct FailsAfter(u64);
        impl TupleSource for FailsAfter {
            fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
                if self.0 == 0 {
                    return Err(Error::Source("disk on fire".into()));
                }
                self.0 -= 1;
                Ok(Some(SourceTuple::independent(
                    UncertainTuple::new(self.0, self.0 as f64, 0.5).unwrap(),
                )))
            }
        }
        let mut feed = TupleFeed::spawn(FailsAfter(5), 2);
        let err = drain(&mut feed).unwrap_err();
        assert!(matches!(&err, Error::Source(m) if m.contains("disk on fire")));
        // After the failure the feed is terminated, not wedged.
        assert!(feed.next_tuple().unwrap().is_none());
    }

    #[test]
    fn dropped_producer_is_an_error_not_a_short_stream() {
        let (sender, mut feed) = TupleFeed::channel(4);
        assert!(sender.send(tuples(1)[0]));
        drop(sender); // Died without finish(): abnormal end.
        assert!(feed.next_tuple().unwrap().is_some());
        let err = feed.next_tuple().unwrap_err();
        assert!(matches!(&err, Error::Source(m) if m.contains("disconnected")));
    }

    #[test]
    fn producer_stops_when_the_consumer_hangs_up() {
        let (sender, feed) = TupleFeed::channel(1);
        drop(feed);
        // The channel is disconnected: send reports it instead of blocking.
        assert!(!sender.send(tuples(1)[0]));
    }

    #[test]
    fn prefetch_policy_reports_its_buffer() {
        assert_eq!(PrefetchPolicy::Off.buffer(), None);
        assert_eq!(PrefetchPolicy::per_shard(8).buffer(), Some(8));
        assert_eq!(PrefetchPolicy::per_shard(0).buffer(), Some(1));
        assert_eq!(PrefetchPolicy::default(), PrefetchPolicy::Off);
    }
}
