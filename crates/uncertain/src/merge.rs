//! Sharded sources: a loser-tree k-way merge over per-shard rank-ordered
//! streams.
//!
//! The Theorem-2 scan consumes *one* rank-ordered stream, but a relation
//! serving real traffic is partitioned: per-shard CSV files, external-sort
//! runs spilled to disk, per-machine partitions. [`MergeSource`] makes any
//! such partitioning look like the single stream every consumer already
//! understands — it merges N rank-ordered [`TupleSource`]s into one
//! rank-ordered [`TupleSource`] using a tournament **loser tree**, the
//! classic k-way-merge structure: one comparison path of length ⌈log₂ N⌉ per
//! emitted tuple, independent of how skewed the shards are.
//!
//! Two key-handling modes cover the two ways shards arise:
//!
//! * [`MergeSource::new`] — the shards are a **partition of one logical
//!   relation**: [`GroupKey`]s share one namespace across shards, so a
//!   mutual-exclusion group whose members were split across shards is
//!   reunified by the merge. This is the mode for `--shard` inputs,
//!   external-sort runs and the partitioned generators.
//! * [`MergeSource::disjoint`] — the shards are **unrelated streams**: each
//!   shard's keys are remapped into a private namespace so identical raw keys
//!   in different shards do not collide.
//!
//! The merge is *stable on ties*: when two shard heads compare equal under
//! the workspace rank order, the lower shard index wins, so equal-score
//! tie-groups stay contiguous across shard boundaries and the merged stream
//! is deterministic. Because the rank order is total (score desc, probability
//! desc, id asc), merging any partition of a stream reproduces that stream
//! **exactly** — bit-identical downstream distributions, which the proptests
//! in `ttk-core` assert.
//!
//! Reads stay bounded per shard: the tree buffers at most one look-ahead
//! tuple per shard, so when the scan gate closes after `n + 1` merged tuples,
//! no shard has been read more than one tuple past its contribution to the
//! merged prefix (asserted with per-shard [`CountingSource`] counters).
//!
//! [`CountingSource`]: crate::source::CountingSource

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::source::{GroupKey, SourceTuple, TupleBlock, TupleSource, VecSource};

/// How a [`MergeSource`] treats the [`GroupKey`] namespaces of its shards.
#[derive(Debug)]
enum KeyMode {
    /// All shards share one key namespace (a partition of one relation).
    Shared,
    /// Each shard's keys live in a private namespace; raw keys are remapped
    /// to fresh keys on first sight.
    Disjoint(HashMap<(usize, u64), u64>),
}

/// One shard of a merge: its source, the buffered head tuple, and the rank
/// key of the last tuple pulled (for per-shard order validation).
#[derive(Debug)]
struct Shard<S> {
    source: S,
    head: Option<SourceTuple>,
    last: Option<SourceTuple>,
}

impl<S: TupleSource> Shard<S> {
    /// Pulls the shard's next tuple into `head`, validating that the shard
    /// stream is rank-ordered.
    fn refill(&mut self, index: usize) -> Result<()> {
        let next = self.source.next_tuple()?;
        if let (Some(prev), Some(next)) = (&self.last, &next) {
            if next.tuple.rank_key() < prev.tuple.rank_key() {
                return Err(Error::InvalidParameter(format!(
                    "shard {index} is not rank-ordered: {} streams after {}",
                    next.tuple.id(),
                    prev.tuple.id()
                )));
            }
        }
        if next.is_some() {
            self.last = next;
        }
        self.head = next;
        Ok(())
    }
}

/// A rank-ordered k-way merge over per-shard rank-ordered [`TupleSource`]s.
///
/// See the [module documentation](self) for the key-namespace modes, the
/// stability guarantee and the per-shard read bound. The merge itself is a
/// [`TupleSource`], so it plugs into the rank-scan executor, the batch
/// executor and every other consumer unchanged.
#[derive(Debug)]
pub struct MergeSource<S> {
    shards: Vec<Shard<S>>,
    /// Loser tree over the shard heads: `tree[0]` holds the overall winner,
    /// `tree[1..n]` the losers of the internal tournament nodes (external
    /// node `n + i` is shard `i`, children of internal node `t` are `2t` and
    /// `2t + 1`).
    tree: Vec<usize>,
    initialized: bool,
    emitted: usize,
    keys: KeyMode,
}

impl<S: TupleSource> MergeSource<S> {
    /// Merges shards that partition **one logical relation**: group keys are
    /// shared across shards, so an ME group split across shards is reunified.
    pub fn new(shards: Vec<S>) -> Self {
        Self::with_mode(shards, KeyMode::Shared)
    }

    /// Merges **unrelated** streams: each shard's group keys are remapped
    /// into a private namespace so equal raw keys in different shards stay
    /// distinct groups.
    pub fn disjoint(shards: Vec<S>) -> Self {
        Self::with_mode(shards, KeyMode::Disjoint(HashMap::new()))
    }

    fn with_mode(shards: Vec<S>, keys: KeyMode) -> Self {
        let n = shards.len();
        MergeSource {
            shards: shards
                .into_iter()
                .map(|source| Shard {
                    source,
                    head: None,
                    last: None,
                })
                .collect(),
            tree: vec![0; n],
            initialized: false,
            emitted: 0,
            keys,
        }
    }

    /// Number of shards under the merge.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// True when shard `a`'s head beats shard `b`'s head (comes earlier in
    /// the merged rank order). Exhausted shards lose to everything; full
    /// rank-key ties go to the lower shard index, which is what makes the
    /// merge stable.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.shards[a].head, &self.shards[b].head) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => (x.tuple.rank_key(), a) < (y.tuple.rank_key(), b),
        }
    }

    /// Plays the tournament of the subtree rooted at node `t` bottom-up,
    /// storing losers at internal nodes and returning the subtree winner.
    fn build(&mut self, t: usize) -> usize {
        let n = self.shards.len();
        if t >= n {
            return t - n;
        }
        let a = self.build(2 * t);
        let b = self.build(2 * t + 1);
        let (winner, loser) = if self.beats(b, a) { (b, a) } else { (a, b) };
        self.tree[t] = loser;
        winner
    }

    /// Replays the path from shard `shard`'s leaf to the root after its head
    /// changed, updating losers along the way and the winner at `tree[0]`.
    fn adjust(&mut self, shard: usize) {
        let n = self.shards.len();
        let mut winner = shard;
        let mut t = (n + shard) / 2;
        while t > 0 {
            if self.beats(self.tree[t], winner) {
                std::mem::swap(&mut self.tree[t], &mut winner);
            }
            t /= 2;
        }
        self.tree[0] = winner;
    }

    /// Fills every shard head and plays the initial tournament.
    fn initialize(&mut self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.shards[i].refill(i)?;
        }
        if self.shards.len() >= 2 {
            self.tree[0] = self.build(1);
        }
        self.initialized = true;
        Ok(())
    }

    /// The strongest live challenger to `winner`: the best among the losers
    /// stored on the path from `winner`'s leaf to the root. `None` when every
    /// challenger is exhausted (or there is only one shard).
    ///
    /// The loser-tree invariant puts the overall runner-up somewhere on this
    /// path (it must have lost directly to the winner), so as long as the
    /// winner's refilled head still beats this challenger, the winner keeps
    /// winning and a whole run can be emitted without replaying the
    /// tournament.
    fn second_best(&self, winner: usize) -> Option<usize> {
        let n = self.shards.len();
        if n < 2 {
            return None;
        }
        let mut best: Option<usize> = None;
        let mut t = (n + winner) / 2;
        while t > 0 {
            let candidate = self.tree[t];
            if self.shards[candidate].head.is_some()
                && best.is_none_or(|b| self.beats(candidate, b))
            {
                best = Some(candidate);
            }
            t /= 2;
        }
        best
    }

    /// Applies the key-namespace mode to an outgoing tuple.
    fn rekey(&mut self, shard: usize, mut t: SourceTuple) -> SourceTuple {
        if let KeyMode::Disjoint(map) = &mut self.keys {
            if let GroupKey::Shared(raw) = t.group {
                let next = map.len() as u64;
                let key = *map.entry((shard, raw)).or_insert(next);
                t.group = GroupKey::Shared(key);
            }
        }
        t
    }
}

impl<S: TupleSource> TupleSource for MergeSource<S> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.shards.is_empty() {
            return Ok(None);
        }
        if !self.initialized {
            self.initialize()?;
        }
        let winner = if self.shards.len() == 1 {
            0
        } else {
            self.tree[0]
        };
        let Some(tuple) = self.shards[winner].head.take() else {
            return Ok(None);
        };
        self.shards[winner].refill(winner)?;
        if self.shards.len() >= 2 {
            self.adjust(winner);
        }
        self.emitted += 1;
        Ok(Some(self.rekey(winner, tuple)))
    }

    /// Batched pull: drains *runs* of same-shard winners per loser-tree
    /// descent. After the tournament picks a winner, the strongest live
    /// challenger is computed once ([`Self::second_best`]); tuples then
    /// stream from the winning shard — refilling and validating per tuple,
    /// exactly like the scalar path — for as long as its refilled head still
    /// beats that challenger, and only the run's end replays the tournament
    /// path. The emitted sequence is bit-identical to repeated
    /// [`next_tuple`](TupleSource::next_tuple) calls.
    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let max = max.max(1);
        if self.shards.is_empty() {
            return Ok(None);
        }
        if !self.initialized {
            self.initialize()?;
        }
        let mut block = TupleBlock::with_capacity(max);
        while block.len() < max {
            let winner = if self.shards.len() == 1 {
                0
            } else {
                self.tree[0]
            };
            if self.shards[winner].head.is_none() {
                break;
            }
            let second = self.second_best(winner);
            loop {
                let tuple = self.shards[winner].head.take().expect("head checked above");
                self.shards[winner].refill(winner)?;
                self.emitted += 1;
                let rekeyed = self.rekey(winner, tuple);
                block.push(&rekeyed);
                if block.len() >= max
                    || self.shards[winner].head.is_none()
                    || second.is_some_and(|s| !self.beats(winner, s))
                {
                    break;
                }
                // `second == None` means no live challenger: drain freely.
            }
            if self.shards.len() >= 2 {
                self.adjust(winner);
            }
        }
        if block.is_empty() {
            Ok(None)
        } else {
            Ok(Some(block))
        }
    }

    fn size_hint(&self) -> Option<usize> {
        let mut remaining = 0usize;
        for shard in &self.shards {
            remaining += shard.source.size_hint()?;
            remaining += usize::from(shard.head.is_some());
        }
        Some(remaining)
    }
}

/// Partitions a rank-ordered source into `shards` rank-ordered [`VecSource`]
/// shards by dealing tuples round-robin.
///
/// Every shard preserves the source's rank order and its **global** group-key
/// namespace, so `MergeSource::new(partition_round_robin(s, n)?)` reproduces
/// the stream of `s` exactly. This is the partitioner the `--shards N`
/// generators and the sharding tests use.
///
/// # Errors
///
/// Propagates source errors; `shards == 0` is an [`Error::InvalidParameter`].
pub fn partition_round_robin<S: TupleSource>(
    mut source: S,
    shards: usize,
) -> Result<Vec<VecSource>> {
    if shards == 0 {
        return Err(Error::InvalidParameter(
            "cannot partition into zero shards".into(),
        ));
    }
    let mut parts: Vec<Vec<SourceTuple>> = (0..shards).map(|_| Vec::new()).collect();
    let mut index = 0usize;
    while let Some(t) = source.next_tuple()? {
        parts[index % shards].push(t);
        index += 1;
    }
    // Each part is a subsequence of a rank-ordered stream, so VecSource's
    // stable sort is a no-op and the shard streams come out rank-ordered.
    Ok(parts.into_iter().map(VecSource::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CountingSource, TableSource};
    use crate::table::UncertainTable;
    use crate::tuple::UncertainTuple;

    fn tuple(id: u64, score: f64, prob: f64) -> SourceTuple {
        SourceTuple::independent(UncertainTuple::new(id, score, prob).unwrap())
    }

    fn grouped(id: u64, score: f64, prob: f64, key: u64) -> SourceTuple {
        SourceTuple::grouped(UncertainTuple::new(id, score, prob).unwrap(), key)
    }

    fn drain(source: &mut dyn TupleSource) -> Vec<SourceTuple> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple().unwrap() {
            out.push(t);
        }
        out
    }

    fn mixed_tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| {
                let score = ((i * 7) % 23) as f64; // plenty of score ties
                let prob = 0.1 + 0.8 * ((i % 9) as f64 / 9.0);
                if i % 3 == 0 {
                    grouped(i, score, prob, i / 6)
                } else {
                    tuple(i, score, prob)
                }
            })
            .collect()
    }

    #[test]
    fn merge_of_any_partition_reproduces_the_single_stream() {
        let tuples = mixed_tuples(200);
        let single = drain(&mut VecSource::new(tuples.clone()));
        for shards in [1usize, 2, 3, 5, 8, 200, 250] {
            let parts = partition_round_robin(VecSource::new(tuples.clone()), shards).unwrap();
            let mut merged = MergeSource::new(parts);
            assert_eq!(merged.shard_count(), shards);
            assert_eq!(merged.size_hint(), Some(200));
            let out = drain(&mut merged);
            assert_eq!(out, single, "{shards} shards");
            assert_eq!(merged.emitted(), 200);
            assert!(merged.next_tuple().unwrap().is_none());
        }
    }

    #[test]
    fn ties_across_shard_boundaries_stay_contiguous_and_stable() {
        // Every tuple has the same score; rank order falls back to
        // probability desc then id asc, exercised across 4 shards.
        let tuples: Vec<SourceTuple> = (0..40)
            .map(|i| tuple(i, 42.0, 0.1 + 0.02 * ((i % 11) as f64)))
            .collect();
        let single = drain(&mut VecSource::new(tuples.clone()));
        let parts = partition_round_robin(VecSource::new(tuples), 4).unwrap();
        let merged = drain(&mut MergeSource::new(parts));
        assert_eq!(merged, single);
    }

    #[test]
    fn shared_mode_reunifies_groups_split_across_shards() {
        let a = VecSource::new(vec![grouped(1, 9.0, 0.4, 7), tuple(3, 5.0, 0.5)]);
        let b = VecSource::new(vec![grouped(2, 8.0, 0.5, 7)]);
        let out = drain(&mut MergeSource::new(vec![a, b]));
        assert_eq!(out[0].group, GroupKey::Shared(7));
        assert_eq!(out[1].group, GroupKey::Shared(7));
    }

    #[test]
    fn disjoint_mode_keeps_equal_raw_keys_apart() {
        let a = VecSource::new(vec![grouped(1, 9.0, 0.4, 0), grouped(3, 5.0, 0.5, 0)]);
        let b = VecSource::new(vec![grouped(2, 8.0, 0.5, 0)]);
        let out = drain(&mut MergeSource::disjoint(vec![a, b]));
        // Shard A's key-0 tuples share a remapped key; shard B's differs.
        assert_eq!(out[0].group, out[2].group);
        assert_ne!(out[0].group, out[1].group);
        // Independent tuples stay independent.
        let c = VecSource::new(vec![tuple(10, 1.0, 0.5)]);
        let out = drain(&mut MergeSource::disjoint(vec![c]));
        assert_eq!(out[0].group, GroupKey::Independent);
    }

    #[test]
    fn empty_and_unbalanced_shards_are_handled() {
        let out = drain(&mut MergeSource::<VecSource>::new(Vec::new()));
        assert!(out.is_empty());

        let empty = VecSource::new(Vec::new());
        let full = VecSource::new(vec![tuple(1, 3.0, 0.5), tuple(2, 1.0, 0.5)]);
        let mut merged = MergeSource::new(vec![empty, full]);
        let out = drain(&mut merged);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tuple.id().raw(), 1);
    }

    #[test]
    fn out_of_order_shards_are_rejected() {
        // TableSource is rank-ordered, but a hand-built VecSource cannot be
        // out of order (it sorts) — so wrap a misbehaving source directly.
        struct Backwards(Vec<SourceTuple>);
        impl TupleSource for Backwards {
            fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
                Ok(self.0.pop())
            }
        }
        let bad = Backwards(vec![tuple(1, 9.0, 0.5), tuple(2, 1.0, 0.5)]);
        let good = Backwards(vec![tuple(3, 4.0, 0.5)]);
        let mut merged = MergeSource::new(vec![bad, good]);
        let err = loop {
            match merged.next_tuple() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("order violation must surface"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn per_shard_reads_stay_within_one_tuple_of_the_emitted_prefix() {
        let table = UncertainTable::new(
            (0..120)
                .map(|i| UncertainTuple::new(i as u64, (120 - i) as f64, 0.9).unwrap())
                .collect(),
            Vec::new(),
        )
        .unwrap();
        let parts = partition_round_robin(TableSource::new(&table), 3).unwrap();
        let counted: Vec<CountingSource<VecSource>> =
            parts.into_iter().map(CountingSource::new).collect();
        let counters: Vec<_> = counted.iter().map(|c| c.counter()).collect();
        let mut merged = MergeSource::new(counted);
        for _ in 0..10 {
            merged.next_tuple().unwrap().unwrap();
        }
        // 10 emitted tuples deal 4/3/3 across the shards; each shard may have
        // buffered at most one look-ahead head beyond its contribution.
        for (i, counter) in counters.iter().enumerate() {
            let emitted = (10 - i).div_ceil(3);
            assert!(
                counter.get() <= emitted + 1,
                "shard {i} pulled {} for {emitted} emitted",
                counter.get()
            );
        }
    }

    #[test]
    fn partition_rejects_zero_shards() {
        let err = partition_round_robin(VecSource::new(Vec::new()), 0);
        assert!(matches!(err, Err(Error::InvalidParameter(_))));
    }
}
