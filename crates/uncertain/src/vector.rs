//! Top-k tuple vectors: the unit of answer returned by category-(1) semantics.

use crate::tuple::TupleId;

/// A candidate answer to a top-k query: `k` tuples that can co-exist in some
/// possible world, together with their total score and the probability that
/// this exact vector is the top-k of the table.
///
/// Vectors store tuple ids in rank order (highest score first), which is the
/// order in which the algorithms discover them.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkVector {
    ids: Vec<TupleId>,
    total_score: f64,
    probability: f64,
}

impl TopkVector {
    /// Creates a vector from its member ids (rank order), total score and
    /// probability of being the top-k.
    pub fn new(ids: Vec<TupleId>, total_score: f64, probability: f64) -> Self {
        TopkVector {
            ids,
            total_score,
            probability,
        }
    }

    /// Member tuple ids in rank order (highest score first).
    #[inline]
    pub fn ids(&self) -> &[TupleId] {
        &self.ids
    }

    /// Number of tuples in the vector (the `k` of the query).
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the vector contains no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sum of the member scores.
    #[inline]
    pub fn total_score(&self) -> f64 {
        self.total_score
    }

    /// Probability that this vector is the top-k vector of the table (for
    /// results produced under pruning or line coalescing this is the
    /// probability accumulated by the producing algorithm, a lower bound on
    /// the exact value in the presence of score ties, see §3.4).
    #[inline]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// True when the vector contains the given tuple.
    pub fn contains(&self, id: impl Into<TupleId>) -> bool {
        let id = id.into();
        self.ids.contains(&id)
    }

    /// Number of tuples present in exactly one of the two vectors (the size
    /// of the symmetric difference). A cheap, order-insensitive measure of
    /// how different two answers are.
    pub fn symmetric_difference(&self, other: &TopkVector) -> usize {
        let only_self = self.ids.iter().filter(|id| !other.ids.contains(id)).count();
        let only_other = other.ids.iter().filter(|id| !self.ids.contains(id)).count();
        only_self + only_other
    }

    /// Levenshtein edit distance between the two id sequences (insertions,
    /// deletions and substitutions each cost one). The paper (§4) suggests
    /// users examine edit distances between typical vectors to judge how
    /// spread out the answer space is.
    pub fn edit_distance(&self, other: &TopkVector) -> usize {
        let a = &self.ids;
        let b = &other.ids;
        if a.is_empty() {
            return b.len();
        }
        if b.is_empty() {
            return a.len();
        }
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, ai) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, bj) in b.iter().enumerate() {
                let cost = usize::from(ai != bj);
                cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }
}

impl std::fmt::Display for TopkVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(
            f,
            "> (score {:.4}, probability {:.6})",
            self.total_score, self.probability
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u64], score: f64, p: f64) -> TopkVector {
        TopkVector::new(ids.iter().map(|&i| TupleId(i)).collect(), score, p)
    }

    #[test]
    fn accessors() {
        let a = v(&[2, 6], 118.0, 0.2);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.total_score(), 118.0);
        assert_eq!(a.probability(), 0.2);
        assert!(a.contains(2u64));
        assert!(!a.contains(9u64));
    }

    #[test]
    fn symmetric_difference_counts_unshared() {
        let a = v(&[1, 2, 3], 0.0, 0.1);
        let b = v(&[2, 3, 4], 0.0, 0.1);
        assert_eq!(a.symmetric_difference(&b), 2);
        assert_eq!(a.symmetric_difference(&a), 0);
    }

    #[test]
    fn edit_distance_basic_cases() {
        let a = v(&[1, 2, 3], 0.0, 0.1);
        let b = v(&[1, 2, 3], 0.0, 0.9);
        assert_eq!(a.edit_distance(&b), 0);
        let c = v(&[1, 5, 3], 0.0, 0.1);
        assert_eq!(a.edit_distance(&c), 1);
        let d = v(&[], 0.0, 0.1);
        assert_eq!(a.edit_distance(&d), 3);
        assert_eq!(d.edit_distance(&a), 3);
        let e = v(&[3, 2, 1], 0.0, 0.1);
        assert_eq!(a.edit_distance(&e), 2);
    }

    #[test]
    fn display_lists_ids_and_score() {
        let a = v(&[2, 6], 118.0, 0.2);
        let s = a.to_string();
        assert!(s.contains("T2"));
        assert!(s.contains("T6"));
        assert!(s.contains("118"));
    }
}
