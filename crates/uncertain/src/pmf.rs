//! Probability mass functions over top-k total scores.
//!
//! The complete answer to a top-k query on uncertain data is a joint
//! distribution over k-tuple vectors; the paper's proposal is to expose the
//! induced distribution over *total scores* (a one-dimensional PMF), plus one
//! witness vector per score. [`ScoreDistribution`] is that object. It also
//! implements the *line coalescing* approximation of §3.2.1 that keeps
//! intermediate and final distributions at a bounded number of points.

use crate::tuple::TupleId;
use crate::vector::TopkVector;

/// Relative tolerance under which two scores are considered the same line of
/// the PMF (guards against floating point dust produced by different
/// summation orders).
const SCORE_MERGE_EPSILON: f64 = 1e-9;

/// Returns true when two total scores should be treated as the same value.
#[inline]
pub fn scores_equal(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= SCORE_MERGE_EPSILON * scale
}

/// How two coalesced lines combine into one (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoalescePolicy {
    /// The paper's rule: the merged score is the plain average of the two
    /// scores and the probability is their sum.
    #[default]
    PaperMean,
    /// A slight refinement: the merged score is the probability-weighted
    /// average, which preserves the expectation of the distribution exactly.
    WeightedMean,
}

/// The most probable top-k vector attaining a given total score.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorWitness {
    /// Tuple ids of the witness vector in rank order.
    pub ids: Vec<TupleId>,
    /// Probability that this exact vector is the top-k vector.
    pub probability: f64,
}

impl VectorWitness {
    /// An empty witness (used as the seed of dynamic programs).
    pub fn empty() -> Self {
        VectorWitness {
            ids: Vec::new(),
            probability: 1.0,
        }
    }

    /// Converts the witness into a full [`TopkVector`] given its total score.
    pub fn to_vector(&self, total_score: f64) -> TopkVector {
        TopkVector::new(self.ids.clone(), total_score, self.probability)
    }
}

/// One vertical line of the PMF: a total score, the probability that the
/// top-k vector has that total score, and optionally the most probable
/// vector attaining it.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionPoint {
    /// Total score of the top-k vector.
    pub score: f64,
    /// Probability mass at this score.
    pub probability: f64,
    /// Most probable single vector attaining this score, when tracked.
    pub witness: Option<VectorWitness>,
}

/// A histogram view of a [`ScoreDistribution`] at a caller-chosen bucket
/// width (usage (1) of §2.2: "an application can access the distribution at
/// any granularity of precision").
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub start: f64,
    /// Width of every bucket.
    pub width: f64,
    /// Probability mass per bucket.
    pub buckets: Vec<f64>,
}

impl Histogram {
    /// The inclusive lower edge of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> f64 {
        self.start + self.width * i as f64
    }

    /// Total mass captured by the histogram.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

/// A discrete probability distribution over top-k total scores.
///
/// Points are kept sorted by score. The distribution is *not* required to sum
/// to one: pruning thresholds (pτ), possible worlds with fewer than `k`
/// tuples, and line coalescing all legitimately leave the captured mass
/// slightly below one. Use [`total_probability`](Self::total_probability) to
/// inspect the captured mass and [`normalize`](Self::normalize) to rescale.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreDistribution {
    points: Vec<DistributionPoint>,
}

impl ScoreDistribution {
    /// The empty distribution (no mass). Merging it into another distribution
    /// is a no-op; it is also the "blocked exit point" of §3.3.2.
    pub fn empty() -> Self {
        ScoreDistribution { points: Vec::new() }
    }

    /// The unit distribution: score 0 with probability 1 and an empty witness
    /// vector. This is the "enabled exit point" / auxiliary column-0 cell of
    /// the dynamic program (§3.2).
    pub fn unit() -> Self {
        ScoreDistribution {
            points: vec![DistributionPoint {
                score: 0.0,
                probability: 1.0,
                witness: Some(VectorWitness::empty()),
            }],
        }
    }

    /// A distribution with a single point.
    pub fn singleton(score: f64, probability: f64, witness: Option<VectorWitness>) -> Self {
        ScoreDistribution {
            points: vec![DistributionPoint {
                score,
                probability,
                witness,
            }],
        }
    }

    /// Builds a distribution from `(score, probability)` pairs (no witnesses).
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let mut d = ScoreDistribution::empty();
        for (s, p) in pairs {
            d.add_mass(s, p, None);
        }
        d
    }

    /// Reconstructs a distribution from score lines produced by
    /// [`points`](Self::points) elsewhere (the wire codec) — **verbatim**, no
    /// sorting and no coalescing, so the reconstruction is bit-identical to
    /// the original. The caller asserts the points are in ascending score
    /// order; routing arbitrary lines through [`add_mass`](Self::add_mass)
    /// instead keeps the ordering invariant but may merge epsilon-close
    /// scores, which is exactly what a bit-exact transport must not do.
    pub fn from_points(points: Vec<DistributionPoint>) -> Self {
        ScoreDistribution { points }
    }

    /// Number of distinct score lines.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the distribution carries no mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The score lines in ascending score order.
    #[inline]
    pub fn points(&self) -> &[DistributionPoint] {
        &self.points
    }

    /// Iterates over `(score, probability)` pairs in ascending score order.
    pub fn pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().map(|p| (p.score, p.probability))
    }

    /// Adds probability mass at a score, merging with an existing line when
    /// the scores are equal (keeping the more probable witness).
    pub fn add_mass(&mut self, score: f64, probability: f64, witness: Option<VectorWitness>) {
        if probability <= 0.0 {
            return;
        }
        match self.points.binary_search_by(|p| p.score.total_cmp(&score)) {
            Ok(i) => {
                self.points[i].probability += probability;
                Self::keep_better_witness(&mut self.points[i].witness, witness);
            }
            Err(i) => {
                // Check the neighbours for epsilon-equality before inserting.
                if i > 0 && scores_equal(self.points[i - 1].score, score) {
                    self.points[i - 1].probability += probability;
                    Self::keep_better_witness(&mut self.points[i - 1].witness, witness);
                } else if i < self.points.len() && scores_equal(self.points[i].score, score) {
                    self.points[i].probability += probability;
                    Self::keep_better_witness(&mut self.points[i].witness, witness);
                } else {
                    self.points.insert(
                        i,
                        DistributionPoint {
                            score,
                            probability,
                            witness,
                        },
                    );
                }
            }
        }
    }

    fn keep_better_witness(slot: &mut Option<VectorWitness>, candidate: Option<VectorWitness>) {
        match (slot.as_ref(), candidate) {
            (_, None) => {}
            (None, Some(c)) => *slot = Some(c),
            (Some(cur), Some(c)) => {
                if c.probability > cur.probability {
                    *slot = Some(c);
                }
            }
        }
    }

    /// Returns a copy with every score shifted by `delta` and every
    /// probability (point and witness) multiplied by `factor`; `prepend`, when
    /// given, is pushed onto the front of every witness vector.
    ///
    /// This is exactly step (2) of the distribution merging process of §3.2
    /// (and, with `delta = 0`, `prepend = None`, step (1)).
    pub fn shifted_scaled(&self, delta: f64, factor: f64, prepend: Option<TupleId>) -> Self {
        if factor <= 0.0 {
            return ScoreDistribution::empty();
        }
        let points = self
            .points
            .iter()
            .map(|p| DistributionPoint {
                score: p.score + delta,
                probability: p.probability * factor,
                witness: p.witness.as_ref().map(|w| {
                    let mut ids = Vec::with_capacity(w.ids.len() + usize::from(prepend.is_some()));
                    if let Some(id) = prepend {
                        ids.push(id);
                    }
                    ids.extend_from_slice(&w.ids);
                    VectorWitness {
                        ids,
                        probability: w.probability * factor,
                    }
                }),
            })
            .collect();
        ScoreDistribution { points }
    }

    /// Merges another distribution into this one (step (3) of §3.2): the
    /// union of the lines, with equal scores combined by summing their
    /// probabilities and keeping the more probable witness.
    pub fn merge_from(&mut self, other: &ScoreDistribution) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.points.len() + other.points.len());
        let mut a = std::mem::take(&mut self.points).into_iter().peekable();
        let mut b = other.points.iter().cloned().peekable();
        while let (Some(pa), Some(pb)) = (a.peek(), b.peek()) {
            if scores_equal(pa.score, pb.score) {
                let mut pa = a.next().unwrap();
                let pb = b.next().unwrap();
                pa.probability += pb.probability;
                Self::keep_better_witness(&mut pa.witness, pb.witness);
                merged.push(pa);
            } else if pa.score < pb.score {
                merged.push(a.next().unwrap());
            } else {
                merged.push(b.next().unwrap());
            }
        }
        merged.extend(a);
        merged.extend(b);
        self.points = merged;
    }

    /// Total probability mass captured by the distribution.
    pub fn total_probability(&self) -> f64 {
        self.points.iter().map(|p| p.probability).sum()
    }

    /// Rescales the distribution so it sums to one. No-op on empty
    /// distributions.
    pub fn normalize(&mut self) {
        let total = self.total_probability();
        if total > 0.0 {
            for p in &mut self.points {
                p.probability /= total;
            }
        }
    }

    /// Smallest score carrying mass.
    pub fn min_score(&self) -> Option<f64> {
        self.points.first().map(|p| p.score)
    }

    /// Largest score carrying mass.
    pub fn max_score(&self) -> Option<f64> {
        self.points.last().map(|p| p.score)
    }

    /// The score with the largest probability mass (the mode).
    pub fn mode(&self) -> Option<&DistributionPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.probability.total_cmp(&b.probability))
    }

    /// Expected total score, conditioned on the captured mass.
    pub fn expected_score(&self) -> f64 {
        let total = self.total_probability();
        if total <= 0.0 {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.score * p.probability)
            .sum::<f64>()
            / total
    }

    /// Variance of the total score, conditioned on the captured mass.
    pub fn variance(&self) -> f64 {
        let total = self.total_probability();
        if total <= 0.0 {
            return 0.0;
        }
        let mean = self.expected_score();
        self.points
            .iter()
            .map(|p| (p.score - mean).powi(2) * p.probability)
            .sum::<f64>()
            / total
    }

    /// Standard deviation of the total score.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability that the total score is at most `x` (unnormalized CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.score <= x)
            .map(|p| p.probability)
            .sum()
    }

    /// The smallest score `s` such that the normalized CDF at `s` is at least
    /// `q` (`q ∈ [0, 1]`). Returns `None` on an empty distribution.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let total = self.total_probability();
        let mut acc = 0.0;
        for p in &self.points {
            acc += p.probability;
            if acc / total >= q - 1e-12 {
                return Some(p.score);
            }
        }
        self.max_score()
    }

    /// Probability mass with a score strictly greater than `x`.
    pub fn mass_above(&self, x: f64) -> f64 {
        self.points
            .iter()
            .rev()
            .take_while(|p| p.score > x)
            .map(|p| p.probability)
            .sum()
    }

    /// Builds a histogram with the given bucket width (usage (1) of §2.2).
    /// Returns `None` on an empty distribution or a non-positive width.
    pub fn histogram(&self, bucket_width: f64) -> Option<Histogram> {
        if self.is_empty() || bucket_width <= 0.0 || !bucket_width.is_finite() {
            return None;
        }
        let lo = self.min_score()?;
        let hi = self.max_score()?;
        let n = (((hi - lo) / bucket_width).floor() as usize) + 1;
        let mut buckets = vec![0.0; n];
        for p in &self.points {
            let mut idx = ((p.score - lo) / bucket_width).floor() as usize;
            if idx >= n {
                idx = n - 1;
            }
            buckets[idx] += p.probability;
        }
        Some(Histogram {
            start: lo,
            width: bucket_width,
            buckets,
        })
    }

    /// Expected distance from a random score drawn from this distribution to
    /// the closest score in `representatives` — the objective minimized by
    /// the c-Typical-Topk scores (Definition 1). The expectation is taken
    /// over the captured (unnormalized) mass, matching the paper's objective.
    pub fn expected_min_distance(&self, representatives: &[f64]) -> f64 {
        if representatives.is_empty() {
            return f64::INFINITY;
        }
        self.points
            .iter()
            .map(|p| {
                let d = representatives
                    .iter()
                    .map(|r| (p.score - r).abs())
                    .fold(f64::INFINITY, f64::min);
                d * p.probability
            })
            .sum()
    }

    /// First-order Wasserstein (earth mover's) distance between two
    /// distributions, treating both as normalized. A convenient scalar for
    /// comparing an approximate (coalesced or pruned) distribution against an
    /// exact one.
    pub fn earth_movers_distance(&self, other: &ScoreDistribution) -> f64 {
        if self.is_empty() || other.is_empty() {
            return if self.is_empty() && other.is_empty() {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let ta = self.total_probability();
        let tb = other.total_probability();
        // Walk the union of the supports accumulating |CDF_a - CDF_b|.
        let mut grid: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.score)
            .chain(other.points.iter().map(|p| p.score))
            .collect();
        grid.sort_by(|a, b| a.total_cmp(b));
        grid.dedup_by(|a, b| scores_equal(*a, *b));
        let mut ia = 0;
        let mut ib = 0;
        let mut cdf_a = 0.0;
        let mut cdf_b = 0.0;
        let mut dist = 0.0;
        for w in grid.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            while ia < self.points.len() && self.points[ia].score <= x0 + 1e-15 {
                cdf_a += self.points[ia].probability / ta;
                ia += 1;
            }
            while ib < other.points.len() && other.points[ib].score <= x0 + 1e-15 {
                cdf_b += other.points[ib].probability / tb;
                ib += 1;
            }
            dist += (cdf_a - cdf_b).abs() * (x1 - x0);
        }
        dist
    }

    /// Coalesces lines until at most `max_lines` remain (§3.2.1): repeatedly
    /// merge the two closest-in-score neighbouring lines. Under
    /// [`CoalescePolicy::PaperMean`] the merged score is the plain average of
    /// the two (the paper's rule); under
    /// [`CoalescePolicy::WeightedMean`] it is the probability-weighted
    /// average. In both cases probabilities add and the more probable witness
    /// is kept.
    pub fn coalesce(&mut self, max_lines: usize, policy: CoalescePolicy) {
        if max_lines == 0 || self.points.len() <= max_lines {
            return;
        }
        // The number of merges needed is small in steady state (the DP calls
        // this after every merge step), so a scan-for-minimum loop is
        // adequate and allocation free.
        while self.points.len() > max_lines {
            let mut best = 0;
            let mut best_gap = f64::INFINITY;
            for i in 0..self.points.len() - 1 {
                let gap = self.points[i + 1].score - self.points[i].score;
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let right = self.points.remove(best + 1);
            let left = &mut self.points[best];
            let merged_prob = left.probability + right.probability;
            left.score = match policy {
                CoalescePolicy::PaperMean => (left.score + right.score) / 2.0,
                CoalescePolicy::WeightedMean => {
                    (left.score * left.probability + right.score * right.probability) / merged_prob
                }
            };
            left.probability = merged_prob;
            Self::keep_better_witness(&mut left.witness, right.witness);
        }
    }

    /// Returns the witness vectors as full [`TopkVector`]s, one per line that
    /// has a witness, in ascending score order.
    pub fn witness_vectors(&self) -> Vec<TopkVector> {
        self.points
            .iter()
            .filter_map(|p| p.witness.as_ref().map(|w| w.to_vector(p.score)))
            .collect()
    }

    /// The point whose score is closest to `score`.
    pub fn nearest_point(&self, score: f64) -> Option<&DistributionPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.score - score).abs().total_cmp(&(b.score - score).abs()))
    }
}

/// A columnar (structure-of-arrays) working set for the dynamic program's
/// inner loop: scores, probabilities and witnesses held in parallel columns
/// instead of a `Vec` of [`DistributionPoint`]s.
///
/// The array-of-structs layout of [`ScoreDistribution`] is the right shape
/// for consumers — every point carries its witness — but the recurrence of
/// §3.2 touches millions of cells, and there the layout is hostile: the
/// exclude branch clones every point (witness vectors included) just to scale
/// the probabilities, and the include branch materializes a shifted/scaled
/// copy that the subsequent merge immediately tears apart again. The columnar
/// form fixes both:
///
/// * [`scale_in_place`](Self::scale_in_place) multiplies the probability
///   column in place — a branch-free pass over contiguous `f64`s the compiler
///   auto-vectorizes, with no allocation at all;
/// * [`merge_shifted_scaled`](Self::merge_shifted_scaled) fuses steps (2) and
///   (3) of §3.2 into one sorted-union pass that computes shifted scores and
///   scaled probabilities on the fly and only allocates a witness vector for
///   lines that actually survive the merge;
/// * [`coalesce`](Self::coalesce) scans for the closest pair over the
///   contiguous score column instead of striding through 40-byte points.
///
/// Every operation performs the floating-point arithmetic in exactly the
/// order of the equivalent [`ScoreDistribution`] calls
/// ([`shifted_scaled`](ScoreDistribution::shifted_scaled) followed by
/// [`merge_from`](ScoreDistribution::merge_from), and
/// [`coalesce`](ScoreDistribution::coalesce)), so results are bit-identical
/// to the scalar path — no reassociation, no fused multiply-adds.
///
/// Witness tracking is all-or-nothing: the witness column is either empty
/// (witnesses disabled) or exactly as long as the score column. Mixing a
/// tracked operand with an untracked one is unsupported (debug-asserted).
///
/// ```
/// use ttk_uncertain::ScoreColumns;
///
/// // D = 0.3 · unit  ∪  (unit shifted by 5.0, scaled by 0.7)
/// let unit = ScoreColumns::unit(false);
/// let mut d = unit.clone();
/// d.scale_in_place(0.3);
/// d.merge_shifted_scaled(&unit, 5.0, 0.7, None);
/// let dist = d.into_distribution();
/// assert_eq!(dist.pairs().collect::<Vec<_>>(), vec![(0.0, 0.3), (5.0, 0.7)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreColumns {
    /// Total scores, ascending.
    scores: Vec<f64>,
    /// Probability mass per score line (parallel to `scores`).
    probs: Vec<f64>,
    /// Witness per score line: parallel to `scores` when witnesses are
    /// tracked, empty otherwise.
    witnesses: Vec<VectorWitness>,
}

/// One candidate pair in the coalescing heap: the gap between line `left`
/// and its right neighbour at the time the entry was pushed. Ordered by
/// `(gap, left)` so the heap pops exactly the pair the scan-for-minimum loop
/// would pick (leftmost on equal gaps); `stamp` detects stale entries.
#[derive(Debug, PartialEq)]
struct GapEntry {
    gap: f64,
    left: u32,
    stamp: u32,
}

impl Eq for GapEntry {}

impl PartialOrd for GapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gap
            .total_cmp(&other.gap)
            .then(self.left.cmp(&other.left))
            .then(self.stamp.cmp(&other.stamp))
    }
}

impl ScoreColumns {
    /// The empty working set (no mass) — the engine's initial cell value and
    /// the "blocked exit point" of §3.3.2.
    pub fn empty() -> Self {
        ScoreColumns::default()
    }

    /// The unit distribution (score 0, probability 1): the enabled exit point
    /// of the dynamic program. With `track_witnesses` the single line carries
    /// an empty witness vector for the recurrence to extend.
    pub fn unit(track_witnesses: bool) -> Self {
        ScoreColumns {
            scores: vec![0.0],
            probs: vec![1.0],
            witnesses: if track_witnesses {
                vec![VectorWitness::empty()]
            } else {
                Vec::new()
            },
        }
    }

    /// Number of score lines.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the working set carries no mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Drops every line, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.scores.clear();
        self.probs.clear();
        self.witnesses.clear();
    }

    /// Scales every probability (line and witness) by `factor` in place — the
    /// exclude branch of the recurrence. Equivalent to
    /// [`ScoreDistribution::shifted_scaled`]`(0.0, factor, None)` including
    /// its `score + 0.0` normalization of negative zeros, but with no
    /// allocation: the probability column is multiplied in a branch-free pass
    /// over contiguous `f64`s. A non-positive `factor` empties the set.
    pub fn scale_in_place(&mut self, factor: f64) {
        if factor <= 0.0 {
            self.clear();
            return;
        }
        for s in &mut self.scores {
            *s += 0.0;
        }
        for p in &mut self.probs {
            *p *= factor;
        }
        for w in &mut self.witnesses {
            w.probability *= factor;
        }
    }

    /// Merges `below` — shifted by `delta`, scaled by `factor`, with
    /// `prepend` pushed onto the front of every witness — into `self`: the
    /// include branch of the recurrence, i.e. steps (2) and (3) of §3.2 fused
    /// into a single sorted-union pass.
    ///
    /// Bit-identical to `self.merge_from(&below.shifted_scaled(delta, factor,
    /// prepend))` on the equivalent [`ScoreDistribution`]s: shifted scores
    /// and scaled probabilities are computed on the fly in the same order,
    /// equal lines (under [`scores_equal`]) sum as `self + below` and keep
    /// the strictly more probable witness. The difference is purely
    /// mechanical — no intermediate shifted copy exists, and a witness vector
    /// is only allocated for `below` lines that survive the merge.
    pub fn merge_shifted_scaled(
        &mut self,
        below: &ScoreColumns,
        delta: f64,
        factor: f64,
        prepend: Option<TupleId>,
    ) {
        if factor <= 0.0 || below.is_empty() {
            return;
        }
        let tracked = !below.witnesses.is_empty();
        debug_assert!(
            self.is_empty() || self.witnesses.is_empty() != tracked,
            "mixing witness-tracked and untracked operands"
        );
        if self.is_empty() {
            self.scores.extend(below.scores.iter().map(|s| s + delta));
            self.probs.extend(below.probs.iter().map(|p| p * factor));
            self.witnesses.reserve(below.witnesses.len());
            for w in &below.witnesses {
                self.witnesses.push(Self::materialize(w, factor, prepend));
            }
            return;
        }
        let (a_len, b_len) = (self.len(), below.len());
        let mut scores = Vec::with_capacity(a_len + b_len);
        let mut probs = Vec::with_capacity(a_len + b_len);
        let mut witnesses = Vec::with_capacity(if tracked { a_len + b_len } else { 0 });
        let old_scores = std::mem::take(&mut self.scores);
        let old_probs = std::mem::take(&mut self.probs);
        let mut old_witnesses = std::mem::take(&mut self.witnesses).into_iter();
        let (mut ia, mut ib) = (0, 0);
        while ia < a_len && ib < b_len {
            let a_score = old_scores[ia];
            let b_score = below.scores[ib] + delta;
            if scores_equal(a_score, b_score) {
                scores.push(a_score);
                probs.push(old_probs[ia] + below.probs[ib] * factor);
                if tracked {
                    let mut w = old_witnesses.next().expect("tracked witness column");
                    let bw = &below.witnesses[ib];
                    if bw.probability * factor > w.probability {
                        w = Self::materialize(bw, factor, prepend);
                    }
                    witnesses.push(w);
                }
                ia += 1;
                ib += 1;
            } else if a_score < b_score {
                scores.push(a_score);
                probs.push(old_probs[ia]);
                if tracked {
                    witnesses.push(old_witnesses.next().expect("tracked witness column"));
                }
                ia += 1;
            } else {
                scores.push(b_score);
                probs.push(below.probs[ib] * factor);
                if tracked {
                    witnesses.push(Self::materialize(&below.witnesses[ib], factor, prepend));
                }
                ib += 1;
            }
        }
        while ia < a_len {
            scores.push(old_scores[ia]);
            probs.push(old_probs[ia]);
            if tracked {
                witnesses.push(old_witnesses.next().expect("tracked witness column"));
            }
            ia += 1;
        }
        while ib < b_len {
            scores.push(below.scores[ib] + delta);
            probs.push(below.probs[ib] * factor);
            if tracked {
                witnesses.push(Self::materialize(&below.witnesses[ib], factor, prepend));
            }
            ib += 1;
        }
        self.scores = scores;
        self.probs = probs;
        self.witnesses = witnesses;
    }

    /// The shifted/scaled/prepended copy of one witness — exactly the mapping
    /// [`ScoreDistribution::shifted_scaled`] applies, deferred to the moment
    /// the witness is known to survive.
    fn materialize(w: &VectorWitness, factor: f64, prepend: Option<TupleId>) -> VectorWitness {
        let mut ids = Vec::with_capacity(w.ids.len() + usize::from(prepend.is_some()));
        if let Some(id) = prepend {
            ids.push(id);
        }
        ids.extend_from_slice(&w.ids);
        VectorWitness {
            ids,
            probability: w.probability * factor,
        }
    }

    /// Coalesces lines until at most `max_lines` remain — the columnar
    /// equivalent of [`ScoreDistribution::coalesce`], merging the same pairs
    /// in the same order with the same arithmetic (bit-identical results).
    ///
    /// Two implementations with identical output are dispatched on size. For
    /// a handful of merges the scalar rescan-after-every-merge loop wins: the
    /// scan is a branch-light pass over the contiguous score column and
    /// allocates nothing. Past the crossover the lazy min-heap version takes
    /// over, dropping the cost from O((n − max)·n) to O(n log n) — the
    /// difference between the dynamic program spending its time rescanning
    /// for the closest pair and spending it on actual convolution.
    pub fn coalesce(&mut self, max_lines: usize, policy: CoalescePolicy) {
        if max_lines == 0 || self.len() <= max_lines {
            return;
        }
        // Scan cost ~ excess·n, heap cost ~ (n + excess)·log n plus five
        // allocations; the constant below puts the crossover where the two
        // measure about even.
        if (self.len() - max_lines) * self.len() < 8192 {
            self.coalesce_scan(max_lines, policy);
        } else {
            self.coalesce_heap(max_lines, policy);
        }
    }

    /// The allocation-free scan-for-minimum coalescing loop: optimal for a
    /// small number of merges over a short score column.
    fn coalesce_scan(&mut self, max_lines: usize, policy: CoalescePolicy) {
        while self.len() > max_lines {
            let mut best = 0;
            let mut best_gap = f64::INFINITY;
            for i in 0..self.scores.len() - 1 {
                let gap = self.scores[i + 1] - self.scores[i];
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let right_score = self.scores.remove(best + 1);
            let right_prob = self.probs.remove(best + 1);
            let merged_prob = self.probs[best] + right_prob;
            self.scores[best] = match policy {
                CoalescePolicy::PaperMean => (self.scores[best] + right_score) / 2.0,
                CoalescePolicy::WeightedMean => {
                    (self.scores[best] * self.probs[best] + right_score * right_prob) / merged_prob
                }
            };
            self.probs[best] = merged_prob;
            if !self.witnesses.is_empty() {
                let right_witness = self.witnesses.remove(best + 1);
                if right_witness.probability > self.witnesses[best].probability {
                    self.witnesses[best] = right_witness;
                }
            }
        }
    }

    /// Heap-based coalescing: the closest pair is tracked in a lazy min-heap
    /// over the neighbour gaps, with a doubly-linked list threading the
    /// surviving lines. A merge invalidates at most the two gaps adjacent to
    /// the merged pair; fresh entries are pushed and stale ones discarded on
    /// pop via per-line stamps. The selection order is identical to the
    /// scan — the heap orders by `(gap, position)` and the scan keeps the
    /// leftmost line on equal gaps (scores are ascending, so gaps are never
    /// negative zero and `f64::total_cmp` agrees with `<` on them) — and the
    /// merge arithmetic is untouched, so results stay bit-exact.
    fn coalesce_heap(&mut self, max_lines: usize, policy: CoalescePolicy) {
        let n = self.len();
        let tracked = !self.witnesses.is_empty();
        // Line `i` is alive while `next[i] != DEAD`; `next`/`prev` thread the
        // surviving lines in ascending-score order (original indices never
        // reorder, so index order == scan order). `stamp[i]` versions the gap
        // between line `i` and its current right neighbour.
        const TAIL: u32 = u32::MAX;
        const DEAD: u32 = u32::MAX - 1;
        let mut next: Vec<u32> = (1..n as u32).chain([TAIL]).collect();
        let mut prev: Vec<u32> = [TAIL].into_iter().chain(0..n as u32 - 1).collect();
        let mut stamp: Vec<u32> = vec![0; n];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<GapEntry>> = (0..n - 1)
            .map(|i| {
                std::cmp::Reverse(GapEntry {
                    gap: self.scores[i + 1] - self.scores[i],
                    left: i as u32,
                    stamp: 0,
                })
            })
            .collect();
        let mut remaining = n;
        while remaining > max_lines {
            let entry = heap.pop().expect("a gap per excess line").0;
            let left = entry.left as usize;
            // Stale: the left line died, or its right-neighbour gap changed
            // since the entry was pushed.
            if next[left] == DEAD || entry.stamp != stamp[left] {
                continue;
            }
            let right = next[left] as usize;
            debug_assert_ne!(next[right], DEAD);
            let right_score = self.scores[right];
            let right_prob = self.probs[right];
            let merged_prob = self.probs[left] + right_prob;
            self.scores[left] = match policy {
                CoalescePolicy::PaperMean => (self.scores[left] + right_score) / 2.0,
                CoalescePolicy::WeightedMean => {
                    (self.scores[left] * self.probs[left] + right_score * right_prob) / merged_prob
                }
            };
            self.probs[left] = merged_prob;
            if tracked && self.witnesses[right].probability > self.witnesses[left].probability {
                self.witnesses.swap(left, right);
            }
            // Unlink `right` and refresh the two affected gaps.
            let after = next[right];
            next[left] = after;
            next[right] = DEAD;
            if after != TAIL {
                prev[after as usize] = left as u32;
            }
            remaining -= 1;
            stamp[left] = stamp[left].wrapping_add(1);
            if after != TAIL {
                heap.push(std::cmp::Reverse(GapEntry {
                    gap: self.scores[after as usize] - self.scores[left],
                    left: left as u32,
                    stamp: stamp[left],
                }));
            }
            let before = prev[left];
            if before != TAIL {
                let before = before as usize;
                stamp[before] = stamp[before].wrapping_add(1);
                heap.push(std::cmp::Reverse(GapEntry {
                    gap: self.scores[left] - self.scores[before],
                    left: before as u32,
                    stamp: stamp[before],
                }));
            }
        }
        // Compact the survivors in place, preserving order.
        let mut keep = 0;
        for (i, &slot) in next.iter().enumerate().take(n) {
            if slot != DEAD {
                if keep != i {
                    self.scores[keep] = self.scores[i];
                    self.probs[keep] = self.probs[i];
                    if tracked {
                        self.witnesses.swap(keep, i);
                    }
                }
                keep += 1;
            }
        }
        self.scores.truncate(keep);
        self.probs.truncate(keep);
        if tracked {
            self.witnesses.truncate(keep);
        }
    }

    /// Converts the working set into the consumer-facing
    /// [`ScoreDistribution`] (witnesses attached when tracked, `None`
    /// otherwise), consuming the columns.
    pub fn into_distribution(self) -> ScoreDistribution {
        let tracked = !self.witnesses.is_empty();
        let mut points = Vec::with_capacity(self.scores.len());
        let mut witnesses = self.witnesses.into_iter();
        for (score, probability) in self.scores.into_iter().zip(self.probs) {
            points.push(DistributionPoint {
                score,
                probability,
                witness: if tracked { witnesses.next() } else { None },
            });
        }
        ScoreDistribution { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(f64, f64)]) -> ScoreDistribution {
        ScoreDistribution::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn unit_and_empty() {
        assert!(ScoreDistribution::empty().is_empty());
        let u = ScoreDistribution::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.total_probability(), 1.0);
        assert_eq!(u.points()[0].score, 0.0);
        assert!(u.points()[0].witness.is_some());
    }

    #[test]
    fn add_mass_merges_equal_scores() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(10.0, 0.2, None);
        d.add_mass(12.0, 0.3, None);
        d.add_mass(10.0 + 1e-12, 0.1, None);
        assert_eq!(d.len(), 2);
        assert!((d.cdf(10.5) - 0.3).abs() < 1e-12);
        // Zero or negative mass is ignored.
        d.add_mass(50.0, 0.0, None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn add_mass_keeps_more_probable_witness() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(
            5.0,
            0.2,
            Some(VectorWitness {
                ids: vec![TupleId(1)],
                probability: 0.2,
            }),
        );
        d.add_mass(
            5.0,
            0.3,
            Some(VectorWitness {
                ids: vec![TupleId(2)],
                probability: 0.3,
            }),
        );
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(2)]);
        assert!((d.points()[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shifted_scaled_applies_delta_factor_and_prepend() {
        let base = ScoreDistribution::unit();
        let d = base.shifted_scaled(7.0, 0.4, Some(TupleId(3)));
        assert_eq!(d.len(), 1);
        assert!((d.points()[0].score - 7.0).abs() < 1e-12);
        assert!((d.points()[0].probability - 0.4).abs() < 1e-12);
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(3)]);
        assert!((w.probability - 0.4).abs() < 1e-12);
        // Scaling by zero empties the distribution.
        assert!(base.shifted_scaled(1.0, 0.0, None).is_empty());
    }

    #[test]
    fn merge_from_unions_and_sums() {
        let mut a = dist(&[(1.0, 0.1), (3.0, 0.2)]);
        let b = dist(&[(2.0, 0.3), (3.0, 0.1)]);
        a.merge_from(&b);
        assert_eq!(a.len(), 3);
        assert!((a.total_probability() - 0.7).abs() < 1e-12);
        let probs: Vec<f64> = a.pairs().map(|(_, p)| p).collect();
        assert!((probs[2] - 0.3).abs() < 1e-12); // 0.2 + 0.1 at score 3
                                                 // Merging an empty distribution is a no-op; merging into empty copies.
        let mut e = ScoreDistribution::empty();
        e.merge_from(&a);
        assert_eq!(e.len(), 3);
        a.merge_from(&ScoreDistribution::empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn moments_and_quantiles() {
        let d = dist(&[(10.0, 0.25), (20.0, 0.5), (30.0, 0.25)]);
        assert!((d.expected_score() - 20.0).abs() < 1e-12);
        assert!((d.variance() - 50.0).abs() < 1e-12);
        assert!((d.std_dev() - 50.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.min_score(), Some(10.0));
        assert_eq!(d.max_score(), Some(30.0));
        assert_eq!(d.mode().unwrap().score, 20.0);
        assert_eq!(d.quantile(0.0), Some(10.0));
        assert_eq!(d.quantile(0.5), Some(20.0));
        assert_eq!(d.quantile(1.0), Some(30.0));
        assert!((d.mass_above(15.0) - 0.75).abs() < 1e-12);
        assert!((d.cdf(25.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn moments_are_conditioned_on_captured_mass() {
        // Same shape but only 0.5 total mass: expectation must not change.
        let d = dist(&[(10.0, 0.125), (20.0, 0.25), (30.0, 0.125)]);
        assert!((d.expected_score() - 20.0).abs() < 1e-12);
        assert!((d.variance() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rescales_to_one() {
        let mut d = dist(&[(10.0, 0.2), (20.0, 0.2)]);
        d.normalize();
        assert!((d.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_capture_all_mass() {
        let d = dist(&[(0.0, 0.1), (4.9, 0.2), (5.0, 0.3), (14.9, 0.4)]);
        let h = d.histogram(5.0).unwrap();
        assert_eq!(h.buckets.len(), 3);
        assert!((h.buckets[0] - 0.3).abs() < 1e-12);
        assert!((h.buckets[1] - 0.3).abs() < 1e-12);
        assert!((h.buckets[2] - 0.4).abs() < 1e-12);
        assert!((h.total() - 1.0).abs() < 1e-12);
        assert_eq!(h.bucket_start(1), 5.0);
        assert!(d.histogram(0.0).is_none());
        assert!(ScoreDistribution::empty().histogram(1.0).is_none());
    }

    #[test]
    fn expected_min_distance_matches_hand_computation() {
        let d = dist(&[(0.0, 0.5), (10.0, 0.5)]);
        assert!((d.expected_min_distance(&[0.0]) - 5.0).abs() < 1e-12);
        assert!((d.expected_min_distance(&[5.0]) - 5.0).abs() < 1e-12);
        assert!((d.expected_min_distance(&[0.0, 10.0]) - 0.0).abs() < 1e-12);
        assert_eq!(d.expected_min_distance(&[]), f64::INFINITY);
    }

    #[test]
    fn coalesce_respects_max_lines_and_preserves_mass() {
        let mut d = dist(&[(1.0, 0.1), (1.1, 0.1), (5.0, 0.3), (9.0, 0.5)]);
        d.coalesce(3, CoalescePolicy::PaperMean);
        assert_eq!(d.len(), 3);
        assert!((d.total_probability() - 1.0).abs() < 1e-12);
        // The two closest lines (1.0 and 1.1) merged to their plain average.
        assert!((d.points()[0].score - 1.05).abs() < 1e-12);

        let mut d = dist(&[(0.0, 0.9), (1.0, 0.1), (100.0, 0.5)]);
        d.coalesce(2, CoalescePolicy::WeightedMean);
        assert_eq!(d.len(), 2);
        assert!((d.points()[0].score - 0.1).abs() < 1e-12);

        // max_lines = 0 disables coalescing.
        let mut d = dist(&[(1.0, 0.5), (2.0, 0.5)]);
        d.coalesce(0, CoalescePolicy::PaperMean);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn weighted_coalescing_preserves_expectation() {
        let mut d = dist(&[(1.0, 0.2), (2.0, 0.4), (10.0, 0.2), (11.0, 0.2)]);
        let before = d.expected_score();
        d.coalesce(2, CoalescePolicy::WeightedMean);
        assert!((d.expected_score() - before).abs() < 1e-9);
    }

    #[test]
    fn emd_of_identical_distributions_is_zero() {
        let a = dist(&[(1.0, 0.4), (5.0, 0.6)]);
        let b = dist(&[(1.0, 0.4), (5.0, 0.6)]);
        assert!(a.earth_movers_distance(&b).abs() < 1e-12);
        let c = dist(&[(2.0, 0.4), (6.0, 0.6)]);
        assert!((a.earth_movers_distance(&c) - 1.0).abs() < 1e-9);
        assert_eq!(
            ScoreDistribution::empty().earth_movers_distance(&ScoreDistribution::empty()),
            0.0
        );
        assert!(a
            .earth_movers_distance(&ScoreDistribution::empty())
            .is_infinite());
    }

    #[test]
    fn nearest_point_and_witness_vectors() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(
            5.0,
            0.5,
            Some(VectorWitness {
                ids: vec![TupleId(1), TupleId(2)],
                probability: 0.4,
            }),
        );
        d.add_mass(9.0, 0.5, None);
        assert_eq!(d.nearest_point(6.0).unwrap().score, 5.0);
        assert_eq!(d.nearest_point(8.0).unwrap().score, 9.0);
        let vs = d.witness_vectors();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].total_score(), 5.0);
        assert_eq!(vs[0].ids().len(), 2);
    }

    /// Converts a distribution whose points either all carry witnesses or
    /// none do into the columnar form (test-only seam: production code builds
    /// columns through `unit`/`merge_shifted_scaled`).
    fn columns_of(d: &ScoreDistribution) -> ScoreColumns {
        let tracked = d.points().iter().all(|p| p.witness.is_some()) && !d.is_empty();
        ScoreColumns {
            scores: d.points().iter().map(|p| p.score).collect(),
            probs: d.points().iter().map(|p| p.probability).collect(),
            witnesses: if tracked {
                d.points()
                    .iter()
                    .map(|p| p.witness.clone().unwrap())
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    fn witnessed(pairs: &[(f64, f64)], seed: u64) -> ScoreDistribution {
        let points = pairs
            .iter()
            .enumerate()
            .map(|(i, &(score, probability))| DistributionPoint {
                score,
                probability,
                witness: Some(VectorWitness {
                    ids: vec![TupleId(seed + i as u64), TupleId(seed + 100 + i as u64)],
                    probability: probability * 0.9,
                }),
            })
            .collect();
        ScoreDistribution::from_points(points)
    }

    #[test]
    fn columns_scale_matches_shifted_scaled_bit_exactly() {
        let base = witnessed(&[(-0.0, 0.25), (1.5, 0.5), (8.0, 0.125)], 7);
        for factor in [0.3, 1.0, 0.0, -1.0] {
            let scalar = base.shifted_scaled(0.0, factor, None);
            let mut cols = columns_of(&base);
            cols.scale_in_place(factor);
            // PartialEq compares exact f64 bits — including the `-0.0 + 0.0`
            // normalization of the score column.
            assert_eq!(cols.into_distribution(), scalar, "factor {factor}");
        }
    }

    #[test]
    fn columns_merge_matches_shift_then_merge_bit_exactly() {
        // Scores engineered so the union hits every branch: strictly
        // interleaved lines, epsilon-equal lines (witness comparison both
        // ways), and tails on both sides.
        let acc = witnessed(&[(1.0, 0.2), (4.0, 0.4), (9.0, 0.1), (12.0, 0.05)], 1);
        let below = witnessed(
            &[(0.5, 0.3), (2.0 + 1e-13, 0.9), (7.0, 0.6), (20.0, 0.01)],
            50,
        );
        for (delta, factor, prepend) in [
            (2.0, 0.7, Some(TupleId(999))),
            (0.0, 1.0, None),
            (-3.0, 0.001, Some(TupleId(5))),
        ] {
            let mut scalar = acc.clone();
            scalar.merge_from(&below.shifted_scaled(delta, factor, prepend));
            let mut cols = columns_of(&acc);
            cols.merge_shifted_scaled(&columns_of(&below), delta, factor, prepend);
            assert_eq!(cols.into_distribution(), scalar, "delta {delta}");
        }
        // Merging into an empty accumulator reproduces the clone path.
        let mut scalar = ScoreDistribution::empty();
        scalar.merge_from(&below.shifted_scaled(1.0, 0.5, Some(TupleId(3))));
        let mut cols = ScoreColumns::empty();
        cols.merge_shifted_scaled(&columns_of(&below), 1.0, 0.5, Some(TupleId(3)));
        assert_eq!(cols.into_distribution(), scalar);
        // A non-positive factor is a no-op, like merging an emptied shift.
        let mut cols = columns_of(&acc);
        cols.merge_shifted_scaled(&columns_of(&below), 1.0, 0.0, None);
        assert_eq!(cols.into_distribution(), acc);
    }

    #[test]
    fn columns_merge_without_witnesses() {
        let acc = dist(&[(1.0, 0.2), (4.0, 0.4)]);
        let below = dist(&[(0.5, 0.3), (4.0, 0.25)]);
        let mut scalar = acc.clone();
        scalar.merge_from(&below.shifted_scaled(0.0, 0.5, None));
        let mut cols = columns_of(&acc);
        cols.merge_shifted_scaled(&columns_of(&below), 0.0, 0.5, None);
        assert_eq!(cols.into_distribution(), scalar);
    }

    #[test]
    fn columns_coalesce_matches_distribution_coalesce_bit_exactly() {
        let base = witnessed(
            &[
                (1.0, 0.1),
                (1.4, 0.3),
                (2.0, 0.2),
                (5.0, 0.15),
                (5.3, 0.05),
                (9.0, 0.2),
            ],
            11,
        );
        for policy in [CoalescePolicy::PaperMean, CoalescePolicy::WeightedMean] {
            for max_lines in [4, 2, 1] {
                let mut scalar = base.clone();
                scalar.coalesce(max_lines, policy);
                let mut cols = columns_of(&base);
                cols.coalesce(max_lines, policy);
                assert_eq!(
                    cols.into_distribution(),
                    scalar,
                    "policy {policy:?} max_lines {max_lines}"
                );
            }
        }
    }

    #[test]
    fn columns_coalesce_heap_matches_scan_on_many_lines() {
        // A few hundred lines with deliberately repeated gap values, so the
        // heap's (gap, position) tie-break is exercised against the scalar
        // scan's leftmost-strictly-smaller rule at every merge.
        let mut x = 0u64;
        let mut score = 0.0;
        let pairs: Vec<(f64, f64)> = (0..300)
            .map(|_| {
                // Deterministic xorshift; gaps drawn from a small set of
                // discrete values to force plenty of exact ties.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                score += [0.5, 1.0, 1.0, 2.0, 0.25][(x % 5) as usize];
                (score, 0.001 + (x % 997) as f64 / 1000.0)
            })
            .collect();
        let base = witnessed(&pairs, 1000);
        for policy in [CoalescePolicy::PaperMean, CoalescePolicy::WeightedMean] {
            for max_lines in [200, 64, 7] {
                let mut scalar = base.clone();
                scalar.coalesce(max_lines, policy);
                let mut cols = columns_of(&base);
                cols.coalesce(max_lines, policy);
                assert_eq!(
                    cols.into_distribution(),
                    scalar,
                    "policy {policy:?} max_lines {max_lines}"
                );
            }
        }
    }

    #[test]
    fn columns_unit_round_trips() {
        assert_eq!(
            ScoreColumns::unit(true).into_distribution(),
            ScoreDistribution::unit()
        );
        assert_eq!(
            ScoreColumns::unit(false).into_distribution(),
            ScoreDistribution::singleton(0.0, 1.0, None)
        );
        assert!(ScoreColumns::empty().is_empty());
        assert_eq!(ScoreColumns::unit(true).len(), 1);
    }
}
