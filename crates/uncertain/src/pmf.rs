//! Probability mass functions over top-k total scores.
//!
//! The complete answer to a top-k query on uncertain data is a joint
//! distribution over k-tuple vectors; the paper's proposal is to expose the
//! induced distribution over *total scores* (a one-dimensional PMF), plus one
//! witness vector per score. [`ScoreDistribution`] is that object. It also
//! implements the *line coalescing* approximation of §3.2.1 that keeps
//! intermediate and final distributions at a bounded number of points.

use crate::tuple::TupleId;
use crate::vector::TopkVector;

/// Relative tolerance under which two scores are considered the same line of
/// the PMF (guards against floating point dust produced by different
/// summation orders).
const SCORE_MERGE_EPSILON: f64 = 1e-9;

/// Returns true when two total scores should be treated as the same value.
#[inline]
pub fn scores_equal(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= SCORE_MERGE_EPSILON * scale
}

/// How two coalesced lines combine into one (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoalescePolicy {
    /// The paper's rule: the merged score is the plain average of the two
    /// scores and the probability is their sum.
    #[default]
    PaperMean,
    /// A slight refinement: the merged score is the probability-weighted
    /// average, which preserves the expectation of the distribution exactly.
    WeightedMean,
}

/// The most probable top-k vector attaining a given total score.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorWitness {
    /// Tuple ids of the witness vector in rank order.
    pub ids: Vec<TupleId>,
    /// Probability that this exact vector is the top-k vector.
    pub probability: f64,
}

impl VectorWitness {
    /// An empty witness (used as the seed of dynamic programs).
    pub fn empty() -> Self {
        VectorWitness {
            ids: Vec::new(),
            probability: 1.0,
        }
    }

    /// Converts the witness into a full [`TopkVector`] given its total score.
    pub fn to_vector(&self, total_score: f64) -> TopkVector {
        TopkVector::new(self.ids.clone(), total_score, self.probability)
    }
}

/// One vertical line of the PMF: a total score, the probability that the
/// top-k vector has that total score, and optionally the most probable
/// vector attaining it.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionPoint {
    /// Total score of the top-k vector.
    pub score: f64,
    /// Probability mass at this score.
    pub probability: f64,
    /// Most probable single vector attaining this score, when tracked.
    pub witness: Option<VectorWitness>,
}

/// A histogram view of a [`ScoreDistribution`] at a caller-chosen bucket
/// width (usage (1) of §2.2: "an application can access the distribution at
/// any granularity of precision").
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub start: f64,
    /// Width of every bucket.
    pub width: f64,
    /// Probability mass per bucket.
    pub buckets: Vec<f64>,
}

impl Histogram {
    /// The inclusive lower edge of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> f64 {
        self.start + self.width * i as f64
    }

    /// Total mass captured by the histogram.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

/// A discrete probability distribution over top-k total scores.
///
/// Points are kept sorted by score. The distribution is *not* required to sum
/// to one: pruning thresholds (pτ), possible worlds with fewer than `k`
/// tuples, and line coalescing all legitimately leave the captured mass
/// slightly below one. Use [`total_probability`](Self::total_probability) to
/// inspect the captured mass and [`normalize`](Self::normalize) to rescale.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreDistribution {
    points: Vec<DistributionPoint>,
}

impl ScoreDistribution {
    /// The empty distribution (no mass). Merging it into another distribution
    /// is a no-op; it is also the "blocked exit point" of §3.3.2.
    pub fn empty() -> Self {
        ScoreDistribution { points: Vec::new() }
    }

    /// The unit distribution: score 0 with probability 1 and an empty witness
    /// vector. This is the "enabled exit point" / auxiliary column-0 cell of
    /// the dynamic program (§3.2).
    pub fn unit() -> Self {
        ScoreDistribution {
            points: vec![DistributionPoint {
                score: 0.0,
                probability: 1.0,
                witness: Some(VectorWitness::empty()),
            }],
        }
    }

    /// A distribution with a single point.
    pub fn singleton(score: f64, probability: f64, witness: Option<VectorWitness>) -> Self {
        ScoreDistribution {
            points: vec![DistributionPoint {
                score,
                probability,
                witness,
            }],
        }
    }

    /// Builds a distribution from `(score, probability)` pairs (no witnesses).
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let mut d = ScoreDistribution::empty();
        for (s, p) in pairs {
            d.add_mass(s, p, None);
        }
        d
    }

    /// Reconstructs a distribution from score lines produced by
    /// [`points`](Self::points) elsewhere (the wire codec) — **verbatim**, no
    /// sorting and no coalescing, so the reconstruction is bit-identical to
    /// the original. The caller asserts the points are in ascending score
    /// order; routing arbitrary lines through [`add_mass`](Self::add_mass)
    /// instead keeps the ordering invariant but may merge epsilon-close
    /// scores, which is exactly what a bit-exact transport must not do.
    pub fn from_points(points: Vec<DistributionPoint>) -> Self {
        ScoreDistribution { points }
    }

    /// Number of distinct score lines.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the distribution carries no mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The score lines in ascending score order.
    #[inline]
    pub fn points(&self) -> &[DistributionPoint] {
        &self.points
    }

    /// Iterates over `(score, probability)` pairs in ascending score order.
    pub fn pairs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().map(|p| (p.score, p.probability))
    }

    /// Adds probability mass at a score, merging with an existing line when
    /// the scores are equal (keeping the more probable witness).
    pub fn add_mass(&mut self, score: f64, probability: f64, witness: Option<VectorWitness>) {
        if probability <= 0.0 {
            return;
        }
        match self.points.binary_search_by(|p| p.score.total_cmp(&score)) {
            Ok(i) => {
                self.points[i].probability += probability;
                Self::keep_better_witness(&mut self.points[i].witness, witness);
            }
            Err(i) => {
                // Check the neighbours for epsilon-equality before inserting.
                if i > 0 && scores_equal(self.points[i - 1].score, score) {
                    self.points[i - 1].probability += probability;
                    Self::keep_better_witness(&mut self.points[i - 1].witness, witness);
                } else if i < self.points.len() && scores_equal(self.points[i].score, score) {
                    self.points[i].probability += probability;
                    Self::keep_better_witness(&mut self.points[i].witness, witness);
                } else {
                    self.points.insert(
                        i,
                        DistributionPoint {
                            score,
                            probability,
                            witness,
                        },
                    );
                }
            }
        }
    }

    fn keep_better_witness(slot: &mut Option<VectorWitness>, candidate: Option<VectorWitness>) {
        match (slot.as_ref(), candidate) {
            (_, None) => {}
            (None, Some(c)) => *slot = Some(c),
            (Some(cur), Some(c)) => {
                if c.probability > cur.probability {
                    *slot = Some(c);
                }
            }
        }
    }

    /// Returns a copy with every score shifted by `delta` and every
    /// probability (point and witness) multiplied by `factor`; `prepend`, when
    /// given, is pushed onto the front of every witness vector.
    ///
    /// This is exactly step (2) of the distribution merging process of §3.2
    /// (and, with `delta = 0`, `prepend = None`, step (1)).
    pub fn shifted_scaled(&self, delta: f64, factor: f64, prepend: Option<TupleId>) -> Self {
        if factor <= 0.0 {
            return ScoreDistribution::empty();
        }
        let points = self
            .points
            .iter()
            .map(|p| DistributionPoint {
                score: p.score + delta,
                probability: p.probability * factor,
                witness: p.witness.as_ref().map(|w| {
                    let mut ids = Vec::with_capacity(w.ids.len() + usize::from(prepend.is_some()));
                    if let Some(id) = prepend {
                        ids.push(id);
                    }
                    ids.extend_from_slice(&w.ids);
                    VectorWitness {
                        ids,
                        probability: w.probability * factor,
                    }
                }),
            })
            .collect();
        ScoreDistribution { points }
    }

    /// Merges another distribution into this one (step (3) of §3.2): the
    /// union of the lines, with equal scores combined by summing their
    /// probabilities and keeping the more probable witness.
    pub fn merge_from(&mut self, other: &ScoreDistribution) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.points.len() + other.points.len());
        let mut a = std::mem::take(&mut self.points).into_iter().peekable();
        let mut b = other.points.iter().cloned().peekable();
        while let (Some(pa), Some(pb)) = (a.peek(), b.peek()) {
            if scores_equal(pa.score, pb.score) {
                let mut pa = a.next().unwrap();
                let pb = b.next().unwrap();
                pa.probability += pb.probability;
                Self::keep_better_witness(&mut pa.witness, pb.witness);
                merged.push(pa);
            } else if pa.score < pb.score {
                merged.push(a.next().unwrap());
            } else {
                merged.push(b.next().unwrap());
            }
        }
        merged.extend(a);
        merged.extend(b);
        self.points = merged;
    }

    /// Total probability mass captured by the distribution.
    pub fn total_probability(&self) -> f64 {
        self.points.iter().map(|p| p.probability).sum()
    }

    /// Rescales the distribution so it sums to one. No-op on empty
    /// distributions.
    pub fn normalize(&mut self) {
        let total = self.total_probability();
        if total > 0.0 {
            for p in &mut self.points {
                p.probability /= total;
            }
        }
    }

    /// Smallest score carrying mass.
    pub fn min_score(&self) -> Option<f64> {
        self.points.first().map(|p| p.score)
    }

    /// Largest score carrying mass.
    pub fn max_score(&self) -> Option<f64> {
        self.points.last().map(|p| p.score)
    }

    /// The score with the largest probability mass (the mode).
    pub fn mode(&self) -> Option<&DistributionPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.probability.total_cmp(&b.probability))
    }

    /// Expected total score, conditioned on the captured mass.
    pub fn expected_score(&self) -> f64 {
        let total = self.total_probability();
        if total <= 0.0 {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.score * p.probability)
            .sum::<f64>()
            / total
    }

    /// Variance of the total score, conditioned on the captured mass.
    pub fn variance(&self) -> f64 {
        let total = self.total_probability();
        if total <= 0.0 {
            return 0.0;
        }
        let mean = self.expected_score();
        self.points
            .iter()
            .map(|p| (p.score - mean).powi(2) * p.probability)
            .sum::<f64>()
            / total
    }

    /// Standard deviation of the total score.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability that the total score is at most `x` (unnormalized CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.score <= x)
            .map(|p| p.probability)
            .sum()
    }

    /// The smallest score `s` such that the normalized CDF at `s` is at least
    /// `q` (`q ∈ [0, 1]`). Returns `None` on an empty distribution.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let total = self.total_probability();
        let mut acc = 0.0;
        for p in &self.points {
            acc += p.probability;
            if acc / total >= q - 1e-12 {
                return Some(p.score);
            }
        }
        self.max_score()
    }

    /// Probability mass with a score strictly greater than `x`.
    pub fn mass_above(&self, x: f64) -> f64 {
        self.points
            .iter()
            .rev()
            .take_while(|p| p.score > x)
            .map(|p| p.probability)
            .sum()
    }

    /// Builds a histogram with the given bucket width (usage (1) of §2.2).
    /// Returns `None` on an empty distribution or a non-positive width.
    pub fn histogram(&self, bucket_width: f64) -> Option<Histogram> {
        if self.is_empty() || bucket_width <= 0.0 || !bucket_width.is_finite() {
            return None;
        }
        let lo = self.min_score()?;
        let hi = self.max_score()?;
        let n = (((hi - lo) / bucket_width).floor() as usize) + 1;
        let mut buckets = vec![0.0; n];
        for p in &self.points {
            let mut idx = ((p.score - lo) / bucket_width).floor() as usize;
            if idx >= n {
                idx = n - 1;
            }
            buckets[idx] += p.probability;
        }
        Some(Histogram {
            start: lo,
            width: bucket_width,
            buckets,
        })
    }

    /// Expected distance from a random score drawn from this distribution to
    /// the closest score in `representatives` — the objective minimized by
    /// the c-Typical-Topk scores (Definition 1). The expectation is taken
    /// over the captured (unnormalized) mass, matching the paper's objective.
    pub fn expected_min_distance(&self, representatives: &[f64]) -> f64 {
        if representatives.is_empty() {
            return f64::INFINITY;
        }
        self.points
            .iter()
            .map(|p| {
                let d = representatives
                    .iter()
                    .map(|r| (p.score - r).abs())
                    .fold(f64::INFINITY, f64::min);
                d * p.probability
            })
            .sum()
    }

    /// First-order Wasserstein (earth mover's) distance between two
    /// distributions, treating both as normalized. A convenient scalar for
    /// comparing an approximate (coalesced or pruned) distribution against an
    /// exact one.
    pub fn earth_movers_distance(&self, other: &ScoreDistribution) -> f64 {
        if self.is_empty() || other.is_empty() {
            return if self.is_empty() && other.is_empty() {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let ta = self.total_probability();
        let tb = other.total_probability();
        // Walk the union of the supports accumulating |CDF_a - CDF_b|.
        let mut grid: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.score)
            .chain(other.points.iter().map(|p| p.score))
            .collect();
        grid.sort_by(|a, b| a.total_cmp(b));
        grid.dedup_by(|a, b| scores_equal(*a, *b));
        let mut ia = 0;
        let mut ib = 0;
        let mut cdf_a = 0.0;
        let mut cdf_b = 0.0;
        let mut dist = 0.0;
        for w in grid.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            while ia < self.points.len() && self.points[ia].score <= x0 + 1e-15 {
                cdf_a += self.points[ia].probability / ta;
                ia += 1;
            }
            while ib < other.points.len() && other.points[ib].score <= x0 + 1e-15 {
                cdf_b += other.points[ib].probability / tb;
                ib += 1;
            }
            dist += (cdf_a - cdf_b).abs() * (x1 - x0);
        }
        dist
    }

    /// Coalesces lines until at most `max_lines` remain (§3.2.1): repeatedly
    /// merge the two closest-in-score neighbouring lines. Under
    /// [`CoalescePolicy::PaperMean`] the merged score is the plain average of
    /// the two (the paper's rule); under
    /// [`CoalescePolicy::WeightedMean`] it is the probability-weighted
    /// average. In both cases probabilities add and the more probable witness
    /// is kept.
    pub fn coalesce(&mut self, max_lines: usize, policy: CoalescePolicy) {
        if max_lines == 0 || self.points.len() <= max_lines {
            return;
        }
        // The number of merges needed is small in steady state (the DP calls
        // this after every merge step), so a scan-for-minimum loop is
        // adequate and allocation free.
        while self.points.len() > max_lines {
            let mut best = 0;
            let mut best_gap = f64::INFINITY;
            for i in 0..self.points.len() - 1 {
                let gap = self.points[i + 1].score - self.points[i].score;
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let right = self.points.remove(best + 1);
            let left = &mut self.points[best];
            let merged_prob = left.probability + right.probability;
            left.score = match policy {
                CoalescePolicy::PaperMean => (left.score + right.score) / 2.0,
                CoalescePolicy::WeightedMean => {
                    (left.score * left.probability + right.score * right.probability) / merged_prob
                }
            };
            left.probability = merged_prob;
            Self::keep_better_witness(&mut left.witness, right.witness);
        }
    }

    /// Returns the witness vectors as full [`TopkVector`]s, one per line that
    /// has a witness, in ascending score order.
    pub fn witness_vectors(&self) -> Vec<TopkVector> {
        self.points
            .iter()
            .filter_map(|p| p.witness.as_ref().map(|w| w.to_vector(p.score)))
            .collect()
    }

    /// The point whose score is closest to `score`.
    pub fn nearest_point(&self, score: f64) -> Option<&DistributionPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.score - score).abs().total_cmp(&(b.score - score).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(f64, f64)]) -> ScoreDistribution {
        ScoreDistribution::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn unit_and_empty() {
        assert!(ScoreDistribution::empty().is_empty());
        let u = ScoreDistribution::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.total_probability(), 1.0);
        assert_eq!(u.points()[0].score, 0.0);
        assert!(u.points()[0].witness.is_some());
    }

    #[test]
    fn add_mass_merges_equal_scores() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(10.0, 0.2, None);
        d.add_mass(12.0, 0.3, None);
        d.add_mass(10.0 + 1e-12, 0.1, None);
        assert_eq!(d.len(), 2);
        assert!((d.cdf(10.5) - 0.3).abs() < 1e-12);
        // Zero or negative mass is ignored.
        d.add_mass(50.0, 0.0, None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn add_mass_keeps_more_probable_witness() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(
            5.0,
            0.2,
            Some(VectorWitness {
                ids: vec![TupleId(1)],
                probability: 0.2,
            }),
        );
        d.add_mass(
            5.0,
            0.3,
            Some(VectorWitness {
                ids: vec![TupleId(2)],
                probability: 0.3,
            }),
        );
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(2)]);
        assert!((d.points()[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shifted_scaled_applies_delta_factor_and_prepend() {
        let base = ScoreDistribution::unit();
        let d = base.shifted_scaled(7.0, 0.4, Some(TupleId(3)));
        assert_eq!(d.len(), 1);
        assert!((d.points()[0].score - 7.0).abs() < 1e-12);
        assert!((d.points()[0].probability - 0.4).abs() < 1e-12);
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(3)]);
        assert!((w.probability - 0.4).abs() < 1e-12);
        // Scaling by zero empties the distribution.
        assert!(base.shifted_scaled(1.0, 0.0, None).is_empty());
    }

    #[test]
    fn merge_from_unions_and_sums() {
        let mut a = dist(&[(1.0, 0.1), (3.0, 0.2)]);
        let b = dist(&[(2.0, 0.3), (3.0, 0.1)]);
        a.merge_from(&b);
        assert_eq!(a.len(), 3);
        assert!((a.total_probability() - 0.7).abs() < 1e-12);
        let probs: Vec<f64> = a.pairs().map(|(_, p)| p).collect();
        assert!((probs[2] - 0.3).abs() < 1e-12); // 0.2 + 0.1 at score 3
                                                 // Merging an empty distribution is a no-op; merging into empty copies.
        let mut e = ScoreDistribution::empty();
        e.merge_from(&a);
        assert_eq!(e.len(), 3);
        a.merge_from(&ScoreDistribution::empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn moments_and_quantiles() {
        let d = dist(&[(10.0, 0.25), (20.0, 0.5), (30.0, 0.25)]);
        assert!((d.expected_score() - 20.0).abs() < 1e-12);
        assert!((d.variance() - 50.0).abs() < 1e-12);
        assert!((d.std_dev() - 50.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.min_score(), Some(10.0));
        assert_eq!(d.max_score(), Some(30.0));
        assert_eq!(d.mode().unwrap().score, 20.0);
        assert_eq!(d.quantile(0.0), Some(10.0));
        assert_eq!(d.quantile(0.5), Some(20.0));
        assert_eq!(d.quantile(1.0), Some(30.0));
        assert!((d.mass_above(15.0) - 0.75).abs() < 1e-12);
        assert!((d.cdf(25.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn moments_are_conditioned_on_captured_mass() {
        // Same shape but only 0.5 total mass: expectation must not change.
        let d = dist(&[(10.0, 0.125), (20.0, 0.25), (30.0, 0.125)]);
        assert!((d.expected_score() - 20.0).abs() < 1e-12);
        assert!((d.variance() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rescales_to_one() {
        let mut d = dist(&[(10.0, 0.2), (20.0, 0.2)]);
        d.normalize();
        assert!((d.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_capture_all_mass() {
        let d = dist(&[(0.0, 0.1), (4.9, 0.2), (5.0, 0.3), (14.9, 0.4)]);
        let h = d.histogram(5.0).unwrap();
        assert_eq!(h.buckets.len(), 3);
        assert!((h.buckets[0] - 0.3).abs() < 1e-12);
        assert!((h.buckets[1] - 0.3).abs() < 1e-12);
        assert!((h.buckets[2] - 0.4).abs() < 1e-12);
        assert!((h.total() - 1.0).abs() < 1e-12);
        assert_eq!(h.bucket_start(1), 5.0);
        assert!(d.histogram(0.0).is_none());
        assert!(ScoreDistribution::empty().histogram(1.0).is_none());
    }

    #[test]
    fn expected_min_distance_matches_hand_computation() {
        let d = dist(&[(0.0, 0.5), (10.0, 0.5)]);
        assert!((d.expected_min_distance(&[0.0]) - 5.0).abs() < 1e-12);
        assert!((d.expected_min_distance(&[5.0]) - 5.0).abs() < 1e-12);
        assert!((d.expected_min_distance(&[0.0, 10.0]) - 0.0).abs() < 1e-12);
        assert_eq!(d.expected_min_distance(&[]), f64::INFINITY);
    }

    #[test]
    fn coalesce_respects_max_lines_and_preserves_mass() {
        let mut d = dist(&[(1.0, 0.1), (1.1, 0.1), (5.0, 0.3), (9.0, 0.5)]);
        d.coalesce(3, CoalescePolicy::PaperMean);
        assert_eq!(d.len(), 3);
        assert!((d.total_probability() - 1.0).abs() < 1e-12);
        // The two closest lines (1.0 and 1.1) merged to their plain average.
        assert!((d.points()[0].score - 1.05).abs() < 1e-12);

        let mut d = dist(&[(0.0, 0.9), (1.0, 0.1), (100.0, 0.5)]);
        d.coalesce(2, CoalescePolicy::WeightedMean);
        assert_eq!(d.len(), 2);
        assert!((d.points()[0].score - 0.1).abs() < 1e-12);

        // max_lines = 0 disables coalescing.
        let mut d = dist(&[(1.0, 0.5), (2.0, 0.5)]);
        d.coalesce(0, CoalescePolicy::PaperMean);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn weighted_coalescing_preserves_expectation() {
        let mut d = dist(&[(1.0, 0.2), (2.0, 0.4), (10.0, 0.2), (11.0, 0.2)]);
        let before = d.expected_score();
        d.coalesce(2, CoalescePolicy::WeightedMean);
        assert!((d.expected_score() - before).abs() < 1e-9);
    }

    #[test]
    fn emd_of_identical_distributions_is_zero() {
        let a = dist(&[(1.0, 0.4), (5.0, 0.6)]);
        let b = dist(&[(1.0, 0.4), (5.0, 0.6)]);
        assert!(a.earth_movers_distance(&b).abs() < 1e-12);
        let c = dist(&[(2.0, 0.4), (6.0, 0.6)]);
        assert!((a.earth_movers_distance(&c) - 1.0).abs() < 1e-9);
        assert_eq!(
            ScoreDistribution::empty().earth_movers_distance(&ScoreDistribution::empty()),
            0.0
        );
        assert!(a
            .earth_movers_distance(&ScoreDistribution::empty())
            .is_infinite());
    }

    #[test]
    fn nearest_point_and_witness_vectors() {
        let mut d = ScoreDistribution::empty();
        d.add_mass(
            5.0,
            0.5,
            Some(VectorWitness {
                ids: vec![TupleId(1), TupleId(2)],
                probability: 0.4,
            }),
        );
        d.add_mass(9.0, 0.5, None);
        assert_eq!(d.nearest_point(6.0).unwrap().score, 5.0);
        assert_eq!(d.nearest_point(8.0).unwrap().score, 9.0);
        let vs = d.witness_vectors();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].total_score(), 5.0);
        assert_eq!(vs[0].ids().len(), 2);
    }
}
