//! [`ScanHandle`] — the uniform opened-input type of the workspace.
//!
//! Every physical input the workspace knows (an in-memory table's stream, a
//! generator’s `VecSource`, a set of shard streams, the
//! replayed runs of an external sort) ultimately *opens* into one of two
//! shapes: a single rank-ordered [`TupleSource`], or several per-shard
//! rank-ordered sources fused under a loser-tree
//! [`MergeSource`]. A `ScanHandle` erases that
//! distinction behind one owned, `Send` stream that the rank-scan executor
//! (and anything else consuming a [`TupleSource`]) can pull from without
//! knowing how many physical streams feed it.
//!
//! `Dataset::open` in `ttk-core` returns a `ScanHandle`; custom dataset
//! providers (the CSV datasets of `ttk-pdb`, generator closures) construct
//! one with [`ScanHandle::single`] or [`ScanHandle::merged`].

use std::sync::Arc;

use crate::error::Result;
use crate::feed::{PrefetchPolicy, TupleFeed};
use crate::merge::MergeSource;
use crate::source::{SourceTuple, TupleBlock, TupleSource};
use crate::wire::WireScanStats;

/// An opened, rank-ordered scan over one logical relation: either a single
/// stream or a k-way merge over shard streams, behind one uniform
/// [`TupleSource`].
///
/// The handle owns its stream(s); like every source it is single-pass — a
/// fresh handle is opened per query (cheaply, from cached artifacts, by the
/// `Dataset` abstraction in `ttk-core`).
pub struct ScanHandle {
    source: Box<dyn TupleSource + Send>,
    shards: usize,
    prefetch: Option<usize>,
    wire_stats: Option<Arc<WireScanStats>>,
}

impl ScanHandle {
    /// Wraps a single rank-ordered stream.
    pub fn single(source: impl TupleSource + Send + 'static) -> Self {
        ScanHandle {
            source: Box::new(source),
            shards: 1,
            prefetch: None,
            wire_stats: None,
        }
    }

    /// Wraps an already-boxed single stream without double boxing.
    pub fn from_boxed(source: Box<dyn TupleSource + Send>) -> Self {
        ScanHandle {
            source,
            shards: 1,
            prefetch: None,
            wire_stats: None,
        }
    }

    /// Fuses the shards of **one partitioned relation** (shared group-key
    /// namespace) under a loser-tree [`MergeSource`], exactly as the sharded
    /// executor path does — the merged stream is bit-identical to the
    /// unpartitioned stream.
    pub fn merged<S: TupleSource + Send + 'static>(shards: Vec<S>) -> Self {
        ScanHandle::merged_prefetched(shards, PrefetchPolicy::Off)
    }

    /// [`ScanHandle::merged`] with an optional per-shard prefetch: under
    /// [`PrefetchPolicy::PerShard`], every shard is moved onto its own
    /// producer thread behind a bounded [`TupleFeed`], so per-shard I/O
    /// (spill-run replay, socket reads) overlaps with the loser-tree merge.
    /// The merged stream is bit-identical either way — prefetching changes
    /// *when* tuples are pulled from the shards, never their order.
    pub fn merged_prefetched<S: TupleSource + Send + 'static>(
        shards: Vec<S>,
        prefetch: PrefetchPolicy,
    ) -> Self {
        let shard_count = shards.len().max(1);
        match prefetch.buffer() {
            None => ScanHandle {
                source: Box::new(MergeSource::new(shards)),
                shards: shard_count,
                prefetch: None,
                wire_stats: None,
            },
            Some(buffer) => {
                let feeds: Vec<TupleFeed> = shards
                    .into_iter()
                    .map(|shard| TupleFeed::spawn(shard, buffer))
                    .collect();
                ScanHandle {
                    source: Box::new(MergeSource::new(feeds)),
                    shards: shard_count,
                    prefetch: Some(buffer),
                    wire_stats: None,
                }
            }
        }
    }

    /// Attaches the shared wire-scan counters the handle's network-backed
    /// streams record into, so the planner can read them after the scan.
    pub fn with_wire_stats(mut self, stats: Arc<WireScanStats>) -> Self {
        self.wire_stats = Some(stats);
        self
    }

    /// The wire-scan counters attached by [`with_wire_stats`]
    /// (`None` for purely local scans).
    ///
    /// [`with_wire_stats`]: ScanHandle::with_wire_stats
    pub fn wire_stats(&self) -> Option<&Arc<WireScanStats>> {
        self.wire_stats.as_ref()
    }

    /// Number of physical shard streams feeding this handle (1 for a single
    /// stream).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The per-shard prefetch buffer, when the shards feed the merge through
    /// producer threads (`None` for synchronous pulls).
    pub fn prefetch_buffer(&self) -> Option<usize> {
        self.prefetch
    }

    /// An optional hint of how many tuples remain (delegates to the
    /// underlying stream).
    pub fn remaining_hint(&self) -> Option<usize> {
        self.source.size_hint()
    }
}

impl std::fmt::Debug for ScanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanHandle")
            .field("shards", &self.shards)
            .field("prefetch", &self.prefetch)
            .field("remaining", &self.source.size_hint())
            .finish()
    }
}

impl TupleSource for ScanHandle {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        self.source.next_tuple()
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        self.source.next_block(max)
    }

    fn size_hint(&self) -> Option<usize> {
        self.source.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use crate::tuple::UncertainTuple;

    fn tuples(ids: &[(u64, f64)]) -> Vec<SourceTuple> {
        ids.iter()
            .map(|&(id, score)| {
                SourceTuple::independent(UncertainTuple::new(id, score, 0.5).unwrap())
            })
            .collect()
    }

    fn drain(mut source: impl TupleSource) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple().unwrap() {
            out.push(t.tuple.id().raw());
        }
        out
    }

    #[test]
    fn single_handle_streams_the_source() {
        let handle = ScanHandle::single(VecSource::new(tuples(&[(1, 5.0), (2, 9.0)])));
        assert_eq!(handle.shard_count(), 1);
        assert_eq!(handle.remaining_hint(), Some(2));
        assert_eq!(drain(handle), vec![2, 1]);
    }

    #[test]
    fn merged_handle_equals_the_single_stream() {
        let all = tuples(&[(1, 9.0), (2, 7.0), (3, 5.0), (4, 3.0)]);
        let single = drain(ScanHandle::single(VecSource::new(all.clone())));
        let a = VecSource::new(vec![all[0], all[2]]);
        let b = VecSource::new(vec![all[1], all[3]]);
        let merged = ScanHandle::merged(vec![a, b]);
        assert_eq!(merged.shard_count(), 2);
        assert_eq!(merged.prefetch_buffer(), None);
        assert_eq!(drain(merged), single);
    }

    #[test]
    fn prefetched_merge_is_bit_identical_to_the_synchronous_merge() {
        let all: Vec<_> = (0..200u64)
            .map(|i| {
                SourceTuple::independent(
                    UncertainTuple::new(i, ((i * 7) % 23) as f64, 0.5).unwrap(),
                )
            })
            .collect();
        let single = drain(ScanHandle::single(VecSource::new(all.clone())));
        for buffer in [1usize, 4, 64] {
            let shards: Vec<VecSource> = (0..3)
                .map(|s| {
                    VecSource::new(
                        all.iter()
                            .enumerate()
                            .filter(|(i, _)| i % 3 == s)
                            .map(|(_, t)| *t)
                            .collect(),
                    )
                })
                .collect();
            let handle = ScanHandle::merged_prefetched(
                shards,
                crate::feed::PrefetchPolicy::per_shard(buffer),
            );
            assert_eq!(handle.shard_count(), 3);
            assert_eq!(handle.prefetch_buffer(), Some(buffer));
            assert_eq!(drain(handle), single, "buffer {buffer}");
        }
    }

    #[test]
    fn boxed_handle_avoids_extra_indirection() {
        let boxed: Box<dyn TupleSource + Send> = Box::new(VecSource::new(tuples(&[(7, 1.0)])));
        let handle = ScanHandle::from_boxed(boxed);
        assert_eq!(handle.shard_count(), 1);
        assert_eq!(drain(handle), vec![7]);
    }
}
