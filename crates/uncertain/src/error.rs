//! Error types for the uncertain-relation data model.

use std::fmt;

/// Errors produced while building or querying uncertain tables.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A probability value was outside the half-open interval `(0, 1]`.
    ///
    /// The tuple-level membership probability of an uncertain tuple must be
    /// strictly positive (a tuple that can never exist carries no
    /// information) and at most one.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Human readable description of where the value came from.
        context: String,
    },
    /// The probabilities of the members of a mutual-exclusion (ME) group sum
    /// to more than one, which is inconsistent with the x-relation model.
    GroupProbabilityExceedsOne {
        /// Index of the group in declaration order.
        group: usize,
        /// The offending sum.
        sum: f64,
    },
    /// Two tuples were declared with the same [`TupleId`](crate::TupleId).
    DuplicateTupleId(u64),
    /// A tuple was listed in more than one mutual-exclusion rule.
    TupleInMultipleGroups(u64),
    /// A mutual-exclusion rule referenced a tuple id that is not in the table.
    UnknownTupleId(u64),
    /// A score was not a finite number.
    NonFiniteScore {
        /// The tuple whose score is invalid.
        tuple: u64,
        /// The offending value.
        value: f64,
    },
    /// Possible-world enumeration would produce more worlds than the caller
    /// allowed.
    TooManyWorlds {
        /// The number of worlds that full enumeration would produce
        /// (saturating).
        worlds: u128,
        /// The limit the caller supplied.
        limit: u128,
    },
    /// A query or algorithm parameter was invalid (for example `k = 0`).
    InvalidParameter(String),
    /// A streaming [`TupleSource`](crate::TupleSource) failed to produce its
    /// next tuple (I/O failure, corrupt spill run, broken connection, …).
    Source(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} ({context}): must be in (0, 1]")
            }
            Error::GroupProbabilityExceedsOne { group, sum } => write!(
                f,
                "mutual-exclusion group #{group} has total probability {sum} > 1"
            ),
            Error::DuplicateTupleId(id) => write!(f, "duplicate tuple id {id}"),
            Error::TupleInMultipleGroups(id) => {
                write!(f, "tuple {id} appears in more than one mutual-exclusion rule")
            }
            Error::UnknownTupleId(id) => {
                write!(f, "mutual-exclusion rule references unknown tuple id {id}")
            }
            Error::NonFiniteScore { tuple, value } => {
                write!(f, "tuple {tuple} has a non-finite score {value}")
            }
            Error::TooManyWorlds { worlds, limit } => write!(
                f,
                "possible-world enumeration would produce {worlds} worlds, more than the limit {limit}"
            ),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::Source(msg) => write!(f, "tuple source error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidProbability {
            value: 1.5,
            context: "tuple 7".into(),
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("tuple 7"));

        let e = Error::GroupProbabilityExceedsOne {
            group: 3,
            sum: 1.25,
        };
        assert!(e.to_string().contains("#3"));

        let e = Error::TooManyWorlds {
            worlds: 1 << 40,
            limit: 1 << 20,
        };
        assert!(e.to_string().contains("limit"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::DuplicateTupleId(1));
    }
}
