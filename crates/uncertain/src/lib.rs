//! # ttk-uncertain — the uncertain-relation data model substrate
//!
//! This crate implements the tuple-independent / disjoint ("x-relation") data
//! model used by *Top-k Queries on Uncertain Data: On Score Distribution and
//! Typical Answers* (Ge, Zdonik, Madden — SIGMOD 2009) and by the wider
//! probabilistic-database literature it builds on:
//!
//! * [`UncertainTuple`] — a tuple id, a ranking score, and a membership
//!   probability in `(0, 1]`.
//! * [`UncertainTable`] — a rank-ordered collection of uncertain tuples plus
//!   *mutual-exclusion (ME) groups*: at most one member of a group can exist
//!   in a possible world. Tie groups, lead tuples and lead-tuple regions
//!   (needed by the algorithms of `ttk-core`) are derived here.
//! * [`PossibleWorlds`] — exhaustive possible-world enumeration and the exact
//!   top-k score distribution, used as ground truth in tests and examples.
//! * [`ScoreDistribution`] — the PMF over top-k total scores, with the line
//!   coalescing approximation, histogram views at any bucket width, moments,
//!   quantiles and distance measures.
//! * [`TopkVector`] — a concrete k-tuple answer with its total score and
//!   probability.
//! * [`TupleSource`] — a rank-ordered streaming view of uncertain tuples
//!   (with ME-group metadata) that lets the `ttk-core` scan executor stop at
//!   the Theorem-2 bound without ever materializing a full table. Batched
//!   pulls move columnar [`TupleBlock`]s (structure-of-arrays id/score/
//!   probability/group columns) through the same seam, amortizing dispatch,
//!   channel, and framing overhead.
//! * [`MergeSource`] — a loser-tree k-way merge fusing per-shard rank-ordered
//!   sources into one stream, so a scan can span partitions (shard files,
//!   external-sort spill runs) while reading at most one look-ahead tuple
//!   per shard.
//! * [`TupleFeed`] — the consumer side of a bounded tuple channel: any
//!   source can run on its own producer thread (or process) while the
//!   consumer still pulls a plain [`TupleSource`]; [`PrefetchPolicy`] uses
//!   it to overlap per-shard I/O with the merge.
//! * [`wire`] — a framed binary codec for [`SourceTuple`] streams over any
//!   `Read`/`Write` (raw IEEE-754 bits, length-prefixed frames), so one
//!   scan can span processes and machines.
//! * [`ScanHandle`] — the uniform opened-input type: a single stream or a
//!   merged shard set (optionally prefetched per shard) behind one owned
//!   [`TupleSource`], produced by the `Dataset` abstraction in `ttk-core`
//!   and by custom dataset providers.
//!
//! The production algorithms that *compute* score distributions and
//! c-Typical-Topk answers live in the `ttk-core` crate; this crate is the
//! model they operate on.
//!
//! ## Example
//!
//! ```
//! use ttk_uncertain::{UncertainTable, worlds};
//!
//! // Two sensors disagree about one object (mutually exclusive readings),
//! // plus an independent reading from another object.
//! let table = UncertainTable::builder()
//!     .tuple(1u64, 10.0, 0.6)?
//!     .tuple(2u64, 8.0, 0.4)?
//!     .tuple(3u64, 9.0, 0.7)?
//!     .me_rule([1u64, 2u64])
//!     .build()?;
//!
//! let dist = worlds::exact_topk_score_distribution(&table, 2, 1_000)?;
//! assert!(dist.total_probability() <= 1.0);
//! # Ok::<(), ttk_uncertain::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod feed;
pub mod handle;
pub mod merge;
pub mod pmf;
pub mod probability;
pub mod source;
pub mod table;
pub mod tuple;
pub mod vector;
pub mod wire;
pub mod worlds;

pub use error::{Error, Result};
pub use feed::{FeedSender, PrefetchPolicy, TupleFeed};
pub use handle::ScanHandle;
pub use merge::{partition_round_robin, MergeSource};
pub use pmf::{
    scores_equal, CoalescePolicy, DistributionPoint, Histogram, ScoreColumns, ScoreDistribution,
    VectorWitness,
};
pub use probability::{Probability, PROBABILITY_EPSILON};
pub use source::{
    CountingSource, GroupKey, PullCounter, SourceTuple, TableSource, TupleBlock, TupleSource,
    VecSource,
};
pub use table::{UncertainTable, UncertainTableBuilder};
pub use tuple::{TupleId, UncertainTuple};
pub use vector::TopkVector;
pub use wire::{
    AppendAck, AppendRequest, ClientRequest, Hello, LeaseRegistry, Notification, PushdownQuery,
    QueryRequest, QueryResult, ShardAssignment, StoppedAt, SubscribeRequest, WireReader,
    WireScanStats, WireTypical, WireUTopk, WireWriter,
};
pub use worlds::{exact_topk_score_distribution, world_count, PossibleWorld, PossibleWorlds};
