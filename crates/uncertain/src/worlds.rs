//! Possible-world semantics: exhaustive enumeration for small tables.
//!
//! Every algorithm in the workspace is ultimately defined against possible
//! worlds (Figure 2 of the paper): a possible world picks at most one tuple
//! from each mutual-exclusion group, with the group's left-over probability
//! assigned to "no member appears", and includes independent tuples according
//! to their membership probabilities. Enumeration is exponential and is only
//! meant for ground-truth verification and for small didactic examples; the
//! production algorithms live in `ttk-core`.

use crate::error::{Error, Result};
use crate::pmf::ScoreDistribution;
use crate::table::UncertainTable;

/// One possible world: the set of tuple positions that appear (ascending,
/// i.e. rank order) and the probability of this world.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// Rank positions of the tuples present in this world, ascending.
    pub present: Vec<usize>,
    /// Probability of the world.
    pub probability: f64,
}

impl PossibleWorld {
    /// Total score of the top-k tuples of this world, or `None` when fewer
    /// than `k` tuples are present. Because `present` is in rank order and
    /// all top-k vectors of a world share the same total score (Theorem 1),
    /// this is simply the sum of the first `k` member scores.
    pub fn topk_score(&self, table: &UncertainTable, k: usize) -> Option<f64> {
        if k == 0 || self.present.len() < k {
            return None;
        }
        Some(
            self.present[..k]
                .iter()
                .map(|&p| table.tuple(p).score())
                .sum(),
        )
    }

    /// Enumerates every top-k tuple vector of this world (as rank positions,
    /// ascending). With an injective scoring function there is exactly one;
    /// with ties there are `C(|g|, m)` of them, where `g` is the tie group
    /// the vectors partially reach and `m` the number of tuples it
    /// contributes (Theorem 1). Returns an empty list when fewer than `k`
    /// tuples are present.
    pub fn topk_vectors(&self, table: &UncertainTable, k: usize) -> Vec<Vec<usize>> {
        if k == 0 || self.present.len() < k {
            return Vec::new();
        }
        let boundary_score = table.tuple(self.present[k - 1]).score();
        // Positions strictly above the boundary score are in every vector.
        let fixed: Vec<usize> = self
            .present
            .iter()
            .copied()
            .filter(|&p| table.tuple(p).score() > boundary_score)
            .collect();
        // Members of the boundary tie group present in this world.
        let tie: Vec<usize> = self
            .present
            .iter()
            .copied()
            .filter(|&p| table.tuple(p).score() == boundary_score)
            .collect();
        let m = k - fixed.len();
        debug_assert!(m <= tie.len());
        let mut out = Vec::new();
        let mut choice = vec![0usize; m];
        combinations(&tie, m, 0, 0, &mut choice, &mut |chosen| {
            let mut v = fixed.clone();
            v.extend_from_slice(chosen);
            v.sort_unstable();
            out.push(v);
        });
        out
    }
}

fn combinations(
    items: &[usize],
    m: usize,
    start: usize,
    depth: usize,
    buf: &mut [usize],
    emit: &mut impl FnMut(&[usize]),
) {
    if depth == m {
        emit(&buf[..m]);
        return;
    }
    for i in start..items.len() {
        if items.len() - i < m - depth {
            break;
        }
        buf[depth] = items[i];
        combinations(items, m, i + 1, depth + 1, buf, emit);
    }
}

/// Per-group alternatives used by the enumerator: either one member position
/// appears, or (when the group probabilities sum to less than one) no member
/// appears.
fn group_alternatives(table: &UncertainTable) -> Vec<Vec<(Option<usize>, f64)>> {
    (0..table.group_count())
        .map(|g| {
            let members = table.group_positions(g);
            let mut alts: Vec<(Option<usize>, f64)> = members
                .iter()
                .map(|&p| (Some(p), table.tuple(p).prob()))
                .collect();
            let none_prob = 1.0 - table.group_total_probability(g);
            if none_prob > 1e-12 {
                alts.push((None, none_prob));
            }
            alts
        })
        .collect()
}

/// Number of possible worlds of the table (saturating at `u128::MAX`).
pub fn world_count(table: &UncertainTable) -> u128 {
    group_alternatives(table)
        .iter()
        .fold(1u128, |acc, alts| acc.saturating_mul(alts.len() as u128))
}

/// Iterator over every possible world of a table.
///
/// Construction fails with [`Error::TooManyWorlds`] when the number of worlds
/// exceeds `limit`, protecting callers against accidental exponential blowups.
#[derive(Debug)]
pub struct PossibleWorlds {
    alternatives: Vec<Vec<(Option<usize>, f64)>>,
    /// Odometer over `alternatives`; `None` once exhausted.
    counters: Option<Vec<usize>>,
}

impl PossibleWorlds {
    /// Creates an enumerator, refusing to enumerate more than `limit` worlds.
    pub fn new(table: &UncertainTable, limit: u128) -> Result<Self> {
        let worlds = world_count(table);
        if worlds > limit {
            return Err(Error::TooManyWorlds { worlds, limit });
        }
        let alternatives = group_alternatives(table);
        let counters = Some(vec![0usize; alternatives.len()]);
        Ok(PossibleWorlds {
            alternatives,
            counters,
        })
    }
}

impl Iterator for PossibleWorlds {
    type Item = PossibleWorld;

    fn next(&mut self) -> Option<PossibleWorld> {
        let counters = self.counters.as_mut()?;
        // Materialize the current world.
        let mut present = Vec::new();
        let mut probability = 1.0;
        for (g, &choice) in counters.iter().enumerate() {
            let (pos, p) = self.alternatives[g][choice];
            probability *= p;
            if let Some(pos) = pos {
                present.push(pos);
            }
        }
        present.sort_unstable();
        // Advance the odometer.
        let mut done = true;
        for g in (0..counters.len()).rev() {
            counters[g] += 1;
            if counters[g] < self.alternatives[g].len() {
                done = false;
                break;
            }
            counters[g] = 0;
        }
        if done {
            self.counters = None;
        }
        Some(PossibleWorld {
            present,
            probability,
        })
    }
}

/// Computes the exact top-k total-score distribution by enumerating every
/// possible world. Worlds with fewer than `k` tuples contribute no mass, so
/// the result may sum to less than one.
///
/// This is the ground truth the efficient algorithms of `ttk-core` are tested
/// against; its cost is exponential in the number of ME groups.
pub fn exact_topk_score_distribution(
    table: &UncertainTable,
    k: usize,
    limit: u128,
) -> Result<ScoreDistribution> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut dist = ScoreDistribution::empty();
    for world in PossibleWorlds::new(table, limit)? {
        if world.probability <= 0.0 {
            continue;
        }
        if let Some(score) = world.topk_score(table, k) {
            dist.add_mass(score, world.probability, None);
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The soldier-monitoring table of Figure 1.
    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn soldier_table_has_eighteen_worlds() {
        let t = soldier_table();
        assert_eq!(world_count(&t), 18);
        let worlds: Vec<_> = PossibleWorlds::new(&t, 1 << 20).unwrap().collect();
        assert_eq!(worlds.len(), 18);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn world_limit_is_enforced() {
        let t = soldier_table();
        assert!(matches!(
            PossibleWorlds::new(&t, 10),
            Err(Error::TooManyWorlds {
                worlds: 18,
                limit: 10
            })
        ));
    }

    #[test]
    fn exact_top2_distribution_matches_paper_figures() {
        // Figure 3 facts: Pr(top-2 score = 235) = 0.12, the expected top-2
        // total score is 164.1, and Pr(score > 118) = 0.76.
        let t = soldier_table();
        let d = exact_topk_score_distribution(&t, 2, 1 << 20).unwrap();
        assert!((d.total_probability() - 1.0).abs() < 1e-9);
        let p235: f64 = d
            .pairs()
            .filter(|(s, _)| (*s - 235.0).abs() < 1e-9)
            .map(|(_, p)| p)
            .sum();
        assert!((p235 - 0.12).abs() < 1e-9);
        assert!((d.expected_score() - 164.1).abs() < 0.05);
        assert!((d.mass_above(118.0) - 0.76).abs() < 1e-9);
    }

    #[test]
    fn certain_tuple_always_present() {
        let t = soldier_table();
        let p5 = t.position(5u64).unwrap();
        for w in PossibleWorlds::new(&t, 1 << 20).unwrap() {
            assert!(w.present.contains(&p5));
        }
    }

    #[test]
    fn topk_score_none_when_too_few_tuples() {
        let t = UncertainTable::builder()
            .tuple(1u64, 5.0, 0.5)
            .unwrap()
            .tuple(2u64, 4.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        let w = PossibleWorld {
            present: vec![0],
            probability: 0.25,
        };
        assert_eq!(w.topk_score(&t, 2), None);
        assert_eq!(w.topk_score(&t, 0), None);
        assert_eq!(w.topk_score(&t, 1), Some(5.0));
    }

    #[test]
    fn topk_vectors_enumerates_tie_choices() {
        // Example 3 of the paper: three tie groups g1={a,b}, g2={c,d,e},
        // g3={f,g,h}; top-7 has C(3,2)=3 vectors.
        let t = UncertainTable::builder()
            .tuple(1u64, 30.0, 0.5)
            .unwrap()
            .tuple(2u64, 30.0, 0.5)
            .unwrap()
            .tuple(3u64, 20.0, 0.5)
            .unwrap()
            .tuple(4u64, 20.0, 0.5)
            .unwrap()
            .tuple(5u64, 20.0, 0.5)
            .unwrap()
            .tuple(6u64, 10.0, 0.5)
            .unwrap()
            .tuple(7u64, 10.0, 0.5)
            .unwrap()
            .tuple(8u64, 10.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        let w = PossibleWorld {
            present: (0..8).collect(),
            probability: 1.0,
        };
        let vectors = w.topk_vectors(&t, 7);
        assert_eq!(vectors.len(), 3);
        for v in &vectors {
            assert_eq!(v.len(), 7);
            // Every vector contains g1 and g2 entirely.
            for p in 0..5 {
                assert!(v.contains(&p));
            }
        }
        // Injective case: exactly one vector.
        assert_eq!(w.topk_vectors(&t, 5).len(), 1);
        // Too few tuples: none.
        let small = PossibleWorld {
            present: vec![0, 1],
            probability: 1.0,
        };
        assert!(small.topk_vectors(&t, 7).is_empty());
    }

    #[test]
    fn exact_distribution_rejects_k_zero() {
        let t = soldier_table();
        assert!(exact_topk_score_distribution(&t, 0, 1 << 20).is_err());
    }

    #[test]
    fn independent_two_tuple_table_worlds() {
        let t = UncertainTable::builder()
            .tuple(1u64, 5.0, 0.5)
            .unwrap()
            .tuple(2u64, 4.0, 0.25)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(world_count(&t), 4);
        let d = exact_topk_score_distribution(&t, 1, 100).unwrap();
        // Top-1: score 5 with prob 0.5; score 4 with prob 0.5*0.25.
        assert!((d.cdf(4.5) - 0.125).abs() < 1e-12);
        assert!((d.total_probability() - 0.625).abs() < 1e-12);
    }
}
