//! Rank-ordered tuple sources: the streaming input abstraction of the
//! workspace.
//!
//! The paper's algorithms all consume uncertain tuples *in rank order* (score
//! descending, probability descending, id ascending — §3.4) and, by
//! Theorem 2, only ever need a *prefix* of that order. A [`TupleSource`] is a
//! pull-based stream of rank-ordered tuples carrying their mutual-exclusion
//! metadata as a [`GroupKey`]; the scan executor in `ttk-core` pulls from a
//! source tuple by tuple and stops the moment the Theorem-2 gate closes, so
//! no algorithm ever materializes (or even reads) the tuples past the bound.
//!
//! Three adapters live here:
//!
//! * [`TableSource`] — borrows an in-memory [`UncertainTable`];
//! * [`VecSource`] — owns a batch of [`SourceTuple`]s (sorted into rank order
//!   at construction), the adapter of choice for generators and file imports;
//! * [`CountingSource`] — wraps any source and counts the tuples pulled,
//!   used to *assert* that consumers respect the scan bound.

use crate::error::{Error, Result};
use crate::table::UncertainTable;
use crate::tuple::UncertainTuple;

/// Mutual-exclusion metadata of a streamed tuple.
///
/// Keys are assigned by the source; any two tuples of one stream carrying the
/// same `Shared` key are mutually exclusive (at most one of them exists in a
/// possible world). Keys have no meaning across streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// The tuple is independent of every other tuple of the stream.
    Independent,
    /// The tuple belongs to the mutual-exclusion group with this key.
    Shared(u64),
}

/// One streamed tuple: the payload plus its ME-group key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceTuple {
    /// The uncertain tuple (id, score, membership probability).
    pub tuple: UncertainTuple,
    /// The tuple's mutual-exclusion group.
    pub group: GroupKey,
}

impl SourceTuple {
    /// A tuple independent of all others.
    pub fn independent(tuple: UncertainTuple) -> Self {
        SourceTuple {
            tuple,
            group: GroupKey::Independent,
        }
    }

    /// A tuple belonging to the ME group `key`.
    pub fn grouped(tuple: UncertainTuple, key: u64) -> Self {
        SourceTuple {
            tuple,
            group: GroupKey::Shared(key),
        }
    }
}

/// A columnar batch of rank-ordered tuples (structure of arrays).
///
/// Blocks are the amortized unit of the batched pull path: one
/// [`TupleSource::next_block`] call moves up to a whole block through a
/// virtual dispatch, a channel send, or a wire frame, where the scalar path
/// pays that overhead per tuple. The payload is stored as parallel columns —
/// ids, scores, membership probabilities, and packed group keys (a shared/
/// independent flag column plus a raw-key column) — so consumers that only
/// need one column (the DP convolutions, the gate's score/probability feed)
/// walk contiguous `f64` memory.
///
/// A block preserves rank order and group keys exactly: draining a source
/// block-wise yields the bit-identical tuple sequence of the scalar path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleBlock {
    ids: Vec<u64>,
    scores: Vec<f64>,
    probabilities: Vec<f64>,
    /// 1 where the tuple belongs to a shared ME group, 0 where independent.
    group_flags: Vec<u8>,
    /// The raw shared-group key; 0 (ignored) where the flag is 0.
    group_keys: Vec<u64>,
}

impl TupleBlock {
    /// An empty block with room for `capacity` tuples per column.
    pub fn with_capacity(capacity: usize) -> Self {
        TupleBlock {
            ids: Vec::with_capacity(capacity),
            scores: Vec::with_capacity(capacity),
            probabilities: Vec::with_capacity(capacity),
            group_flags: Vec::with_capacity(capacity),
            group_keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of tuples in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the block holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one already-validated tuple to the columns.
    #[inline]
    pub fn push(&mut self, t: &SourceTuple) {
        self.ids.push(t.tuple.id().raw());
        self.scores.push(t.tuple.score());
        self.probabilities.push(t.tuple.prob());
        match t.group {
            GroupKey::Independent => {
                self.group_flags.push(0);
                self.group_keys.push(0);
            }
            GroupKey::Shared(key) => {
                self.group_flags.push(1);
                self.group_keys.push(key);
            }
        }
    }

    /// Appends one tuple from raw column values, validating the score and
    /// probability exactly as [`UncertainTuple::new`] does — the entry point
    /// for decoded wire frames and spill-run lines.
    ///
    /// # Errors
    ///
    /// Whatever [`UncertainTuple::new`] returns for invalid values.
    pub fn try_push_raw(
        &mut self,
        id: u64,
        score: f64,
        probability: f64,
        group: GroupKey,
    ) -> Result<()> {
        let tuple = UncertainTuple::new(id, score, probability)?;
        self.push(&SourceTuple { tuple, group });
        Ok(())
    }

    /// The tuple at position `i` (panics when out of bounds).
    #[inline]
    pub fn get(&self, i: usize) -> SourceTuple {
        SourceTuple {
            tuple: UncertainTuple::from_validated_parts(
                self.ids[i],
                self.scores[i],
                self.probabilities[i],
            ),
            group: self.group(i),
        }
    }

    /// The group key of the tuple at position `i` (panics when out of
    /// bounds).
    #[inline]
    pub fn group(&self, i: usize) -> GroupKey {
        if self.group_flags[i] == 0 {
            GroupKey::Independent
        } else {
            GroupKey::Shared(self.group_keys[i])
        }
    }

    /// The id column.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The score column.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The membership-probability column.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The shared-group flag column (1 = shared, 0 = independent).
    #[inline]
    pub fn group_flags(&self) -> &[u8] {
        &self.group_flags
    }

    /// The raw shared-group key column (entries where the flag is 0 are
    /// meaningless padding).
    #[inline]
    pub fn group_keys(&self) -> &[u64] {
        &self.group_keys
    }

    /// Appends the tuples `other[start..end]` to this block (a column-wise
    /// `memcpy`; panics when the range is out of bounds).
    pub fn push_range(&mut self, other: &TupleBlock, start: usize, end: usize) {
        self.ids.extend_from_slice(&other.ids[start..end]);
        self.scores.extend_from_slice(&other.scores[start..end]);
        self.probabilities
            .extend_from_slice(&other.probabilities[start..end]);
        self.group_flags
            .extend_from_slice(&other.group_flags[start..end]);
        self.group_keys
            .extend_from_slice(&other.group_keys[start..end]);
    }

    /// Iterates the block's tuples in order.
    pub fn iter(&self) -> impl Iterator<Item = SourceTuple> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Empties the block, keeping its column allocations.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.scores.clear();
        self.probabilities.clear();
        self.group_flags.clear();
        self.group_keys.clear();
    }
}

/// A pull-based stream of uncertain tuples in rank order.
///
/// Implementations must yield tuples in the workspace rank order (score
/// descending, then probability descending, then id ascending); consumers may
/// validate this and fail otherwise. Sources are single-pass: once a tuple
/// has been pulled it is gone, which is exactly what lets adapters stream
/// from disk or from a network without retaining history. The scalar
/// [`next_tuple`](TupleSource::next_tuple) and batched
/// [`next_block`](TupleSource::next_block) pulls may be mixed freely; both
/// walk the same underlying stream.
pub trait TupleSource {
    /// Pulls the next tuple, or `Ok(None)` at the end of the stream.
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>>;

    /// Pulls up to `max` tuples (at least one; `max` is clamped to ≥ 1) as
    /// one columnar [`TupleBlock`], or `Ok(None)` at the end of the stream.
    ///
    /// The default implementation assembles the block tuple-by-tuple from
    /// [`next_tuple`](TupleSource::next_tuple), so every source supports
    /// block pulls; adapters with a cheaper bulk path (tables, spill runs,
    /// feeds, wire readers, merges) override it. A returned block may be
    /// shorter than `max` without implying end-of-stream — only `Ok(None)`
    /// does that.
    ///
    /// # Errors
    ///
    /// On a mid-block failure an implementation may either surface the error
    /// immediately (dropping the partially assembled block, as the default
    /// implementation does) or deliver the complete partial block first and
    /// surface the error on the next pull.
    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let max = max.max(1);
        let mut block = TupleBlock::with_capacity(match self.size_hint() {
            Some(hint) => hint.min(max),
            None => max,
        });
        while block.len() < max {
            match self.next_tuple()? {
                Some(t) => block.push(&t),
                None => break,
            }
        }
        if block.is_empty() {
            Ok(None)
        } else {
            Ok(Some(block))
        }
    }

    /// An optional hint of how many tuples remain (used to presize buffers).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<T: TupleSource + ?Sized> TupleSource for Box<T> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        (**self).next_tuple()
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        (**self).next_block(max)
    }

    fn size_hint(&self) -> Option<usize> {
        (**self).size_hint()
    }
}

impl<T: TupleSource + ?Sized> TupleSource for &mut T {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        (**self).next_tuple()
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        (**self).next_block(max)
    }

    fn size_hint(&self) -> Option<usize> {
        (**self).size_hint()
    }
}

/// A [`TupleSource`] borrowing an in-memory [`UncertainTable`].
#[derive(Debug, Clone)]
pub struct TableSource<'a> {
    table: &'a UncertainTable,
    next: usize,
}

impl<'a> TableSource<'a> {
    /// Streams the table's tuples in rank order.
    pub fn new(table: &'a UncertainTable) -> Self {
        TableSource { table, next: 0 }
    }
}

impl TupleSource for TableSource<'_> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.next >= self.table.len() {
            return Ok(None);
        }
        let pos = self.next;
        self.next += 1;
        let tuple = *self.table.tuple(pos);
        let group = if self.table.group_members(pos).len() > 1 {
            GroupKey::Shared(self.table.group_index(pos) as u64)
        } else {
            GroupKey::Independent
        };
        Ok(Some(SourceTuple { tuple, group }))
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let end = self.table.len().min(self.next + max.max(1));
        if self.next >= end {
            return Ok(None);
        }
        let mut block = TupleBlock::with_capacity(end - self.next);
        for pos in self.next..end {
            let tuple = *self.table.tuple(pos);
            let group = if self.table.group_members(pos).len() > 1 {
                GroupKey::Shared(self.table.group_index(pos) as u64)
            } else {
                GroupKey::Independent
            };
            block.push(&SourceTuple { tuple, group });
        }
        self.next = end;
        Ok(Some(block))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.table.len() - self.next)
    }
}

/// A [`TupleSource`] owning its tuples, sorted into rank order at
/// construction.
///
/// This is the adapter generators and importers use: produce
/// `(tuple, group key)` pairs in any order, hand them to [`VecSource::new`],
/// and stream. Only the `(id, score, probability, group)` quadruple is
/// retained — the originating rows can be dropped, which is what keeps
/// file-backed scans memory-lean.
#[derive(Debug, Clone, Default)]
pub struct VecSource {
    tuples: Vec<SourceTuple>,
    next: usize,
}

impl VecSource {
    /// Builds a source from tuples in any order; they are sorted into rank
    /// order here.
    pub fn new(mut tuples: Vec<SourceTuple>) -> Self {
        tuples.sort_by_key(|t| t.tuple.rank_key());
        VecSource { tuples, next: 0 }
    }

    /// Number of tuples not yet pulled.
    pub fn remaining(&self) -> usize {
        self.tuples.len() - self.next
    }

    /// Rewinds the source to the beginning of the stream.
    pub fn rewind(&mut self) {
        self.next = 0;
    }
}

impl TupleSource for VecSource {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.next >= self.tuples.len() {
            return Ok(None);
        }
        let t = self.tuples[self.next];
        self.next += 1;
        Ok(Some(t))
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let end = self.tuples.len().min(self.next + max.max(1));
        if self.next >= end {
            return Ok(None);
        }
        let mut block = TupleBlock::with_capacity(end - self.next);
        for t in &self.tuples[self.next..end] {
            block.push(t);
        }
        self.next = end;
        Ok(Some(block))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining())
    }
}

impl UncertainTable {
    /// Copies the table into an owning [`VecSource`] (the tuples are `Copy`,
    /// so this is cheap; use [`TableSource`] to avoid even that copy).
    pub fn to_source(&self) -> VecSource {
        let tuples = (0..self.len())
            .map(|pos| SourceTuple {
                tuple: *self.tuple(pos),
                group: if self.group_members(pos).len() > 1 {
                    GroupKey::Shared(self.group_index(pos) as u64)
                } else {
                    GroupKey::Independent
                },
            })
            .collect();
        // Already rank ordered; VecSource's sort is a stable no-op.
        VecSource::new(tuples)
    }
}

/// A shareable pull counter: a cloneable handle onto the number of tuples a
/// [`CountingSource`] has served.
///
/// Sharded scans hand their per-shard [`CountingSource`]s to a
/// [`MergeSource`](crate::merge::MergeSource), which takes ownership — so the
/// counts must be observable from *outside* the source. Cloning the handle
/// (via [`CountingSource::counter`]) before the source is consumed keeps the
/// per-shard read-bound assertion (≤ 1 tuple past each shard's contribution
/// to the Theorem-2 prefix) testable.
#[derive(Debug, Clone, Default)]
pub struct PullCounter(std::sync::Arc<std::sync::atomic::AtomicUsize>);

impl PullCounter {
    /// Number of tuples pulled so far.
    pub fn get(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn increment(&self) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn add(&self, n: usize) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
}

/// A [`TupleSource`] decorator counting how many tuples the consumer pulled.
///
/// The streaming executor promises to read at most one tuple past the
/// Theorem-2 prefix (the single look-ahead needed to observe a tie-group
/// boundary); wrapping a source in a `CountingSource` turns that promise into
/// a testable assertion. Under a sharded scan each shard gets its own
/// `CountingSource`, and the shared [`PullCounter`] handle keeps the count
/// observable after the merge takes ownership of the source.
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    counter: PullCounter,
}

impl<S: TupleSource> CountingSource<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            counter: PullCounter::default(),
        }
    }

    /// Number of tuples pulled from the underlying source so far.
    pub fn pulled(&self) -> usize {
        self.counter.get()
    }

    /// A cloneable handle onto the pull count, usable after this source has
    /// been moved into a merge or an executor.
    pub fn counter(&self) -> PullCounter {
        self.counter.clone()
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TupleSource> TupleSource for CountingSource<S> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        let t = self.inner.next_tuple()?;
        if t.is_some() {
            self.counter.increment();
        }
        Ok(t)
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let block = self.inner.next_block(max)?;
        if let Some(block) = &block {
            self.counter.add(block.len());
        }
        Ok(block)
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

impl UncertainTable {
    /// Builds a table from tuples **already in rank order** with per-tuple
    /// group keys — the constructor the streaming scan uses to assemble a
    /// Theorem-2 prefix without re-sorting or re-deriving rules.
    ///
    /// Tuples sharing a [`GroupKey::Shared`] key form one mutual-exclusion
    /// group; [`GroupKey::Independent`] tuples form singleton groups. The
    /// resulting table is indistinguishable from building the same prefix via
    /// [`UncertainTable::new`] + [`UncertainTable::truncate`]: positions,
    /// group memberships and all derived quantities agree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `keys.len() != tuples.len()`
    /// or the tuples are not in rank order, [`Error::DuplicateTupleId`] on a
    /// repeated id, and [`Error::GroupProbabilityExceedsOne`] when a shared
    /// group's probabilities sum to more than one.
    pub fn from_rank_ordered(
        tuples: Vec<UncertainTuple>,
        keys: &[crate::source::GroupKey],
    ) -> Result<Self> {
        use std::collections::HashMap;

        if tuples.len() != keys.len() {
            return Err(Error::InvalidParameter(format!(
                "{} tuples but {} group keys",
                tuples.len(),
                keys.len()
            )));
        }
        for pair in tuples.windows(2) {
            if pair[0].rank_key() > pair[1].rank_key() {
                return Err(Error::InvalidParameter(format!(
                    "tuples are not in rank order: {} precedes {}",
                    pair[0].id(),
                    pair[1].id()
                )));
            }
        }
        let mut id_to_pos = HashMap::with_capacity(tuples.len());
        for (pos, t) in tuples.iter().enumerate() {
            if id_to_pos.insert(t.id().raw(), pos).is_some() {
                return Err(Error::DuplicateTupleId(t.id().raw()));
            }
        }

        // Shared groups in order of first appearance, then singletons.
        let mut group_of = vec![usize::MAX; tuples.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut slot_of_key: HashMap<u64, usize> = HashMap::new();
        for (pos, key) in keys.iter().enumerate() {
            if let crate::source::GroupKey::Shared(k) = key {
                let slot = *slot_of_key.entry(*k).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[slot].push(pos);
                group_of[pos] = slot;
            }
        }
        for (slot, members) in groups.iter().enumerate() {
            let sum: f64 = members.iter().map(|&p| tuples[p].prob()).sum();
            if sum > 1.0 + 1e-6 {
                return Err(Error::GroupProbabilityExceedsOne { group: slot, sum });
            }
        }
        for (pos, slot) in group_of.iter_mut().enumerate() {
            if *slot == usize::MAX {
                *slot = groups.len();
                groups.push(vec![pos]);
            }
        }
        Ok(UncertainTable::from_parts(
            tuples, group_of, groups, id_to_pos,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    fn drain(source: &mut dyn TupleSource) -> Vec<SourceTuple> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple().unwrap() {
            out.push(t);
        }
        out
    }

    #[test]
    fn table_source_streams_in_rank_order_with_groups() {
        let table = soldier_table();
        let mut source = TableSource::new(&table);
        assert_eq!(source.size_hint(), Some(7));
        let tuples = drain(&mut source);
        let ids: Vec<u64> = tuples.iter().map(|t| t.tuple.id().raw()).collect();
        assert_eq!(ids, vec![7, 3, 4, 2, 6, 5, 1]);
        // T7, T4, T2 share one group; T3, T6 share another; T5, T1 independent.
        assert_eq!(tuples[0].group, tuples[2].group);
        assert_eq!(tuples[0].group, tuples[3].group);
        assert_eq!(tuples[1].group, tuples[4].group);
        assert_ne!(tuples[0].group, tuples[1].group);
        assert_eq!(tuples[5].group, GroupKey::Independent);
        assert_eq!(tuples[6].group, GroupKey::Independent);
        assert_eq!(source.size_hint(), Some(0));
        assert!(source.next_tuple().unwrap().is_none());
    }

    #[test]
    fn vec_source_sorts_into_rank_order() {
        let mut source = VecSource::new(vec![
            SourceTuple::independent(UncertainTuple::new(1u64, 5.0, 0.5).unwrap()),
            SourceTuple::grouped(UncertainTuple::new(2u64, 9.0, 0.4).unwrap(), 7),
            SourceTuple::independent(UncertainTuple::new(3u64, 9.0, 0.8).unwrap()),
        ]);
        let tuples = drain(&mut source);
        let ids: Vec<u64> = tuples.iter().map(|t| t.tuple.id().raw()).collect();
        // Score desc, then probability desc.
        assert_eq!(ids, vec![3, 2, 1]);
        source.rewind();
        assert_eq!(source.remaining(), 3);
    }

    #[test]
    fn to_source_round_trips_through_from_rank_ordered() {
        let table = soldier_table();
        let mut source = table.to_source();
        let streamed = drain(&mut source);
        let tuples: Vec<UncertainTuple> = streamed.iter().map(|t| t.tuple).collect();
        let keys: Vec<GroupKey> = streamed.iter().map(|t| t.group).collect();
        let rebuilt = UncertainTable::from_rank_ordered(tuples, &keys).unwrap();
        assert_eq!(rebuilt.len(), table.len());
        for pos in 0..table.len() {
            assert_eq!(rebuilt.tuple(pos), table.tuple(pos));
            assert_eq!(rebuilt.is_lead(pos), table.is_lead(pos));
            let a: Vec<usize> = rebuilt.group_members(pos).to_vec();
            let b: Vec<usize> = table.group_members(pos).to_vec();
            assert_eq!(a, b, "group members at position {pos}");
        }
        assert_eq!(rebuilt.lead_regions(), table.lead_regions());
        assert_eq!(rebuilt.tie_groups(), table.tie_groups());
    }

    #[test]
    fn from_rank_ordered_validates_input() {
        let a = UncertainTuple::new(1u64, 5.0, 0.5).unwrap();
        let b = UncertainTuple::new(2u64, 9.0, 0.5).unwrap();
        // Out of order.
        let err = UncertainTable::from_rank_ordered(
            vec![a, b],
            &[GroupKey::Independent, GroupKey::Independent],
        );
        assert!(matches!(err, Err(Error::InvalidParameter(_))));
        // Key count mismatch.
        let err = UncertainTable::from_rank_ordered(vec![b, a], &[GroupKey::Independent]);
        assert!(matches!(err, Err(Error::InvalidParameter(_))));
        // Duplicate ids.
        let dup = UncertainTuple::new(2u64, 5.0, 0.5).unwrap();
        let err = UncertainTable::from_rank_ordered(
            vec![b, dup],
            &[GroupKey::Independent, GroupKey::Independent],
        );
        assert!(matches!(err, Err(Error::DuplicateTupleId(2))));
        // Overweight shared group.
        let c = UncertainTuple::new(3u64, 9.0, 0.4).unwrap();
        let d = UncertainTuple::new(4u64, 5.0, 0.7).unwrap();
        let err = UncertainTable::from_rank_ordered(
            vec![c, d],
            &[GroupKey::Shared(1), GroupKey::Shared(1)],
        );
        assert!(matches!(err, Err(Error::GroupProbabilityExceedsOne { .. })));
    }

    #[test]
    fn counting_source_tracks_pulls() {
        let table = soldier_table();
        let mut source = CountingSource::new(TableSource::new(&table));
        assert_eq!(source.pulled(), 0);
        source.next_tuple().unwrap();
        source.next_tuple().unwrap();
        assert_eq!(source.pulled(), 2);
        drain(&mut source);
        assert_eq!(source.pulled(), 7);
        // Pulling at the end does not inflate the count.
        assert!(source.next_tuple().unwrap().is_none());
        assert_eq!(source.pulled(), 7);
    }
}
