//! Uncertain tables: rank-ordered uncertain tuples plus mutual-exclusion rules.

use std::collections::HashMap;
use std::ops::Range;

use crate::error::{Error, Result};
use crate::tuple::{TupleId, UncertainTuple};

/// An uncertain table in the tuple-independent / disjoint (x-relation) model.
///
/// The table owns a set of [`UncertainTuple`]s and a partition of those tuples
/// into *mutual-exclusion (ME) groups*: at most one tuple of a group may
/// appear in any possible world, and the probabilities of a group's members
/// sum to at most one (the remaining mass is the probability that no member
/// appears). Tuples that are not mentioned in any ME rule form singleton
/// groups and are independent of everything else.
///
/// After construction the tuples are stored in *rank order*: descending by
/// score, then descending by probability, then ascending by id. This is the
/// order required by every algorithm in the workspace (the probability
/// component implements the tie-handling rule of §3.4 of the paper).
/// Positions (`usize` indexes into that order) are the working currency of
/// the algorithms; [`TupleId`]s map results back to application data.
#[derive(Debug, Clone)]
pub struct UncertainTable {
    tuples: Vec<UncertainTuple>,
    /// Position → index of the ME group that contains it.
    group_of: Vec<usize>,
    /// ME group index → member positions in ascending (rank) order.
    groups: Vec<Vec<usize>>,
    /// Tuple id → position.
    id_to_pos: HashMap<u64, usize>,
}

/// Builder for [`UncertainTable`].
#[derive(Debug, Default, Clone)]
pub struct UncertainTableBuilder {
    tuples: Vec<UncertainTuple>,
    rules: Vec<Vec<TupleId>>,
}

impl UncertainTableBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one uncertain tuple.
    pub fn tuple(mut self, id: impl Into<TupleId>, score: f64, probability: f64) -> Result<Self> {
        self.tuples
            .push(UncertainTuple::new(id, score, probability)?);
        Ok(self)
    }

    /// Adds an already-constructed tuple.
    pub fn push(&mut self, tuple: UncertainTuple) -> &mut Self {
        self.tuples.push(tuple);
        self
    }

    /// Adds many tuples at once.
    pub fn tuples<I: IntoIterator<Item = UncertainTuple>>(mut self, iter: I) -> Self {
        self.tuples.extend(iter);
        self
    }

    /// Declares a mutual-exclusion rule over the given tuple ids: at most one
    /// of them may exist in a possible world.
    pub fn me_rule<I, T>(mut self, ids: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<TupleId>,
    {
        self.rules.push(ids.into_iter().map(Into::into).collect());
        self
    }

    /// Declares a mutual-exclusion rule (by-reference variant).
    pub fn add_me_rule<I, T>(&mut self, ids: I) -> &mut Self
    where
        I: IntoIterator<Item = T>,
        T: Into<TupleId>,
    {
        self.rules.push(ids.into_iter().map(Into::into).collect());
        self
    }

    /// Validates the declarations and builds the table.
    pub fn build(self) -> Result<UncertainTable> {
        UncertainTable::new(self.tuples, self.rules)
    }
}

impl UncertainTable {
    /// Returns a new builder.
    pub fn builder() -> UncertainTableBuilder {
        UncertainTableBuilder::new()
    }

    /// Builds a table of fully independent tuples (every tuple is its own ME
    /// group).
    pub fn from_tuples<I: IntoIterator<Item = UncertainTuple>>(tuples: I) -> Result<Self> {
        Self::new(tuples.into_iter().collect(), Vec::new())
    }

    /// Builds a table from tuples and mutual-exclusion rules (each rule lists
    /// the tuple ids of one ME group).
    pub fn new(mut tuples: Vec<UncertainTuple>, rules: Vec<Vec<TupleId>>) -> Result<Self> {
        // Detect duplicate ids before sorting so the error is deterministic.
        {
            let mut seen = HashMap::with_capacity(tuples.len());
            for t in &tuples {
                if seen.insert(t.id().raw(), ()).is_some() {
                    return Err(Error::DuplicateTupleId(t.id().raw()));
                }
            }
        }

        tuples.sort_by_key(|t| t.rank_key());

        let mut id_to_pos = HashMap::with_capacity(tuples.len());
        for (pos, t) in tuples.iter().enumerate() {
            id_to_pos.insert(t.id().raw(), pos);
        }

        // Assign ME groups. `usize::MAX` marks "not yet grouped".
        let mut group_of = vec![usize::MAX; tuples.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (rule_idx, rule) in rules.iter().enumerate() {
            let mut members = Vec::with_capacity(rule.len());
            for id in rule {
                let pos = *id_to_pos
                    .get(&id.raw())
                    .ok_or(Error::UnknownTupleId(id.raw()))?;
                if group_of[pos] != usize::MAX {
                    return Err(Error::TupleInMultipleGroups(id.raw()));
                }
                group_of[pos] = groups.len();
                members.push(pos);
            }
            if members.is_empty() {
                continue;
            }
            members.sort_unstable();
            let sum: f64 = members.iter().map(|&p| tuples[p].prob()).sum();
            if sum > 1.0 + 1e-6 {
                return Err(Error::GroupProbabilityExceedsOne {
                    group: rule_idx,
                    sum,
                });
            }
            groups.push(members);
        }
        // Singleton groups for everything not mentioned in a rule.
        for (pos, slot) in group_of.iter_mut().enumerate() {
            if *slot == usize::MAX {
                *slot = groups.len();
                groups.push(vec![pos]);
            }
        }

        Ok(UncertainTable {
            tuples,
            group_of,
            groups,
            id_to_pos,
        })
    }

    /// Assembles a table whose invariants (rank order, consistent group
    /// indexes, id map) have already been established by the caller — used by
    /// the streaming-prefix constructor in [`crate::source`].
    pub(crate) fn from_parts(
        tuples: Vec<UncertainTuple>,
        group_of: Vec<usize>,
        groups: Vec<Vec<usize>>,
        id_to_pos: HashMap<u64, usize>,
    ) -> Self {
        debug_assert_eq!(tuples.len(), group_of.len());
        UncertainTable {
            tuples,
            group_of,
            groups,
            id_to_pos,
        }
    }

    /// Number of tuples in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the table has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in rank order (score desc, probability desc, id asc).
    #[inline]
    pub fn tuples(&self) -> &[UncertainTuple] {
        &self.tuples
    }

    /// The tuple at rank position `pos`.
    #[inline]
    pub fn tuple(&self, pos: usize) -> &UncertainTuple {
        &self.tuples[pos]
    }

    /// The rank position of the tuple with the given id, if present.
    pub fn position(&self, id: impl Into<TupleId>) -> Option<usize> {
        self.id_to_pos.get(&id.into().raw()).copied()
    }

    /// Number of mutual-exclusion groups (singletons included).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Index of the ME group containing the tuple at `pos`.
    #[inline]
    pub fn group_index(&self, pos: usize) -> usize {
        self.group_of[pos]
    }

    /// Member positions (rank order) of group `group`.
    #[inline]
    pub fn group_positions(&self, group: usize) -> &[usize] {
        &self.groups[group]
    }

    /// Member positions of the group containing the tuple at `pos`.
    #[inline]
    pub fn group_members(&self, pos: usize) -> &[usize] {
        &self.groups[self.group_of[pos]]
    }

    /// Total membership probability of the group `group`.
    pub fn group_total_probability(&self, group: usize) -> f64 {
        self.groups[group]
            .iter()
            .map(|&p| self.tuples[p].prob())
            .sum()
    }

    /// Number of tuples that are mutually exclusive with at least one other
    /// tuple (the quantity `m` in the O(kmn) complexity of §3.3.3).
    pub fn me_tuple_count(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.len() > 1)
            .map(|g| g.len())
            .sum()
    }

    /// Fraction of tuples that are mutually exclusive with another tuple.
    pub fn me_tuple_portion(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.me_tuple_count() as f64 / self.len() as f64
        }
    }

    /// True when the tuple at `pos` is a *lead tuple*: the highest-ranked
    /// member of its ME group (singleton tuples are always lead tuples).
    #[inline]
    pub fn is_lead(&self, pos: usize) -> bool {
        self.group_members(pos)[0] == pos
    }

    /// Maximal contiguous runs of lead tuples, in rank order (the *lead tuple
    /// regions* of §3.3.3). Every position of the table belongs either to
    /// exactly one returned region or to no region (non-lead tuples).
    pub fn lead_regions(&self) -> Vec<Range<usize>> {
        let mut regions = Vec::new();
        let mut start = None;
        for pos in 0..self.len() {
            if self.is_lead(pos) {
                if start.is_none() {
                    start = Some(pos);
                }
            } else if let Some(s) = start.take() {
                regions.push(s..pos);
            }
        }
        if let Some(s) = start {
            regions.push(s..self.len());
        }
        regions
    }

    /// Maximal runs of equal-score tuples, in rank order (*tie groups*,
    /// §2.3). Tuples with a unique score form a tie group of size one.
    pub fn tie_groups(&self) -> Vec<Range<usize>> {
        let mut groups = Vec::new();
        let mut start = 0;
        for pos in 1..=self.len() {
            if pos == self.len() || self.tuples[pos].score() != self.tuples[start].score() {
                groups.push(start..pos);
                start = pos;
            }
        }
        groups
    }

    /// End position (exclusive) of the tie group containing `pos`.
    pub fn tie_group_end(&self, pos: usize) -> usize {
        let score = self.tuples[pos].score();
        let mut end = pos + 1;
        while end < self.len() && self.tuples[end].score() == score {
            end += 1;
        }
        end
    }

    /// The quantity μ of Theorem 2 for the tuple at `pos`: the sum of the
    /// membership probabilities of all tuples ranked higher than `pos`,
    /// excluding the members of `pos`'s own ME group.
    pub fn mu(&self, pos: usize) -> f64 {
        let own_group = self.group_of[pos];
        self.tuples[..pos]
            .iter()
            .enumerate()
            .filter(|(p, _)| self.group_of[*p] != own_group)
            .map(|(_, t)| t.prob())
            .sum()
    }

    /// Sum of the scores of the `k` highest-ranked tuples (the maximum
    /// possible top-k total score, `s_max` of §3.2.1). Returns `None` when
    /// the table has fewer than `k` tuples.
    pub fn max_topk_score(&self, k: usize) -> Option<f64> {
        if k == 0 || k > self.len() {
            return None;
        }
        Some(self.tuples[..k].iter().map(|t| t.score()).sum())
    }

    /// Sum of the scores of the `k` lowest-ranked tuples (the minimum
    /// possible top-k total score, `s_min` of §3.2.1). Returns `None` when
    /// the table has fewer than `k` tuples.
    pub fn min_topk_score(&self, k: usize) -> Option<f64> {
        if k == 0 || k > self.len() {
            return None;
        }
        Some(
            self.tuples[self.len() - k..]
                .iter()
                .map(|t| t.score())
                .sum(),
        )
    }

    /// Returns a new table containing only the `n` highest-ranked tuples.
    /// ME groups are truncated accordingly (members beyond the prefix are
    /// dropped), mirroring the truncation step of §3.3.2.
    pub fn truncate(&self, n: usize) -> UncertainTable {
        let n = n.min(self.len());
        let tuples: Vec<UncertainTuple> = self.tuples[..n].to_vec();
        let rules: Vec<Vec<TupleId>> = self
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .filter(|&&p| p < n)
                    .map(|&p| self.tuples[p].id())
                    .collect::<Vec<_>>()
            })
            .filter(|g: &Vec<TupleId>| g.len() > 1)
            .collect();
        UncertainTable::new(tuples, rules)
            .expect("truncating a valid table always yields a valid table")
    }

    /// Returns the tuple ids at the given positions, in the same order.
    pub fn ids_at(&self, positions: &[usize]) -> Vec<TupleId> {
        positions.iter().map(|&p| self.tuples[p].id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soldier_table() -> UncertainTable {
        // The table of Figure 1 of the paper.
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn tuples_are_rank_ordered() {
        let t = soldier_table();
        let ids: Vec<u64> = t.tuples().iter().map(|x| x.id().raw()).collect();
        // Scores: T7=125, T3=110, T4=80, T2=60, T6=58, T5=56, T1=49.
        assert_eq!(ids, vec![7, 3, 4, 2, 6, 5, 1]);
        assert_eq!(t.position(7u64), Some(0));
        assert_eq!(t.position(1u64), Some(6));
        assert_eq!(t.position(99u64), None);
    }

    #[test]
    fn groups_are_tracked_by_position() {
        let t = soldier_table();
        let p7 = t.position(7u64).unwrap();
        let p2 = t.position(2u64).unwrap();
        let p4 = t.position(4u64).unwrap();
        assert_eq!(t.group_index(p7), t.group_index(p2));
        assert_eq!(t.group_index(p7), t.group_index(p4));
        assert_eq!(t.group_members(p7).len(), 3);
        let p5 = t.position(5u64).unwrap();
        assert_eq!(t.group_members(p5), &[p5]);
        assert_eq!(t.me_tuple_count(), 5);
        assert!((t.me_tuple_portion() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn group_probability_sums_validated() {
        let r = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.7)
            .unwrap()
            .tuple(2u64, 9.0, 0.6)
            .unwrap()
            .me_rule([1u64, 2])
            .build();
        assert!(matches!(r, Err(Error::GroupProbabilityExceedsOne { .. })));
    }

    #[test]
    fn duplicate_and_unknown_ids_rejected() {
        let r = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.7)
            .unwrap()
            .tuple(1u64, 9.0, 0.2)
            .unwrap()
            .build();
        assert!(matches!(r, Err(Error::DuplicateTupleId(1))));

        let r = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.7)
            .unwrap()
            .me_rule([1u64, 5])
            .build();
        assert!(matches!(r, Err(Error::UnknownTupleId(5))));

        let r = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.2)
            .unwrap()
            .tuple(2u64, 9.0, 0.2)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .me_rule([1u64, 2])
            .me_rule([2u64, 3])
            .build();
        assert!(matches!(r, Err(Error::TupleInMultipleGroups(2))));
    }

    #[test]
    fn lead_tuples_and_regions() {
        let t = soldier_table();
        // Rank order: T7 T3 T4 T2 T6 T5 T1.
        // Groups: {T7,T4,T2} lead=T7; {T3,T6} lead=T3; singletons T5, T1.
        let lead: Vec<bool> = (0..t.len()).map(|p| t.is_lead(p)).collect();
        assert_eq!(lead, vec![true, true, false, false, false, true, true]);
        assert_eq!(t.lead_regions(), vec![0..2, 5..7]);
    }

    #[test]
    fn tie_groups_detected() {
        let t = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 8.0, 0.3)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .tuple(4u64, 8.0, 0.1)
            .unwrap()
            .tuple(5u64, 7.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.tie_groups(), vec![0..1, 1..4, 4..5]);
        assert_eq!(t.tie_group_end(1), 4);
        assert_eq!(t.tie_group_end(0), 1);
    }

    #[test]
    fn mu_excludes_own_group() {
        let t = soldier_table();
        // For T2 (position 3), higher ranked are T7, T3, T4; T7 and T4 share
        // T2's group so only T3 (0.4) counts.
        let p2 = t.position(2u64).unwrap();
        assert!((t.mu(p2) - 0.4).abs() < 1e-12);
        // For T6 (position 4), higher ranked are T7, T3, T4, T2; T3 shares
        // T6's group, so 0.3 + 0.3 + 0.4 = 1.0.
        let p6 = t.position(6u64).unwrap();
        assert!((t.mu(p6) - 1.0).abs() < 1e-12);
        assert_eq!(t.mu(0), 0.0);
    }

    #[test]
    fn score_span_helpers() {
        let t = soldier_table();
        assert_eq!(t.max_topk_score(2), Some(235.0));
        assert_eq!(t.min_topk_score(2), Some(105.0));
        assert_eq!(t.max_topk_score(0), None);
        assert_eq!(t.max_topk_score(8), None);
    }

    #[test]
    fn truncation_preserves_prefix_and_groups() {
        let t = soldier_table();
        let tr = t.truncate(4); // keeps T7 T3 T4 T2
        assert_eq!(tr.len(), 4);
        let p7 = tr.position(7u64).unwrap();
        assert_eq!(tr.group_members(p7).len(), 3); // T7, T4, T2 all kept
        let tr2 = t.truncate(2); // keeps T7 T3 only
        assert_eq!(tr2.len(), 2);
        assert_eq!(tr2.group_members(0), &[0]); // T7 group truncated to itself
                                                // Truncating beyond the length is a no-op.
        assert_eq!(t.truncate(100).len(), 7);
    }

    #[test]
    fn from_tuples_builds_independent_table() {
        let t = UncertainTable::from_tuples(vec![
            UncertainTuple::new(1u64, 5.0, 0.5).unwrap(),
            UncertainTuple::new(2u64, 3.0, 0.5).unwrap(),
        ])
        .unwrap();
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.me_tuple_count(), 0);
        let regions = t.lead_regions();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0], 0..2);
    }
}
