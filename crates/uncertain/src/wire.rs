//! The wire layer: a framed binary codec for [`SourceTuple`] streams.
//!
//! A shard served from another process (or machine) is just a rank-ordered
//! tuple stream, so the wire format is deliberately minimal: a blocking,
//! **length-prefixed** frame protocol over any [`Read`]/[`Write`] pair —
//! a `TcpStream`, a Unix pipe, an in-memory buffer in tests. Scores and
//! probabilities travel as raw IEEE-754 bits (the same encoding discipline
//! as the spill-run files of `ttk-pdb`), so a stream decoded from the wire
//! is **bit-identical** to the stream the server pulled locally.
//!
//! Every frame is `u32` little-endian body length followed by the body; the
//! body's first byte is the frame kind:
//!
//! | kind | meaning | payload |
//! |---|---|---|
//! | `0` | end of stream | none |
//! | `1` | tuple | id `u64`, score bits `u64`, prob bits `u64`, group flag `u8` (+ key `u64` when shared) |
//! | `2` | producer error | UTF-8 message |
//! | `3` | hello (first frame) | version `u8`, size hint `u64` (`u64::MAX` = unknown) |
//!
//! All integers are little-endian. A [`WireWriter`] emits the hello frame at
//! construction and exactly one terminal frame (`end` or `error`); a
//! [`WireReader`] implements [`TupleSource`], decoding tuples until the
//! terminal frame and surfacing *every* abnormality — I/O failure, corrupt
//! frame, connection lost before the end frame, server-side error — as
//! [`Error::Source`], never as a silently truncated stream.

use std::io::{Read, Write};

use crate::error::{Error, Result};
use crate::source::{GroupKey, SourceTuple, TupleSource};
use crate::tuple::UncertainTuple;

/// Protocol version emitted in the hello frame.
const WIRE_VERSION: u8 = 1;

/// Frame kinds (first byte of every frame body).
const FRAME_END: u8 = 0;
const FRAME_TUPLE: u8 = 1;
const FRAME_ERROR: u8 = 2;
const FRAME_HELLO: u8 = 3;

/// Largest frame body a reader will accept (an error message, at most; tuple
/// frames are 34 bytes). Guards against garbage length prefixes allocating
/// gigabytes.
const MAX_FRAME_BODY: usize = 64 * 1024;

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Source(format!("wire {context}: {e}"))
}

/// The sending half of the codec: frames a rank-ordered tuple stream onto
/// any blocking [`Write`].
///
/// Construction writes the hello frame (protocol version plus an optional
/// tuple-count hint the receiving planner can surface). Call
/// [`write_tuple`](WireWriter::write_tuple) per tuple, then exactly one of
/// [`finish`](WireWriter::finish) or [`fail`](WireWriter::fail);
/// [`serve`](WireWriter::serve) drives all three from a [`TupleSource`].
#[derive(Debug)]
pub struct WireWriter<W: Write> {
    writer: W,
}

impl<W: Write> WireWriter<W> {
    /// Wraps `writer` and sends the hello frame carrying `size_hint`.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] when the hello frame cannot be written.
    pub fn new(writer: W, size_hint: Option<usize>) -> Result<Self> {
        let mut body = Vec::with_capacity(10);
        body.push(FRAME_HELLO);
        body.push(WIRE_VERSION);
        let hint = size_hint.map(|n| n as u64).unwrap_or(u64::MAX);
        body.extend_from_slice(&hint.to_le_bytes());
        let mut this = WireWriter { writer };
        this.frame(&body)?;
        Ok(this)
    }

    fn frame(&mut self, body: &[u8]) -> Result<()> {
        let len = body.len() as u32;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|_| self.writer.write_all(body))
            .map_err(|e| io_err("write", e))
    }

    /// Frames one tuple.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn write_tuple(&mut self, tuple: &SourceTuple) -> Result<()> {
        let mut body = Vec::with_capacity(34);
        body.push(FRAME_TUPLE);
        body.extend_from_slice(&tuple.tuple.id().raw().to_le_bytes());
        body.extend_from_slice(&tuple.tuple.score().to_bits().to_le_bytes());
        body.extend_from_slice(&tuple.tuple.prob().to_bits().to_le_bytes());
        match tuple.group {
            GroupKey::Independent => body.push(0),
            GroupKey::Shared(key) => {
                body.push(1);
                body.extend_from_slice(&key.to_le_bytes());
            }
        }
        self.frame(&body)
    }

    /// Sends the end-of-stream frame and flushes.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn finish(mut self) -> Result<()> {
        self.frame(&[FRAME_END])?;
        self.writer.flush().map_err(|e| io_err("flush", e))
    }

    /// Sends an error frame (delivered to the peer as [`Error::Source`])
    /// and flushes.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn fail(mut self, message: &str) -> Result<()> {
        let mut body = Vec::with_capacity(1 + message.len());
        body.push(FRAME_ERROR);
        body.extend_from_slice(message.as_bytes());
        self.frame(&body)?;
        self.writer.flush().map_err(|e| io_err("flush", e))
    }

    /// Pulls `source` to exhaustion and frames every tuple, terminating the
    /// stream correctly on both outcomes: a clean end sends the end frame, a
    /// source failure is forwarded as an error frame (and returned).
    ///
    /// Returns the number of tuples served.
    ///
    /// # Errors
    ///
    /// The source's error (after forwarding it to the peer), or
    /// [`Error::Source`] on I/O failure.
    pub fn serve(mut self, source: &mut dyn TupleSource) -> Result<usize> {
        let mut served = 0usize;
        loop {
            match source.next_tuple() {
                Ok(Some(tuple)) => {
                    self.write_tuple(&tuple)?;
                    served += 1;
                }
                Ok(None) => {
                    self.finish()?;
                    return Ok(served);
                }
                Err(error) => {
                    self.fail(&error.to_string())?;
                    return Err(error);
                }
            }
        }
    }
}

/// The receiving half of the codec: a [`TupleSource`] decoding frames from
/// any blocking [`Read`].
///
/// The hello frame is read lazily on the first pull, so constructing a
/// reader never blocks. Wrap network streams in a `BufReader` — the decoder
/// issues small reads.
#[derive(Debug)]
pub struct WireReader<R: Read> {
    reader: R,
    hello_seen: bool,
    done: bool,
    hint: Option<usize>,
}

impl<R: Read> WireReader<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> Self {
        WireReader {
            reader,
            hello_seen: false,
            done: false,
            hint: None,
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut len = [0u8; 4];
        self.reader
            .read_exact(&mut len)
            .map_err(|e| io_err("read (stream ended before the end frame?)", e))?;
        let len = u32::from_le_bytes(len) as usize;
        if len == 0 || len > MAX_FRAME_BODY {
            return Err(Error::Source(format!(
                "wire frame of {len} bytes is outside the accepted range"
            )));
        }
        let mut body = vec![0u8; len];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| io_err("read (truncated frame)", e))?;
        Ok(body)
    }

    fn expect_hello(&mut self) -> Result<()> {
        let body = self.read_frame()?;
        if body.first() != Some(&FRAME_HELLO) || body.len() != 10 {
            return Err(Error::Source(
                "wire stream does not start with a hello frame".into(),
            ));
        }
        if body[1] != WIRE_VERSION {
            return Err(Error::Source(format!(
                "unsupported wire protocol version {}",
                body[1]
            )));
        }
        let hint = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
        self.hint = (hint != u64::MAX).then_some(hint as usize);
        self.hello_seen = true;
        Ok(())
    }

    fn decode_tuple(body: &[u8]) -> Result<SourceTuple> {
        let corrupt = || Error::Source("corrupt wire tuple frame".into());
        if body.len() != 26 && body.len() != 34 {
            return Err(corrupt());
        }
        let id = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
        let score = f64::from_bits(u64::from_le_bytes(body[9..17].try_into().expect("8 bytes")));
        let prob = f64::from_bits(u64::from_le_bytes(
            body[17..25].try_into().expect("8 bytes"),
        ));
        let tuple = UncertainTuple::new(id, score, prob)?;
        match (body[25], body.len()) {
            (0, 26) => Ok(SourceTuple::independent(tuple)),
            (1, 34) => Ok(SourceTuple::grouped(
                tuple,
                u64::from_le_bytes(body[26..34].try_into().expect("8 bytes")),
            )),
            _ => Err(corrupt()),
        }
    }
}

impl<R: Read> TupleSource for WireReader<R> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if self.done {
            return Ok(None);
        }
        if !self.hello_seen {
            if let Err(e) = self.expect_hello() {
                self.done = true;
                return Err(e);
            }
        }
        let body = match self.read_frame() {
            Ok(body) => body,
            Err(e) => {
                self.done = true;
                return Err(e);
            }
        };
        match body[0] {
            FRAME_TUPLE => match Self::decode_tuple(&body) {
                Ok(tuple) => {
                    if let Some(hint) = &mut self.hint {
                        *hint = hint.saturating_sub(1);
                    }
                    Ok(Some(tuple))
                }
                Err(e) => {
                    self.done = true;
                    Err(e)
                }
            },
            FRAME_END => {
                self.done = true;
                Ok(None)
            }
            FRAME_ERROR => {
                self.done = true;
                Err(Error::Source(format!(
                    "remote source failed: {}",
                    String::from_utf8_lossy(&body[1..])
                )))
            }
            other => {
                self.done = true;
                Err(Error::Source(format!("unknown wire frame kind {other}")))
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        if self.done {
            return Some(0);
        }
        // Unknown until the hello frame has been decoded.
        self.hint.filter(|_| self.hello_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    fn tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| {
                let t = UncertainTuple::new(i, (n - i) as f64 + 0.125, 0.5).unwrap();
                if i % 3 == 0 {
                    SourceTuple::grouped(t, i / 3)
                } else {
                    SourceTuple::independent(t)
                }
            })
            .collect()
    }

    fn drain(source: &mut dyn TupleSource) -> Result<Vec<SourceTuple>> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let all = tuples(50);
        let mut buf = Vec::new();
        let writer = WireWriter::new(&mut buf, Some(all.len())).unwrap();
        let served = writer.serve(&mut VecSource::new(all.clone())).unwrap();
        assert_eq!(served, 50);
        let mut reader = WireReader::new(buf.as_slice());
        assert_eq!(reader.size_hint(), None, "hint unknown before hello");
        let decoded = drain(&mut reader).unwrap();
        assert_eq!(decoded, all);
        assert_eq!(reader.size_hint(), Some(0));
        assert!(reader.next_tuple().unwrap().is_none());
    }

    #[test]
    fn size_hint_counts_down_after_hello() {
        let all = tuples(4);
        let mut buf = Vec::new();
        WireWriter::new(&mut buf, Some(4))
            .unwrap()
            .serve(&mut VecSource::new(all))
            .unwrap();
        let mut reader = WireReader::new(buf.as_slice());
        reader.next_tuple().unwrap().unwrap();
        assert_eq!(reader.size_hint(), Some(3));
    }

    #[test]
    fn server_side_error_is_forwarded_as_source_error() {
        struct Fails;
        impl TupleSource for Fails {
            fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
                Err(Error::Source("backing store gone".into()))
            }
        }
        let mut buf = Vec::new();
        let err = WireWriter::new(&mut buf, None)
            .unwrap()
            .serve(&mut Fails)
            .unwrap_err();
        assert!(matches!(err, Error::Source(_)));
        let err = drain(&mut WireReader::new(buf.as_slice())).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("backing store gone")),
            "{err}"
        );
    }

    #[test]
    fn truncation_and_corruption_surface_as_errors() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf, None)
            .unwrap()
            .serve(&mut VecSource::new(tuples(5)))
            .unwrap();

        // Cut the stream before the end frame: every prefix fails, none hang
        // and none pretend the stream ended cleanly.
        for cut in [3usize, 11, buf.len() - 2] {
            let err = drain(&mut WireReader::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, Error::Source(_)), "cut at {cut}");
        }

        // A garbage length prefix is rejected instead of allocated.
        let mut garbage = buf.clone();
        garbage[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            drain(&mut WireReader::new(garbage.as_slice())),
            Err(Error::Source(_))
        ));

        // A stream that does not open with hello is rejected.
        let headless = &buf[14..]; // skip the 4+10 byte hello frame
        assert!(matches!(
            drain(&mut WireReader::new(headless)),
            Err(Error::Source(_))
        ));
    }
}
