//! The wire layer: a framed binary codec for [`SourceTuple`] streams.
//!
//! A shard served from another process (or machine) is just a rank-ordered
//! tuple stream, so the wire format is deliberately minimal: a blocking,
//! **length-prefixed** frame protocol over any [`Read`]/[`Write`] pair —
//! a `TcpStream`, a Unix pipe, an in-memory buffer in tests. Scores and
//! probabilities travel as raw IEEE-754 bits (the same encoding discipline
//! as the spill-run files of `ttk-pdb`), so a stream decoded from the wire
//! is **bit-identical** to the stream the server pulled locally.
//!
//! Every frame is `u32` little-endian body length followed by the body; the
//! body's first byte is the frame kind:
//!
//! | kind | meaning | payload |
//! |---|---|---|
//! | `0` | end of stream | none |
//! | `1` | tuple | id `u64`, score bits `u64`, prob bits `u64`, group flag `u8` (+ key `u64` when shared) |
//! | `2` | producer error | UTF-8 message |
//! | `3` | hello (first frame) | version `u8`, size hint `u64` (`u64::MAX` = unknown); v2 appends id base `u64`, namespace length `u16`, namespace bytes; v3 appends an assignment-present flag `u8` and, when set, the v2 assignment fields |
//! | `5` | coordinator register | version `u8`, row count `u64`, label length `u16`, label bytes |
//! | `6` | coordinator lease | version `u8`, id base `u64`, namespace length `u16`, namespace bytes |
//! | `7` | query announcement (client→server, v3) | k `u64` (`0` = stream everything), pτ bits `u64` |
//! | `8` | bound update (client→server, v3) | accumulated merge-side mass bits `u64` |
//! | `9` | stopped-at trailer (server→client, v3, precedes `end`) | rows scanned `u64`, tuples shipped `u64`, gate-limited flag `u8` |
//! | `10` | query request (client→server, v4/v5) | version `u8`, k `u64`, pτ bits `u64`, typical count `u64`, max lines `u64`, algorithm `u8`, coalesce `u8`, flags `u8`, dataset length `u16`, dataset bytes |
//! | `11` | query result header (server→client, v4/v5) | version `u8`, flags `u8`, scan depth `u64`, phase times `u64`×2, point count `u64`, expected distance bits `u64`, typical answers, optional U-Top-k; v5 appends dataset epoch `u64` and cache generation `u64` |
//! | `12` | result chunk (server→client, v4/v5, precedes `end`) | point count `u16`, encoded distribution points |
//! | `13` | append request header (client→server, v5) | version `u8`, flags `u8` (bit 0 = seal), row count `u64`, dataset length `u16`, dataset bytes |
//! | `14` | append row chunk (client→server, v5, precedes `end`) | row count `u16`, encoded rows (tuple layout sans kind byte) |
//! | `15` | append acknowledgement (server→client, v5) | version `u8`, flags `u8` (bit 0 = sealed now), epoch `u64`, staged rows `u64`, sealed rows `u64` |
//! | `16` | subscribe request (client→server, v5) | the v5 query request fields, then max pushes `u64`, dataset length `u16`, dataset bytes |
//! | `17` | notification (server→client, v5, precedes a result stream) | version `u8`, epoch `u64`, answer hash `u64` |
//! | `18` | busy / retry-after (server→client, v5) | version `u8`, retry-after millis `u64` |
//! | `19` | block-capable query announcement (client→server) | the kind-7 fields, then max tuples per block frame `u16` |
//! | `20` | tuple block (server→client, negotiated via kind 19) | tuple count `u16`, encoded rows (tuple layout sans kind byte) |
//!
//! All integers are little-endian. A [`WireWriter`] emits the hello frame at
//! construction and exactly one terminal frame (`end` or `error`); a
//! [`WireReader`] implements [`TupleSource`], decoding tuples until the
//! terminal frame and surfacing *every* abnormality — I/O failure, corrupt
//! frame, connection lost before the end frame, server-side error — as
//! [`Error::Source`], never as a silently truncated stream.
//!
//! # Protocol versions
//!
//! **v1** is the original one-way stream: the server speaks first and the
//! hello frame carries only the version byte and a size hint. **v2** adds
//! coordination: the hello may also carry a [`ShardAssignment`] — the tuple-id
//! base and group-key namespace label the serving process imported its shard
//! under — so the consumer can check that independently-served shards really
//! partition one relation instead of trusting operator-passed `--id-base`
//! flags.
//!
//! Through v2 the stream is strictly one-way (the server speaks, the client
//! only reads), so the hello version is chosen by the **server's
//! configuration**: [`WireWriter::new`] emits the v1 layout every reader
//! since protocol v1 decodes, and a server emits the extended v2 layout
//! ([`WireWriter::with_assignment`]) only when it actually holds an
//! assignment to advertise (a coordinator lease or an operator-pinned
//! namespace). A v2 reader accepts both layouts; a v1 client keeps decoding
//! any server that has no assignment to announce.
//!
//! **v3** adds *scan-gate pushdown*: a client that wants the server to stop
//! at a conservative per-shard Theorem-2 bound speaks **first**, sending a
//! query frame ([`write_query`]) right after connecting. A v3 server waits a
//! short grace window for that frame; when it arrives the server answers
//! with a v3 hello, streams only the gated prefix, reads periodic
//! bound-update frames ([`write_bound`]) off the same socket to tighten its
//! gate with the merge-side accumulated mass, and closes the stream with a
//! stopped-at trailer ([`StoppedAt`]) before the end frame. When no query
//! frame arrives inside the grace window the server serves the full v1/v2
//! replay exactly as before — so old clients keep working against v3
//! servers, and a v3 client whose query frame lands on an old server simply
//! gets the v1/v2 hello back and silently disables pushdown. (The old
//! server never drains the query frame, which turns its close into a
//! connection reset — harmless, because the kernel delivers the queued
//! in-order stream before surfacing the reset and the reader stops at the
//! end frame.)
//!
//! **v4** adds *query serving*: instead of replaying a shard, a server holds
//! whole datasets resident and answers `(dataset, algorithm, k, pτ)` queries.
//! The client again speaks first ([`write_query_request`]); the server
//! answers with a result header frame, streams the score distribution in
//! size-bounded chunks, and terminates with the usual end frame
//! ([`write_query_result`] / [`read_query_result`]). The exchange replaces
//! the hello entirely — there is no v4 hello layout — and every score and
//! probability still travels as raw IEEE-754 bits, so a decoded answer is
//! bit-identical to the one the server computed. A query-serving daemon that
//! receives anything other than a request frame answers with an error frame
//! and closes, so pre-v4 peers fail cleanly instead of hanging; a v4 client
//! pointed at a shard-replay server gets a clean decode error off the
//! server's hello in the same way.
//!
//! **v5** adds *live datasets*: a query-serving daemon may hold append-only
//! datasets that grow under epoch-numbered snapshots, so the client-speaks-
//! first exchange gains two new request kinds next to the query request. An
//! **append** ([`write_append_request`]) ships scored rows in size-bounded
//! chunks (the tuple-frame encoding, minus the kind byte) with an optional
//! seal trigger, and is answered by a single acknowledgement frame carrying
//! the dataset's post-append epoch ([`AppendAck`]). A **subscription**
//! ([`write_subscribe`]) registers a standing query: the server pushes a
//! notification frame ([`Notification`]) followed by a complete v5 result
//! stream each time the answer distribution actually shifts, and closes the
//! subscription with a bare end frame. Query requests and result headers are
//! version-stamped: a v5 result appends the dataset epoch and the server's
//! cache generation, while a v4 client keeps receiving the byte-identical v4
//! layout — the server echoes the version the client spoke. Finally, the
//! **busy** frame ([`write_busy`]) is a cheap admission-control refusal: a
//! daemon whose worker handoff would block answers it in place of any reply
//! and closes, and clients decode it as a retryable (never semantic) error.
//!
//! **Columnar block framing** rides on the same client-speaks-first
//! negotiation as v3–v5: a client that can consume [`TupleBlock`]s announces
//! its query with the kind-19 frame ([`write_query_blocks`]) — the kind-7
//! fields plus the largest per-frame tuple count it wants — and a
//! block-aware server then ships the gated prefix as size-bounded kind-20
//! tuple-block frames instead of one frame per tuple. The rows inside a
//! block frame use the tuple-frame layout minus the kind byte (identical to
//! the append-chunk row encoding), so a decoded block is bit-identical to
//! the per-tuple stream. Compatibility needs no capability exchange: an old
//! v3–v5 server *strictly* rejects the unknown 19-byte query frame, the
//! client sees the failed hello and redials speaking the plain kind-7 query,
//! and everything downstream proceeds byte-identically to today. A new
//! server answering a kind-7 client never emits a block frame.
//!
//! The register/lease frames are the coordinator handshake: a shard server
//! connects to the coordinator, frames its row count and a display label
//! ([`write_register`]), and receives the `(id base, namespace)` lease the
//! coordinator allotted from its [`LeaseRegistry`] ([`read_lease`]).

use std::fmt;
use std::io::{Read, Write};

use crate::error::{Error, Result};
use crate::pmf::{DistributionPoint, VectorWitness};
use crate::source::{GroupKey, SourceTuple, TupleBlock, TupleSource};
use crate::tuple::{TupleId, UncertainTuple};
use crate::vector::TopkVector;

/// The v2 protocol version byte: the hello layout carrying a
/// [`ShardAssignment`], and the version the coordinator frames speak.
pub const WIRE_VERSION: u8 = 2;

/// The v3 protocol version byte: the query-mode (scan-gate pushdown) hello.
pub const WIRE_VERSION_V3: u8 = 3;

/// The v4 protocol version byte: the query-serving request/result exchange.
/// v4 defines no hello layout — the request and result frames carry their own
/// version byte and replace the hello entirely, so hello decoding still
/// rejects version bytes past v3.
pub const WIRE_VERSION_V4: u8 = 4;

/// The v5 protocol version byte: live datasets — append/seal requests,
/// standing-query subscriptions, epoch-stamped result headers, and the
/// busy/retry-after admission frame. Like v4 it defines no hello layout.
pub const WIRE_VERSION_V5: u8 = 5;

/// The v6 protocol version byte: the serving-lifecycle admin plane
/// (stats/register/unregister/reload/compact against a resident-dataset
/// daemon) and the live-scan result tail (segment count + last compaction
/// epoch after the v5 epoch/generation fields). Like v4/v5 it defines no
/// hello layout, and it stays client-speaks-first: v5-and-older peers never
/// see a v6 byte unless they asked for one.
pub const WIRE_VERSION_V6: u8 = 6;

/// The original protocol version: a 10-byte hello, no assignment metadata.
const WIRE_VERSION_V1: u8 = 1;

/// Frame kinds (first byte of every frame body).
const FRAME_END: u8 = 0;
const FRAME_TUPLE: u8 = 1;
const FRAME_ERROR: u8 = 2;
const FRAME_HELLO: u8 = 3;
// Frame kind 4 is reserved (an abandoned client-hello design; never shipped).
const FRAME_REGISTER: u8 = 5;
const FRAME_LEASE: u8 = 6;
const FRAME_QUERY: u8 = 7;
const FRAME_BOUND: u8 = 8;
const FRAME_STOPPED: u8 = 9;
const FRAME_QUERY_REQUEST: u8 = 10;
const FRAME_QUERY_RESULT: u8 = 11;
const FRAME_RESULT_CHUNK: u8 = 12;
const FRAME_APPEND: u8 = 13;
const FRAME_APPEND_ROWS: u8 = 14;
const FRAME_APPEND_ACK: u8 = 15;
const FRAME_SUBSCRIBE: u8 = 16;
const FRAME_NOTIFY: u8 = 17;
const FRAME_BUSY: u8 = 18;
const FRAME_QUERY_BLOCKS: u8 = 19;
const FRAME_TUPLE_BLOCK: u8 = 20;
const FRAME_ADMIN: u8 = 21;
const FRAME_ADMIN_RESPONSE: u8 = 22;

/// Largest frame body a reader will accept (an error message, at most; tuple
/// frames are 34 bytes and block frames pack rows up to this bound). Guards
/// against garbage length prefixes allocating gigabytes.
const MAX_FRAME_BODY: usize = 64 * 1024;

/// Most rows one tuple-block frame can carry: the frame body bound divided
/// by the worst-case 33-byte row encoding (plus the 3-byte chunk header).
const MAX_BLOCK_ROWS: usize = (MAX_FRAME_BODY - CHUNK_HEADER) / 33;

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Source(format!("wire {context}: {e}"))
}

/// The coordination metadata a v2 hello (or a coordinator lease) carries:
/// where the served shard's rows live in the relation's shared tuple-id
/// space, and which group-key namespace the shard was imported under.
///
/// Two shards whose servers report the **same namespace** were scored with
/// the same group-key discipline (hashed labels under one coordinator), so a
/// consumer may merge them as one relation; shards reporting **different**
/// namespaces were never meant to be merged and the consumer should refuse.
/// An empty namespace means the server asserted nothing (an operator-managed
/// `--id-base` setup), which consumers accept for backwards compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Tuple id of the shard's first row in the shared id space.
    pub id_base: u64,
    /// Group-key namespace label all shards of the relation share.
    pub namespace: String,
}

/// Everything a decoded hello frame carried.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Protocol version the server spoke (1, 2 or 3).
    pub version: u8,
    /// Tuple-count hint, when the server knew it.
    pub size_hint: Option<usize>,
    /// The shard's id-base/namespace assignment (v2/v3 hellos only).
    pub assignment: Option<ShardAssignment>,
}

/// Reads one length-prefixed frame body from `reader`.
fn read_frame_from(reader: &mut impl Read) -> Result<Vec<u8>> {
    let mut len = [0u8; 4];
    reader
        .read_exact(&mut len)
        .map_err(|e| io_err("read (stream ended before the end frame?)", e))?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME_BODY {
        return Err(Error::Source(format!(
            "wire frame of {len} bytes is outside the accepted range"
        )));
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| io_err("read (truncated frame)", e))?;
    Ok(body)
}

/// Frames `body` onto `writer`.
fn write_frame_to(writer: &mut impl Write, body: &[u8]) -> Result<()> {
    let len = body.len() as u32;
    writer
        .write_all(&len.to_le_bytes())
        .and_then(|_| writer.write_all(body))
        .map_err(|e| io_err("write", e))
}

/// Longest label/namespace accepted in a frame. Bounded well under
/// [`MAX_FRAME_BODY`] (with margin for the fixed fields) so a frame that
/// writes successfully is always readable — an over-long label must fail
/// here, where the error can name it, not as a corrupt-frame error on every
/// peer.
const MAX_LABEL: usize = MAX_FRAME_BODY - 64;

/// Appends a length-prefixed UTF-8 label (`u16` length) to a frame body.
fn push_label(body: &mut Vec<u8>, label: &str) -> Result<()> {
    if label.len() > MAX_LABEL {
        return Err(Error::Source(format!(
            "wire label of {} bytes exceeds the {MAX_LABEL}-byte limit",
            label.len()
        )));
    }
    body.extend_from_slice(&(label.len() as u16).to_le_bytes());
    body.extend_from_slice(label.as_bytes());
    Ok(())
}

/// Decodes the `u16`-length-prefixed label starting at `body[at..]`,
/// requiring it to end exactly at the frame boundary.
fn pop_label(body: &[u8], at: usize, what: &str) -> Result<String> {
    let corrupt = || Error::Source(format!("corrupt wire {what} frame"));
    if body.len() < at + 2 {
        return Err(corrupt());
    }
    let len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
    if body.len() != at + 2 + len {
        return Err(corrupt());
    }
    String::from_utf8(body[at + 2..].to_vec()).map_err(|_| corrupt())
}

/// Registers a shard server with a coordinator: frames the shard's row count
/// and a display label, then flushes. The coordinator answers with a lease
/// frame ([`read_lease`]).
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or an over-long label.
pub fn write_register(writer: &mut impl Write, rows: u64, label: &str) -> Result<()> {
    let mut body = Vec::with_capacity(12 + label.len());
    body.push(FRAME_REGISTER);
    body.push(WIRE_VERSION);
    body.extend_from_slice(&rows.to_le_bytes());
    push_label(&mut body, label)?;
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Coordinator-side decode of a [`write_register`] frame; returns the
/// registering shard's `(row count, label)`.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or a malformed frame.
pub fn read_register(reader: &mut impl Read) -> Result<(u64, String)> {
    let body = read_frame_from(reader)?;
    let corrupt = || Error::Source("corrupt wire register frame".into());
    if body.first() != Some(&FRAME_REGISTER) || body.len() < 12 {
        return Err(corrupt());
    }
    if body[1] < 2 {
        return Err(Error::Source(format!(
            "register frame speaks protocol version {} (coordination needs v2)",
            body[1]
        )));
    }
    let rows = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    Ok((rows, pop_label(&body, 10, "register")?))
}

/// Coordinator-side reply to a registration: frames the allotted lease and
/// flushes.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or an over-long namespace.
pub fn write_lease(writer: &mut impl Write, lease: &ShardAssignment) -> Result<()> {
    let mut body = Vec::with_capacity(12 + lease.namespace.len());
    body.push(FRAME_LEASE);
    body.push(WIRE_VERSION);
    body.extend_from_slice(&lease.id_base.to_le_bytes());
    push_label(&mut body, &lease.namespace)?;
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Shard-server-side decode of the coordinator's [`write_lease`] reply.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or a malformed frame.
pub fn read_lease(reader: &mut impl Read) -> Result<ShardAssignment> {
    let body = read_frame_from(reader)?;
    let corrupt = || Error::Source("corrupt wire lease frame".into());
    if body.first() != Some(&FRAME_LEASE) || body.len() < 12 {
        return Err(corrupt());
    }
    let id_base = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    Ok(ShardAssignment {
        id_base,
        namespace: pop_label(&body, 10, "lease")?,
    })
}

/// The query announcement a v3 pushdown client sends before reading the
/// hello: the top-k parameters the server needs to evaluate the per-shard
/// Theorem-2 stopping bound during replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushdownQuery {
    /// Number of answers requested; `0` asks the server to stream everything
    /// (a full-replay query that still wants the v3 trailer accounting).
    pub k: u64,
    /// The paper's pτ stopping parameter (ignored when `k == 0`).
    pub p_tau: f64,
}

/// Frames a v3 query announcement and flushes. The pushdown client sends
/// this immediately after connecting, **before** reading the hello.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_query(writer: &mut impl Write, query: &PushdownQuery) -> Result<()> {
    let mut body = Vec::with_capacity(17);
    body.push(FRAME_QUERY);
    body.extend_from_slice(&query.k.to_le_bytes());
    body.extend_from_slice(&query.p_tau.to_bits().to_le_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Server-side decode of a [`write_query`] frame.
///
/// This is the strict pre-block decoder: it accepts only the 17-byte v3
/// layout, which is exactly why a block-capable client that guessed wrong
/// about its peer gets an immediate error (and redials speaking plain v3)
/// instead of a silent misinterpretation. New servers use
/// [`read_query_negotiated`].
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, or (for `k > 0`) a
/// pτ outside `(0, 1)`.
pub fn read_query(reader: &mut impl Read) -> Result<PushdownQuery> {
    let body = read_frame_from(reader)?;
    if body.first() != Some(&FRAME_QUERY) || body.len() != 17 {
        return Err(Error::Source("corrupt wire query frame".into()));
    }
    decode_query_fields(&body)
}

/// Decodes the shared `(k, p_tau)` fields at `body[1..17]`.
fn decode_query_fields(body: &[u8]) -> Result<PushdownQuery> {
    let k = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
    let p_tau = f64::from_bits(u64::from_le_bytes(body[9..17].try_into().expect("8 bytes")));
    if k > 0 && !(p_tau > 0.0 && p_tau < 1.0) {
        return Err(Error::Source(format!(
            "wire query frame carries p_tau {p_tau} outside (0, 1)"
        )));
    }
    Ok(PushdownQuery { k, p_tau })
}

/// Frames a block-capable query announcement and flushes: the v3 query
/// fields plus the largest tuple-block (in rows) the client wants per frame.
///
/// Negotiation is client-speaks-first, like every extension since v3: a
/// block-capable server answers with its hello and ships
/// [`WireWriter::write_block`] frames; a **pre-block v3–v5 server** rejects
/// the unknown first frame (its [`read_query`] is strict), which the client
/// observes as a failed hello and handles by redialing with the plain
/// [`write_query`] announcement — old servers never see block frames, old
/// byte layouts are untouched.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_query_blocks(
    writer: &mut impl Write,
    query: &PushdownQuery,
    max_block: u16,
) -> Result<()> {
    let mut body = Vec::with_capacity(19);
    body.push(FRAME_QUERY_BLOCKS);
    body.extend_from_slice(&query.k.to_le_bytes());
    body.extend_from_slice(&query.p_tau.to_bits().to_le_bytes());
    body.extend_from_slice(&max_block.to_le_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Server-side decode of a query announcement in either layout: the plain
/// v3 [`write_query`] frame (returns `None` for the block size — ship
/// per-tuple frames) or the block-capable [`write_query_blocks`] frame
/// (returns the client's requested rows-per-block, clamped to ≥ 1).
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, or (for `k > 0`) a
/// pτ outside `(0, 1)`.
pub fn read_query_negotiated(reader: &mut impl Read) -> Result<(PushdownQuery, Option<u16>)> {
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_QUERY) if body.len() == 17 => Ok((decode_query_fields(&body)?, None)),
        Some(&FRAME_QUERY_BLOCKS) if body.len() == 19 => {
            let query = decode_query_fields(&body)?;
            let max_block = u16::from_le_bytes(body[17..19].try_into().expect("2 bytes")).max(1);
            Ok((query, Some(max_block)))
        }
        _ => Err(Error::Source("corrupt wire query frame".into())),
    }
}

/// Frames a v3 bound update — the merge-side gate's accumulated probability
/// mass — and flushes. The client pushes these periodically while pulling
/// tuples; the server folds the latest mass into its conservative stopping
/// bound.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_bound(writer: &mut impl Write, mass: f64) -> Result<()> {
    let mut body = Vec::with_capacity(9);
    body.push(FRAME_BOUND);
    body.extend_from_slice(&mass.to_bits().to_le_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// The v3 stopped-at trailer: how the server's replay ended, sent just
/// before the end frame so the client can account shipped-vs-scanned tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoppedAt {
    /// Rows the server pulled from its shard source.
    pub scanned: u64,
    /// Tuples the server actually framed onto the wire.
    pub shipped: u64,
    /// `true` when the server's conservative scan gate stopped the replay;
    /// `false` when the shard was exhausted.
    pub gate_limited: bool,
}

/// A control frame a v3 server drains off the client half of the socket
/// mid-replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlFrame {
    /// A [`write_bound`] update carrying the merge-side accumulated mass.
    Bound(f64),
}

/// Incremental decoder for client→server control frames: the server reads
/// whatever bytes are available without blocking, feeds them in with
/// [`extend`](ControlParser::extend), and pops complete frames with
/// [`next_frame`](ControlParser::next_frame) — partial frames stay buffered
/// across reads.
#[derive(Debug, Default)]
pub struct ControlParser {
    buf: Vec<u8>,
}

impl ControlParser {
    /// An empty parser.
    pub fn new() -> Self {
        ControlParser::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete control frame, or `None` when only a partial
    /// frame (or nothing) is buffered.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on a malformed or unexpected frame.
    pub fn next_frame(&mut self) -> Result<Option<ControlFrame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_FRAME_BODY {
            return Err(Error::Source(format!(
                "wire control frame of {len} bytes is outside the accepted range"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        match body[0] {
            FRAME_BOUND if body.len() == 9 => Ok(Some(ControlFrame::Bound(f64::from_bits(
                u64::from_le_bytes(body[1..9].try_into().expect("8 bytes")),
            )))),
            FRAME_BOUND => Err(Error::Source("corrupt wire bound frame".into())),
            other => Err(Error::Source(format!(
                "unexpected wire control frame kind {other}"
            ))),
        }
    }
}

/// A v4 query request: the full query shape a client asks a query-serving
/// daemon to execute against one of its resident datasets. Everything that
/// influences the answer is on the wire — the serving side uses the same
/// fields as its result-cache key, so two requests that encode identically
/// are answered identically.
///
/// Algorithm and coalesce policy travel as raw code bytes: the wire layer
/// cannot see the engine's enums, so the serving layer maps (and
/// range-checks) the codes.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Protocol version the request speaks ([`WIRE_VERSION_V4`] through
    /// [`WIRE_VERSION_V6`]). The server echoes it in the result header, so a
    /// v4 client keeps receiving the byte-identical v4 result layout.
    pub version: u8,
    /// Name of the server-resident dataset to query.
    pub dataset: String,
    /// Number of answers requested (`k >= 1`).
    pub k: u64,
    /// The paper's pτ stopping parameter, in `(0, 1)`.
    pub p_tau: f64,
    /// Number of typical answers to select.
    pub typical_count: u64,
    /// Line-coalescing budget for the distribution (`0` = unbounded).
    pub max_lines: u64,
    /// Engine algorithm code (mapped and validated by the serving layer).
    pub algorithm: u8,
    /// Line-coalescing policy code (mapped and validated by the serving
    /// layer).
    pub coalesce: u8,
    /// Whether the server should also run the U-Top-k baseline.
    pub u_topk: bool,
}

/// Appends the version-through-flags query-shape fields shared by the query
/// request and subscribe frames.
fn push_query_shape(body: &mut Vec<u8>, request: &QueryRequest) -> Result<()> {
    if !(WIRE_VERSION_V4..=WIRE_VERSION_V6).contains(&request.version) {
        return Err(Error::Source(format!(
            "query request version {} is not a version this build speaks (v4-v6)",
            request.version
        )));
    }
    body.push(request.version);
    body.extend_from_slice(&request.k.to_le_bytes());
    body.extend_from_slice(&request.p_tau.to_bits().to_le_bytes());
    body.extend_from_slice(&request.typical_count.to_le_bytes());
    body.extend_from_slice(&request.max_lines.to_le_bytes());
    body.push(request.algorithm);
    body.push(request.coalesce);
    body.push(u8::from(request.u_topk));
    Ok(())
}

/// Frames a query request and flushes. The client sends this immediately
/// after connecting — the query-serving exchange has no hello. The frame
/// carries [`QueryRequest::version`]: v4 requests encode byte-identically to
/// the v4 release, v5 requests tell the server to stamp epoch metadata into
/// the result header.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, an over-long dataset name, or a version
/// this build does not speak.
pub fn write_query_request(writer: &mut impl Write, request: &QueryRequest) -> Result<()> {
    let mut body = Vec::with_capacity(39 + request.dataset.len());
    body.push(FRAME_QUERY_REQUEST);
    push_query_shape(&mut body, request)?;
    push_label(&mut body, &request.dataset)?;
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Decodes the version-through-flags query shape starting at `body[1]`,
/// shared by the query request and subscribe frames. Returns the fields and
/// the offset past them; the caller decodes what follows (max-pushes for a
/// subscription) and the trailing dataset label.
fn pop_query_shape(
    body: &[u8],
    what: &'static str,
    min_version: u8,
) -> Result<(QueryRequest, usize)> {
    if body.len() < 39 {
        return Err(Error::Source(format!("corrupt wire {what} frame")));
    }
    let version = body[1];
    if !(WIRE_VERSION_V4..=WIRE_VERSION_V6).contains(&version) {
        return Err(Error::Source(format!(
            "{what} speaks protocol version {version} (query serving needs v4)"
        )));
    }
    if version < min_version {
        return Err(Error::Source(format!(
            "{what} needs protocol version {min_version} or later (got v{version})"
        )));
    }
    let k = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    let p_tau = f64::from_bits(u64::from_le_bytes(
        body[10..18].try_into().expect("8 bytes"),
    ));
    let typical_count = u64::from_le_bytes(body[18..26].try_into().expect("8 bytes"));
    let max_lines = u64::from_le_bytes(body[26..34].try_into().expect("8 bytes"));
    let algorithm = body[34];
    let coalesce = body[35];
    let flags = body[36];
    if flags > 1 {
        return Err(Error::Source(format!("corrupt wire {what} frame")));
    }
    if k == 0 || !(p_tau > 0.0 && p_tau < 1.0) {
        return Err(Error::Source(format!(
            "{what} carries k {k} / p_tau {p_tau} outside the accepted range"
        )));
    }
    Ok((
        QueryRequest {
            version,
            dataset: String::new(),
            k,
            p_tau,
            typical_count,
            max_lines,
            algorithm,
            coalesce,
            u_topk: flags == 1,
        },
        37,
    ))
}

/// Decodes a [`write_query_request`] frame body (kind byte already matched).
fn decode_query_request(body: &[u8]) -> Result<QueryRequest> {
    let (mut request, at) = pop_query_shape(body, "query request", WIRE_VERSION_V4)?;
    request.dataset = pop_label(body, at, "query request")?;
    Ok(request)
}

/// Server-side decode of a [`write_query_request`] frame.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, a version other than
/// v4/v5, `k == 0`, or a pτ outside `(0, 1)`.
pub fn read_query_request(reader: &mut impl Read) -> Result<QueryRequest> {
    let body = read_frame_from(reader)?;
    if body.first() != Some(&FRAME_QUERY_REQUEST) {
        return Err(Error::Source("corrupt wire query request frame".into()));
    }
    decode_query_request(&body)
}

/// One typical answer as it travels in a v4 result header: the score line it
/// represents, the line's probability, and (when the engine tracked
/// witnesses) the most probable vector attaining it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTypical {
    /// Total score of the answer's line.
    pub score: f64,
    /// Probability mass at that line.
    pub probability: f64,
    /// Most probable vector attaining the line, when tracked.
    pub vector: Option<TopkVector>,
}

/// The U-Top-k baseline answer as it travels in a v4 result header.
#[derive(Debug, Clone, PartialEq)]
pub struct WireUTopk {
    /// The most probable top-k vector.
    pub vector: TopkVector,
    /// State expansions the baseline spent finding it.
    pub expansions: u64,
    /// Deepest scan position the baseline touched (1-based).
    pub deepest_position: u64,
}

/// A query result: everything the server's answer carried. Scores and
/// probabilities are raw IEEE-754 bits on the wire, so a decoded result is
/// bit-identical to the server-side computation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Protocol version of the result layout ([`WIRE_VERSION_V4`] through
    /// [`WIRE_VERSION_V6`]). Servers echo the version the request spoke; a
    /// v4 result encodes byte-identically to the v4 release and carries
    /// `epoch`/`cache_generation` as zero, and pre-v6 results carry the
    /// live-scan tail (`live`/`live_segments`/`compacted_epoch`) as zero.
    pub version: u8,
    /// Whether the server answered from its result cache.
    pub cache_hit: bool,
    /// Scan depth the server-side execution observed.
    pub scan_depth: u64,
    /// Server-side distribution-phase wall time, in nanoseconds.
    pub distribution_time_ns: u64,
    /// Server-side typical-answer-phase wall time, in nanoseconds.
    pub typical_time_ns: u64,
    /// Expected distance of the typical-answer selection.
    pub expected_distance: f64,
    /// The full score distribution, in ascending score order.
    pub points: Vec<DistributionPoint>,
    /// The typical answers.
    pub typical: Vec<WireTypical>,
    /// The U-Top-k baseline answer, when the request asked for it.
    pub u_topk: Option<WireUTopk>,
    /// Epoch of the dataset snapshot the answer was computed against
    /// (v5 results; `0` for v4 results and static datasets).
    pub epoch: u64,
    /// The server's result-cache generation — bumped on every append/seal
    /// that advanced any live dataset's epoch (v5 results; `0` on v4).
    pub cache_generation: u64,
    /// Whether the answered dataset is live — i.e. whether the segment/
    /// compaction tail below is meaningful (v6 results; `false` on pre-v6).
    pub live: bool,
    /// Sealed segments under the live snapshot the answer was computed
    /// against (v6 results for live datasets; `0` otherwise).
    pub live_segments: u64,
    /// Epoch of the live log's most recent compaction, `0` when it was
    /// never compacted (v6 results for live datasets; `0` otherwise).
    pub compacted_epoch: u64,
}

/// Incremental decoder over one frame body: every short read or trailing
/// garbage is the same corrupt-frame error the label decoder reports.
struct FrameCursor<'a> {
    body: &'a [u8],
    at: usize,
    what: &'static str,
}

impl<'a> FrameCursor<'a> {
    fn new(body: &'a [u8], at: usize, what: &'static str) -> Self {
        FrameCursor { body, at, what }
    }

    fn corrupt(&self) -> Error {
        Error::Source(format!("corrupt wire {} frame", self.what))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or_else(|| self.corrupt())?;
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Requires the cursor to have consumed the body exactly.
    fn finish(self) -> Result<()> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(self.corrupt())
        }
    }
}

fn push_ids(body: &mut Vec<u8>, ids: &[TupleId]) -> Result<()> {
    if ids.len() > u16::MAX as usize {
        return Err(Error::Source(format!(
            "wire vector of {} ids exceeds the {}-id limit",
            ids.len(),
            u16::MAX
        )));
    }
    body.extend_from_slice(&(ids.len() as u16).to_le_bytes());
    for id in ids {
        body.extend_from_slice(&id.raw().to_le_bytes());
    }
    Ok(())
}

fn pop_ids(cursor: &mut FrameCursor<'_>) -> Result<Vec<TupleId>> {
    let count = cursor.u16()? as usize;
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(TupleId(cursor.u64()?));
    }
    Ok(ids)
}

fn push_vector(body: &mut Vec<u8>, vector: &TopkVector) -> Result<()> {
    body.extend_from_slice(&vector.total_score().to_bits().to_le_bytes());
    body.extend_from_slice(&vector.probability().to_bits().to_le_bytes());
    push_ids(body, vector.ids())
}

fn pop_vector(cursor: &mut FrameCursor<'_>) -> Result<TopkVector> {
    let total_score = cursor.f64()?;
    let probability = cursor.f64()?;
    Ok(TopkVector::new(pop_ids(cursor)?, total_score, probability))
}

fn push_point(body: &mut Vec<u8>, point: &DistributionPoint) -> Result<()> {
    body.extend_from_slice(&point.score.to_bits().to_le_bytes());
    body.extend_from_slice(&point.probability.to_bits().to_le_bytes());
    match &point.witness {
        None => body.push(0),
        Some(witness) => {
            body.push(1);
            body.extend_from_slice(&witness.probability.to_bits().to_le_bytes());
            push_ids(body, &witness.ids)?;
        }
    }
    Ok(())
}

fn pop_point(cursor: &mut FrameCursor<'_>) -> Result<DistributionPoint> {
    let score = cursor.f64()?;
    let probability = cursor.f64()?;
    let witness = match cursor.u8()? {
        0 => None,
        1 => {
            let probability = cursor.f64()?;
            Some(VectorWitness {
                ids: pop_ids(cursor)?,
                probability,
            })
        }
        _ => return Err(cursor.corrupt()),
    };
    Ok(DistributionPoint {
        score,
        probability,
        witness,
    })
}

/// Bytes of a result-chunk frame spent on kind + point count.
const CHUNK_HEADER: usize = 3;

fn new_chunk() -> Vec<u8> {
    vec![FRAME_RESULT_CHUNK, 0, 0]
}

fn flush_chunk(writer: &mut impl Write, chunk: &mut Vec<u8>, count: &mut u16) -> Result<()> {
    chunk[1..CHUNK_HEADER].copy_from_slice(&count.to_le_bytes());
    write_frame_to(writer, chunk)?;
    *chunk = new_chunk();
    *count = 0;
    Ok(())
}

/// Frames a v4 query result — header, distribution chunks, end frame — and
/// flushes. Chunks are packed up to the frame-body limit, so the full
/// distribution streams regardless of its line count.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, or when a single header/point encoding
/// exceeds the frame-body limit (vectors of more than `u16::MAX` ids, or a
/// pathological typical-answer set).
pub fn write_query_result(writer: &mut impl Write, result: &QueryResult) -> Result<()> {
    if !(WIRE_VERSION_V4..=WIRE_VERSION_V6).contains(&result.version) {
        return Err(Error::Source(format!(
            "query result version {} is not a version this build speaks (v4-v6)",
            result.version
        )));
    }
    let mut body = Vec::with_capacity(128);
    body.push(FRAME_QUERY_RESULT);
    body.push(result.version);
    let mut flags = 0u8;
    if result.cache_hit {
        flags |= 1;
    }
    if result.u_topk.is_some() {
        flags |= 2;
    }
    body.push(flags);
    body.extend_from_slice(&result.scan_depth.to_le_bytes());
    body.extend_from_slice(&result.distribution_time_ns.to_le_bytes());
    body.extend_from_slice(&result.typical_time_ns.to_le_bytes());
    body.extend_from_slice(&(result.points.len() as u64).to_le_bytes());
    body.extend_from_slice(&result.expected_distance.to_bits().to_le_bytes());
    if result.typical.len() > u16::MAX as usize {
        return Err(Error::Source(format!(
            "query result carries {} typical answers (limit {})",
            result.typical.len(),
            u16::MAX
        )));
    }
    body.extend_from_slice(&(result.typical.len() as u16).to_le_bytes());
    for typical in &result.typical {
        body.extend_from_slice(&typical.score.to_bits().to_le_bytes());
        body.extend_from_slice(&typical.probability.to_bits().to_le_bytes());
        match &typical.vector {
            None => body.push(0),
            Some(vector) => {
                body.push(1);
                push_vector(&mut body, vector)?;
            }
        }
    }
    if let Some(u_topk) = &result.u_topk {
        push_vector(&mut body, &u_topk.vector)?;
        body.extend_from_slice(&u_topk.expansions.to_le_bytes());
        body.extend_from_slice(&u_topk.deepest_position.to_le_bytes());
    }
    if result.version >= WIRE_VERSION_V5 {
        // v5 only: a v4 client reads the byte-identical v4 header.
        body.extend_from_slice(&result.epoch.to_le_bytes());
        body.extend_from_slice(&result.cache_generation.to_le_bytes());
    }
    if result.version >= WIRE_VERSION_V6 {
        // v6 only: the live-scan tail. Pre-v6 clients asked for pre-v6
        // results and read a byte-identical older header.
        body.push(u8::from(result.live));
        body.extend_from_slice(&result.live_segments.to_le_bytes());
        body.extend_from_slice(&result.compacted_epoch.to_le_bytes());
    }
    if body.len() > MAX_FRAME_BODY {
        return Err(Error::Source(format!(
            "query result header of {} bytes exceeds the {MAX_FRAME_BODY}-byte frame limit",
            body.len()
        )));
    }
    write_frame_to(writer, &body)?;

    let mut chunk = new_chunk();
    let mut in_chunk: u16 = 0;
    for point in &result.points {
        let mut encoded = Vec::with_capacity(32);
        push_point(&mut encoded, point)?;
        if CHUNK_HEADER + encoded.len() > MAX_FRAME_BODY {
            return Err(Error::Source(format!(
                "a single distribution point of {} bytes exceeds the {MAX_FRAME_BODY}-byte frame limit",
                encoded.len()
            )));
        }
        if in_chunk > 0 && (chunk.len() + encoded.len() > MAX_FRAME_BODY || in_chunk == u16::MAX) {
            flush_chunk(writer, &mut chunk, &mut in_chunk)?;
        }
        chunk.extend_from_slice(&encoded);
        in_chunk += 1;
    }
    if in_chunk > 0 {
        flush_chunk(writer, &mut chunk, &mut in_chunk)?;
    }
    write_frame_to(writer, &[FRAME_END])?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Client-side decode of a [`write_query_result`] stream: the header frame,
/// every distribution chunk, and the end frame.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, a point count that
/// does not match the header's announcement, or a server-side failure (an
/// error frame in place of the header or mid-stream).
pub fn read_query_result(reader: &mut impl Read) -> Result<QueryResult> {
    let remote_failed = |body: &[u8]| {
        Error::Source(format!(
            "remote query failed: {}",
            String::from_utf8_lossy(body)
        ))
    };
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_QUERY_RESULT) => {}
        Some(&FRAME_ERROR) => return Err(remote_failed(&body[1..])),
        Some(&FRAME_BUSY) => return Err(busy_error(&body)),
        _ => return Err(Error::Source("corrupt wire query result frame".into())),
    }
    let mut cursor = FrameCursor::new(&body, 1, "query result");
    let version = cursor.u8()?;
    if !(WIRE_VERSION_V4..=WIRE_VERSION_V6).contains(&version) {
        return Err(Error::Source(format!(
            "unsupported query result protocol version {version}"
        )));
    }
    let flags = cursor.u8()?;
    if flags > 3 {
        return Err(cursor.corrupt());
    }
    let scan_depth = cursor.u64()?;
    let distribution_time_ns = cursor.u64()?;
    let typical_time_ns = cursor.u64()?;
    let point_count = cursor.u64()?;
    let expected_distance = cursor.f64()?;
    let typical_count = cursor.u16()?;
    let mut typical = Vec::with_capacity(typical_count as usize);
    for _ in 0..typical_count {
        let score = cursor.f64()?;
        let probability = cursor.f64()?;
        let vector = match cursor.u8()? {
            0 => None,
            1 => Some(pop_vector(&mut cursor)?),
            _ => return Err(cursor.corrupt()),
        };
        typical.push(WireTypical {
            score,
            probability,
            vector,
        });
    }
    let u_topk = if flags & 2 != 0 {
        let vector = pop_vector(&mut cursor)?;
        Some(WireUTopk {
            vector,
            expansions: cursor.u64()?,
            deepest_position: cursor.u64()?,
        })
    } else {
        None
    };
    let (epoch, cache_generation) = if version >= WIRE_VERSION_V5 {
        (cursor.u64()?, cursor.u64()?)
    } else {
        (0, 0)
    };
    let (live, live_segments, compacted_epoch) = if version >= WIRE_VERSION_V6 {
        let live = match cursor.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(Error::Source(format!(
                    "corrupt query result live flag {other}"
                )));
            }
        };
        (live, cursor.u64()?, cursor.u64()?)
    } else {
        (false, 0, 0)
    };
    cursor.finish()?;

    // The announced count sizes the allocation only up to a clamp — the
    // actual frames, not the header, decide how much memory is committed.
    let mut points = Vec::with_capacity((point_count as usize).min(4096));
    loop {
        let body = read_frame_from(reader)?;
        match body.first() {
            Some(&FRAME_RESULT_CHUNK) => {
                let mut cursor = FrameCursor::new(&body, 1, "result chunk");
                let count = cursor.u16()?;
                for _ in 0..count {
                    points.push(pop_point(&mut cursor)?);
                }
                cursor.finish()?;
            }
            Some(&FRAME_END) if body.len() == 1 => break,
            Some(&FRAME_ERROR) => return Err(remote_failed(&body[1..])),
            Some(&other) => return Err(Error::Source(format!("unknown wire frame kind {other}"))),
            None => return Err(Error::Source("corrupt wire result chunk frame".into())),
        }
    }
    if points.len() as u64 != point_count {
        return Err(Error::Source(format!(
            "query result shipped {} distribution points but announced {point_count}",
            points.len()
        )));
    }
    Ok(QueryResult {
        version,
        cache_hit: flags & 1 != 0,
        scan_depth,
        distribution_time_ns,
        typical_time_ns,
        expected_distance,
        points,
        typical,
        u_topk,
        epoch,
        cache_generation,
        live,
        live_segments,
        compacted_epoch,
    })
}

/// Frames a server-side failure on a v4 query connection and flushes: sent in
/// place of the result header (or mid-stream) so the client's
/// [`read_query_result`] surfaces it as [`Error::Source`]. Also the
/// query-serving daemon's answer to a peer that opened with anything other
/// than a request frame — pre-v4 peers get a decodable refusal, not a hang.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_query_error(writer: &mut impl Write, message: &str) -> Result<()> {
    let mut body = Vec::with_capacity(1 + message.len());
    body.push(FRAME_ERROR);
    body.extend_from_slice(message.as_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Frames a v5 busy/retry-after refusal and flushes: the admission-control
/// answer of a daemon whose worker handoff would block. Sent in place of any
/// reply (the daemon closes right after), so a flood is shed with one cheap
/// frame instead of sitting in the listen backlog.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_busy(writer: &mut impl Write, retry_after_ms: u64) -> Result<()> {
    let mut body = Vec::with_capacity(10);
    body.push(FRAME_BUSY);
    body.push(WIRE_VERSION_V5);
    body.extend_from_slice(&retry_after_ms.to_le_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Decodes a busy frame body into the client-side error. The message
/// deliberately does **not** carry the semantic `remote … failed` prefix the
/// retrying clients treat as final — a busy refusal is the one server answer
/// that is *meant* to be retried.
fn busy_error(body: &[u8]) -> Error {
    if body.len() != 10 || body[1] != WIRE_VERSION_V5 {
        return Error::Source("corrupt wire busy frame".into());
    }
    let retry_after_ms = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    Error::Source(format!(
        "server busy: connection shed by admission control, retry after {retry_after_ms}ms"
    ))
}

/// A v5 append request: scored rows for one of the server's live datasets,
/// with an optional seal trigger publishing them as a new snapshot epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRequest {
    /// Name of the server-resident live dataset to append to.
    pub dataset: String,
    /// Whether to seal the staging buffer after the rows land.
    pub seal: bool,
    /// The scored rows, in any order (the seal sorts them).
    pub rows: Vec<SourceTuple>,
}

/// Most rows a single append request may announce — bounds the server-side
/// allocation the same way [`MAX_FRAME_BODY`] bounds one frame.
const MAX_APPEND_ROWS: u64 = 1 << 20;

/// Encodes one row in a chunk body: the tuple-frame layout minus the kind
/// byte (id, score bits, prob bits, group flag [+ key]).
fn push_source_tuple(body: &mut Vec<u8>, row: &SourceTuple) {
    body.extend_from_slice(&row.tuple.id().raw().to_le_bytes());
    body.extend_from_slice(&row.tuple.score().to_bits().to_le_bytes());
    body.extend_from_slice(&row.tuple.prob().to_bits().to_le_bytes());
    match row.group {
        GroupKey::Independent => body.push(0),
        GroupKey::Shared(key) => {
            body.push(1);
            body.extend_from_slice(&key.to_le_bytes());
        }
    }
}

/// Decodes one row from a chunk body, re-validating through
/// [`UncertainTuple::new`] so a peer cannot append rows the import paths
/// would have refused.
fn pop_source_tuple(cursor: &mut FrameCursor<'_>) -> Result<SourceTuple> {
    let id = cursor.u64()?;
    let score = f64::from_bits(cursor.u64()?);
    let prob = f64::from_bits(cursor.u64()?);
    let tuple = UncertainTuple::new(id, score, prob)?;
    match cursor.u8()? {
        0 => Ok(SourceTuple::independent(tuple)),
        1 => Ok(SourceTuple::grouped(tuple, cursor.u64()?)),
        _ => Err(cursor.corrupt()),
    }
}

/// Frames a v5 append request — header, row chunks, end frame — and flushes.
/// Rows pack into size-bounded chunk frames like a result's distribution
/// points, so an append of any size streams without oversized frames.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, an over-long dataset name, or more rows
/// than one request may announce.
pub fn write_append_request(writer: &mut impl Write, request: &AppendRequest) -> Result<()> {
    if request.rows.len() as u64 > MAX_APPEND_ROWS {
        return Err(Error::Source(format!(
            "append request carries {} rows (limit {MAX_APPEND_ROWS}); split it",
            request.rows.len()
        )));
    }
    let mut body = Vec::with_capacity(13 + request.dataset.len());
    body.push(FRAME_APPEND);
    body.push(WIRE_VERSION_V5);
    body.push(u8::from(request.seal));
    body.extend_from_slice(&(request.rows.len() as u64).to_le_bytes());
    push_label(&mut body, &request.dataset)?;
    write_frame_to(writer, &body)?;

    let mut chunk = vec![FRAME_APPEND_ROWS, 0, 0];
    let mut in_chunk: u16 = 0;
    for row in &request.rows {
        // A row is at most 33 bytes, so one more always fits a fresh chunk.
        if in_chunk > 0 && (chunk.len() + 33 > MAX_FRAME_BODY || in_chunk == u16::MAX) {
            chunk[1..CHUNK_HEADER].copy_from_slice(&in_chunk.to_le_bytes());
            write_frame_to(writer, &chunk)?;
            chunk = vec![FRAME_APPEND_ROWS, 0, 0];
            in_chunk = 0;
        }
        push_source_tuple(&mut chunk, row);
        in_chunk += 1;
    }
    if in_chunk > 0 {
        chunk[1..CHUNK_HEADER].copy_from_slice(&in_chunk.to_le_bytes());
        write_frame_to(writer, &chunk)?;
    }
    write_frame_to(writer, &[FRAME_END])?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Decodes the row chunks and end frame following an append header whose
/// body is `body`. Cross-checks the shipped row count against the header's
/// announcement.
fn read_append_rows(reader: &mut impl Read, body: &[u8]) -> Result<AppendRequest> {
    let corrupt = || Error::Source("corrupt wire append request frame".into());
    if body.len() < 13 || body[1] != WIRE_VERSION_V5 || body[2] > 1 {
        return Err(corrupt());
    }
    let seal = body[2] == 1;
    let announced = u64::from_le_bytes(body[3..11].try_into().expect("8 bytes"));
    if announced > MAX_APPEND_ROWS {
        return Err(Error::Source(format!(
            "append request announces {announced} rows (limit {MAX_APPEND_ROWS})"
        )));
    }
    let dataset = pop_label(body, 11, "append request")?;
    // The announced count sizes the allocation only up to a clamp — the
    // actual frames, not the header, decide how much memory is committed.
    let mut rows = Vec::with_capacity((announced as usize).min(4096));
    loop {
        let body = read_frame_from(reader)?;
        match body.first() {
            Some(&FRAME_APPEND_ROWS) => {
                let mut cursor = FrameCursor::new(&body, 1, "append row chunk");
                let count = cursor.u16()?;
                for _ in 0..count {
                    if rows.len() as u64 >= MAX_APPEND_ROWS {
                        return Err(Error::Source(format!(
                            "append request ships more than {MAX_APPEND_ROWS} rows"
                        )));
                    }
                    rows.push(pop_source_tuple(&mut cursor)?);
                }
                cursor.finish()?;
            }
            Some(&FRAME_END) if body.len() == 1 => break,
            Some(&FRAME_ERROR) => {
                return Err(Error::Source(format!(
                    "append request aborted by the peer: {}",
                    String::from_utf8_lossy(&body[1..])
                )))
            }
            Some(&other) => return Err(Error::Source(format!("unknown wire frame kind {other}"))),
            None => return Err(corrupt()),
        }
    }
    if rows.len() as u64 != announced {
        return Err(Error::Source(format!(
            "append request shipped {} rows but announced {announced}",
            rows.len()
        )));
    }
    Ok(AppendRequest {
        dataset,
        seal,
        rows,
    })
}

/// The server's answer to an append request: where the live dataset stands
/// after the rows (and any seal) landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// Snapshot epoch after this request was applied.
    pub epoch: u64,
    /// Rows currently staged (appended but not yet sealed).
    pub staged: u64,
    /// Total rows across all sealed segments.
    pub sealed_rows: u64,
    /// Whether this request advanced the epoch (an explicit or size-
    /// triggered seal published a new snapshot).
    pub sealed_now: bool,
}

/// Frames a v5 append acknowledgement and flushes.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_append_ack(writer: &mut impl Write, ack: &AppendAck) -> Result<()> {
    let mut body = Vec::with_capacity(27);
    body.push(FRAME_APPEND_ACK);
    body.push(WIRE_VERSION_V5);
    body.push(u8::from(ack.sealed_now));
    body.extend_from_slice(&ack.epoch.to_le_bytes());
    body.extend_from_slice(&ack.staged.to_le_bytes());
    body.extend_from_slice(&ack.sealed_rows.to_le_bytes());
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Client-side decode of a [`write_append_ack`] frame. A server-side error
/// frame in its place surfaces with the semantic `remote append failed`
/// prefix (never retried); a busy frame surfaces as the retryable busy
/// error.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, a server-side
/// refusal, or a busy refusal.
pub fn read_append_ack(reader: &mut impl Read) -> Result<AppendAck> {
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_APPEND_ACK) => {}
        Some(&FRAME_ERROR) => {
            return Err(Error::Source(format!(
                "remote append failed: {}",
                String::from_utf8_lossy(&body[1..])
            )))
        }
        Some(&FRAME_BUSY) => return Err(busy_error(&body)),
        _ => return Err(Error::Source("corrupt wire append ack frame".into())),
    }
    if body.len() != 27 || body[1] != WIRE_VERSION_V5 || body[2] > 1 {
        return Err(Error::Source("corrupt wire append ack frame".into()));
    }
    Ok(AppendAck {
        sealed_now: body[2] == 1,
        epoch: u64::from_le_bytes(body[3..11].try_into().expect("8 bytes")),
        staged: u64::from_le_bytes(body[11..19].try_into().expect("8 bytes")),
        sealed_rows: u64::from_le_bytes(body[19..27].try_into().expect("8 bytes")),
    })
}

/// A v5 subscription request: a standing query the server re-evaluates on
/// every epoch advance of the named live dataset, pushing a notification
/// (plus a full result stream) only when the answer distribution shifted.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeRequest {
    /// The standing query shape (its `dataset` names the live dataset; its
    /// `version` must be [`WIRE_VERSION_V5`]).
    pub query: QueryRequest,
    /// Pushes after which the server closes the subscription (`0` = no
    /// limit; the subscription lives until a side disconnects).
    pub max_pushes: u64,
}

/// Frames a v5 subscribe request and flushes. Sent immediately after
/// connecting, like the query request it extends.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, an over-long dataset name, or a query
/// whose version is not v5.
pub fn write_subscribe(writer: &mut impl Write, request: &SubscribeRequest) -> Result<()> {
    if request.query.version != WIRE_VERSION_V5 {
        return Err(Error::Source(format!(
            "subscriptions need protocol version {WIRE_VERSION_V5} (request speaks v{})",
            request.query.version
        )));
    }
    let mut body = Vec::with_capacity(47 + request.query.dataset.len());
    body.push(FRAME_SUBSCRIBE);
    push_query_shape(&mut body, &request.query)?;
    body.extend_from_slice(&request.max_pushes.to_le_bytes());
    push_label(&mut body, &request.query.dataset)?;
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Decodes a [`write_subscribe`] frame body (kind byte already matched).
fn decode_subscribe(body: &[u8]) -> Result<SubscribeRequest> {
    let (mut query, at) = pop_query_shape(body, "subscribe request", WIRE_VERSION_V5)?;
    let corrupt = || Error::Source("corrupt wire subscribe request frame".into());
    let max_pushes = u64::from_le_bytes(
        body.get(at..at + 8)
            .ok_or_else(corrupt)?
            .try_into()
            .expect("8 bytes"),
    );
    query.dataset = pop_label(body, at + 8, "subscribe request")?;
    Ok(SubscribeRequest { query, max_pushes })
}

/// One subscription push announcement: the epoch the standing query was
/// re-evaluated at and the answer-distribution hash that shifted. A complete
/// v5 result stream ([`read_query_result`]) follows every notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Epoch of the snapshot the pushed answer was computed against.
    pub epoch: u64,
    /// The server's hash of the answer distribution (what it compares
    /// between epochs to decide whether to push).
    pub answer_hash: u64,
}

/// Frames a v5 notification. The caller streams the full query result right
/// after it; no flush here, so notification + result leave as one write.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_notification(writer: &mut impl Write, notification: &Notification) -> Result<()> {
    let mut body = Vec::with_capacity(18);
    body.push(FRAME_NOTIFY);
    body.push(WIRE_VERSION_V5);
    body.extend_from_slice(&notification.epoch.to_le_bytes());
    body.extend_from_slice(&notification.answer_hash.to_le_bytes());
    write_frame_to(writer, &body)
}

/// Server-side close of a push stream: frames a bare end marker (what
/// [`read_push`] decodes as `None`) and flushes, so the subscriber sees a
/// clean end instead of a dropped connection.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure.
pub fn write_push_end(writer: &mut impl Write) -> Result<()> {
    write_frame_to(writer, &[FRAME_END])?;
    writer
        .flush()
        .map_err(|e| Error::Source(format!("flushing the wire stream: {e}")))
}

/// Client-side read of the next subscription event: `Some(notification)`
/// when the server pushed (decode the result stream next), `None` when the
/// server closed the subscription cleanly (push budget reached or daemon
/// drain).
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, a server-side
/// subscription failure, or a busy refusal (possible only as the very first
/// event).
pub fn read_push(reader: &mut impl Read) -> Result<Option<Notification>> {
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_NOTIFY) if body.len() == 18 && body[1] == WIRE_VERSION_V5 => {
            Ok(Some(Notification {
                epoch: u64::from_le_bytes(body[2..10].try_into().expect("8 bytes")),
                answer_hash: u64::from_le_bytes(body[10..18].try_into().expect("8 bytes")),
            }))
        }
        Some(&FRAME_NOTIFY) => Err(Error::Source("corrupt wire notification frame".into())),
        Some(&FRAME_END) if body.len() == 1 => Ok(None),
        Some(&FRAME_ERROR) => Err(Error::Source(format!(
            "remote subscription failed: {}",
            String::from_utf8_lossy(&body[1..])
        ))),
        Some(&FRAME_BUSY) => Err(busy_error(&body)),
        Some(&other) => Err(Error::Source(format!("unknown wire frame kind {other}"))),
        None => Err(Error::Source("corrupt wire notification frame".into())),
    }
}

/// Decodes a `u16`-length-prefixed label starting at `body[at..]` that is
/// *not* required to end at the frame boundary; returns the label and the
/// offset of the first byte after it. Multi-label frames decode every label
/// but the last through this, and the last through [`pop_label`] (which
/// enforces the frame boundary).
fn pop_label_chained(body: &[u8], at: usize, what: &str) -> Result<(String, usize)> {
    let corrupt = || Error::Source(format!("corrupt wire {what} frame"));
    if body.len() < at + 2 {
        return Err(corrupt());
    }
    let len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
    let end = at + 2 + len;
    if body.len() < end {
        return Err(corrupt());
    }
    let label = String::from_utf8(body[at + 2..end].to_vec()).map_err(|_| corrupt())?;
    Ok((label, end))
}

/// The lifecycle verbs a wire-v6 admin client can send a serving daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminVerb {
    /// Report the resident datasets, cache counters and runtime state.
    Stats,
    /// Import a new dataset (`name` = dataset, `arg` = server-side CSV path)
    /// and make it resident without a restart.
    Register,
    /// Drop a resident dataset; in-flight queries finish on the old handle.
    Unregister,
    /// Re-import a file-backed dataset from its original path and swap it in.
    Reload,
    /// Fold a live dataset's sealed segments into one (LSM-style compaction).
    Compact,
}

impl AdminVerb {
    fn code(self) -> u8 {
        match self {
            AdminVerb::Stats => 0,
            AdminVerb::Register => 1,
            AdminVerb::Unregister => 2,
            AdminVerb::Reload => 3,
            AdminVerb::Compact => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(AdminVerb::Stats),
            1 => Some(AdminVerb::Register),
            2 => Some(AdminVerb::Unregister),
            3 => Some(AdminVerb::Reload),
            4 => Some(AdminVerb::Compact),
            _ => None,
        }
    }
}

impl fmt::Display for AdminVerb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdminVerb::Stats => "stats",
            AdminVerb::Register => "register",
            AdminVerb::Unregister => "unregister",
            AdminVerb::Reload => "reload",
            AdminVerb::Compact => "compact",
        })
    }
}

/// One admin-plane request: a verb plus its (possibly empty) operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminRequest {
    /// What the server should do.
    pub verb: AdminVerb,
    /// The dataset the verb targets; empty for [`AdminVerb::Stats`].
    pub name: String,
    /// The verb's argument — the server-side CSV path for
    /// [`AdminVerb::Register`], empty otherwise.
    pub arg: String,
}

/// Frames a wire-v6 admin request and flushes. Client-speaks-first: a server
/// that never receives one never emits a v6 byte, so v5-and-older peers
/// interop byte-identically.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or an over-long name/argument.
pub fn write_admin_request(writer: &mut impl Write, request: &AdminRequest) -> Result<()> {
    let mut body = Vec::with_capacity(7 + request.name.len() + request.arg.len());
    body.push(FRAME_ADMIN);
    body.push(WIRE_VERSION_V6);
    body.push(request.verb.code());
    push_label(&mut body, &request.name)?;
    push_label(&mut body, &request.arg)?;
    if body.len() > MAX_FRAME_BODY {
        return Err(Error::Source(format!(
            "admin request of {} bytes exceeds the frame-body limit",
            body.len()
        )));
    }
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Decodes an already-read [`write_admin_request`] frame body.
fn decode_admin(body: &[u8]) -> Result<AdminRequest> {
    let corrupt = || Error::Source("corrupt wire admin frame".into());
    if body.len() < 3 {
        return Err(corrupt());
    }
    if body[1] != WIRE_VERSION_V6 {
        return Err(Error::Source(format!(
            "admin frame speaks protocol version {} (the admin plane needs v6)",
            body[1]
        )));
    }
    let verb = AdminVerb::from_code(body[2])
        .ok_or_else(|| Error::Source(format!("unknown admin verb {}", body[2])))?;
    let (name, after_name) = pop_label_chained(body, 3, "admin")?;
    let arg = pop_label(body, after_name, "admin")?;
    Ok(AdminRequest { verb, name, arg })
}

/// Frames a successful admin outcome — a short human-readable report — and
/// flushes. Failures are sent as plain error frames ([`write_query_error`])
/// instead, which [`read_admin_response`] surfaces as [`Error::Source`].
///
/// # Errors
///
/// [`Error::Source`] on I/O failure or an over-long report.
pub fn write_admin_response(writer: &mut impl Write, text: &str) -> Result<()> {
    let mut body = Vec::with_capacity(2 + text.len());
    body.push(FRAME_ADMIN_RESPONSE);
    body.push(WIRE_VERSION_V6);
    body.extend_from_slice(text.as_bytes());
    if body.len() > MAX_FRAME_BODY {
        return Err(Error::Source(format!(
            "admin response of {} bytes exceeds the frame-body limit",
            body.len()
        )));
    }
    write_frame_to(writer, &body)?;
    writer.flush().map_err(|e| io_err("flush", e))
}

/// Client-side decode of the server's answer to an admin request: the report
/// text on success.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed frame, a busy refusal (which
/// clients may retry), or a server-side failure — surfaced with the `remote
/// admin failed` prefix the retrying clients treat as final.
pub fn read_admin_response(reader: &mut impl Read) -> Result<String> {
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_ADMIN_RESPONSE) if body.len() >= 2 && body[1] == WIRE_VERSION_V6 => {
            String::from_utf8(body[2..].to_vec())
                .map_err(|_| Error::Source("corrupt wire admin response frame".into()))
        }
        Some(&FRAME_ERROR) => Err(Error::Source(format!(
            "remote admin failed: {}",
            String::from_utf8_lossy(&body[1..])
        ))),
        Some(&FRAME_BUSY) => Err(busy_error(&body)),
        _ => Err(Error::Source("corrupt wire admin response frame".into())),
    }
}

/// The first frame a serving daemon reads off a fresh connection: one of
/// the four client-speaks-first request kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRequest {
    /// A one-shot query ([`write_query_request`], v4 through v6).
    Query(QueryRequest),
    /// An append (+ optional seal) to a live dataset
    /// ([`write_append_request`], v5).
    Append(AppendRequest),
    /// A standing-query subscription ([`write_subscribe`], v5).
    Subscribe(SubscribeRequest),
    /// A lifecycle verb on the admin plane ([`write_admin_request`], v6).
    Admin(AdminRequest),
}

/// Server-side dispatch on the first frame of a connection: decodes a query,
/// append (draining its row chunks), subscribe or admin request. Anything
/// else — a pre-v4 hello, garbage — is an error the daemon answers with an
/// error frame, so old peers fail cleanly instead of hanging.
///
/// # Errors
///
/// [`Error::Source`] on I/O failure, a malformed or unexpected frame, or
/// invalid request fields.
pub fn read_client_request(reader: &mut impl Read) -> Result<ClientRequest> {
    let body = read_frame_from(reader)?;
    match body.first() {
        Some(&FRAME_QUERY_REQUEST) => Ok(ClientRequest::Query(decode_query_request(&body)?)),
        Some(&FRAME_APPEND) => Ok(ClientRequest::Append(read_append_rows(reader, &body)?)),
        Some(&FRAME_SUBSCRIBE) => Ok(ClientRequest::Subscribe(decode_subscribe(&body)?)),
        Some(&FRAME_ADMIN) => Ok(ClientRequest::Admin(decode_admin(&body)?)),
        Some(&other) => Err(Error::Source(format!(
            "unexpected wire frame kind {other} (a query-serving daemon expects a query, \
             append, subscribe or admin request)"
        ))),
        None => Err(Error::Source("corrupt wire request frame".into())),
    }
}

/// The coordinator's allocation state: hands out contiguous, non-overlapping
/// tuple-id ranges (and one shared namespace label) to registering shard
/// servers, replacing operator-passed `--id-base` arithmetic.
///
/// Pure bookkeeping — the TCP accept loop around it lives in the CLI — so
/// the allocation discipline is testable without sockets: the `i`-th
/// registration receives an id base equal to the total row count of the
/// `0..i` registrations, exactly what an operator would have passed by hand
/// for shards imported in that order.
#[derive(Debug, Clone)]
pub struct LeaseRegistry {
    namespace: String,
    next_id_base: u64,
    leases: usize,
}

impl LeaseRegistry {
    /// A registry whose leases all carry `namespace`.
    pub fn new(namespace: impl Into<String>) -> Self {
        LeaseRegistry {
            namespace: namespace.into(),
            next_id_base: 0,
            leases: 0,
        }
    }

    /// Allots the next lease to a shard of `rows` rows: the current id-base
    /// watermark plus the shared namespace. The watermark advances by `rows`.
    pub fn register(&mut self, rows: u64) -> ShardAssignment {
        let lease = ShardAssignment {
            id_base: self.next_id_base,
            namespace: self.namespace.clone(),
        };
        self.next_id_base = self.next_id_base.saturating_add(rows);
        self.leases += 1;
        lease
    }

    /// Number of leases handed out so far.
    pub fn lease_count(&self) -> usize {
        self.leases
    }

    /// The id base the next registration would receive (= total rows leased).
    pub fn next_id_base(&self) -> u64 {
        self.next_id_base
    }

    /// The namespace label stamped on every lease.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }
}

/// The sending half of the codec: frames a rank-ordered tuple stream onto
/// any blocking [`Write`].
///
/// Construction writes the hello frame (protocol version plus an optional
/// tuple-count hint the receiving planner can surface). Call
/// [`write_tuple`](WireWriter::write_tuple) per tuple, then exactly one of
/// [`finish`](WireWriter::finish) or [`fail`](WireWriter::fail);
/// [`serve`](WireWriter::serve) drives all three from a [`TupleSource`].
#[derive(Debug)]
pub struct WireWriter<W: Write> {
    writer: W,
    bytes: u64,
}

impl<W: Write> WireWriter<W> {
    /// Wraps `writer` and sends the **v1** hello frame carrying `size_hint` —
    /// the layout every reader since protocol v1 decodes. Use
    /// [`with_assignment`](WireWriter::with_assignment) to speak v2 to a
    /// client that announced it.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] when the hello frame cannot be written.
    pub fn new(writer: W, size_hint: Option<usize>) -> Result<Self> {
        let mut body = Vec::with_capacity(10);
        body.push(FRAME_HELLO);
        body.push(WIRE_VERSION_V1);
        let hint = size_hint.map(|n| n as u64).unwrap_or(u64::MAX);
        body.extend_from_slice(&hint.to_le_bytes());
        let mut this = WireWriter { writer, bytes: 0 };
        this.frame(&body)?;
        Ok(this)
    }

    /// Wraps `writer` and sends the **v2** hello frame: `size_hint` plus the
    /// shard's id-base/namespace assignment. Serve this layout only when the
    /// server actually holds an assignment to advertise (a coordinator lease
    /// or an operator-pinned namespace) — a v1 reader rejects it, which is
    /// the intended contract: coordinated serving requires v2 consumers.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] when the hello frame cannot be written or the
    /// namespace label is over-long.
    pub fn with_assignment(
        writer: W,
        size_hint: Option<usize>,
        assignment: &ShardAssignment,
    ) -> Result<Self> {
        let mut body = Vec::with_capacity(20 + assignment.namespace.len());
        body.push(FRAME_HELLO);
        body.push(WIRE_VERSION);
        let hint = size_hint.map(|n| n as u64).unwrap_or(u64::MAX);
        body.extend_from_slice(&hint.to_le_bytes());
        body.extend_from_slice(&assignment.id_base.to_le_bytes());
        push_label(&mut body, &assignment.namespace)?;
        let mut this = WireWriter { writer, bytes: 0 };
        this.frame(&body)?;
        Ok(this)
    }

    /// Wraps `writer` and sends the **v3** (query-mode) hello frame:
    /// `size_hint`, an assignment-present flag, and the assignment fields
    /// when the server holds one. Serve this layout only to a client that
    /// announced itself with a query frame — old clients never see it.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] when the hello frame cannot be written or the
    /// namespace label is over-long.
    pub fn v3(
        writer: W,
        size_hint: Option<usize>,
        assignment: Option<&ShardAssignment>,
    ) -> Result<Self> {
        let mut body = Vec::with_capacity(19 + assignment.map_or(0, |a| 10 + a.namespace.len()));
        body.push(FRAME_HELLO);
        body.push(WIRE_VERSION_V3);
        let hint = size_hint.map(|n| n as u64).unwrap_or(u64::MAX);
        body.extend_from_slice(&hint.to_le_bytes());
        match assignment {
            None => body.push(0),
            Some(assignment) => {
                body.push(1);
                body.extend_from_slice(&assignment.id_base.to_le_bytes());
                push_label(&mut body, &assignment.namespace)?;
            }
        }
        let mut this = WireWriter { writer, bytes: 0 };
        this.frame(&body)?;
        Ok(this)
    }

    /// Sends the v3 stopped-at trailer. Call exactly once, just before
    /// [`finish`](WireWriter::finish), and only on streams opened with the
    /// v3 hello.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn write_stopped(&mut self, stopped: &StoppedAt) -> Result<()> {
        let mut body = Vec::with_capacity(18);
        body.push(FRAME_STOPPED);
        body.extend_from_slice(&stopped.scanned.to_le_bytes());
        body.extend_from_slice(&stopped.shipped.to_le_bytes());
        body.push(u8::from(stopped.gate_limited));
        self.frame(&body)
    }

    fn frame(&mut self, body: &[u8]) -> Result<()> {
        self.bytes += body.len() as u64 + 4;
        write_frame_to(&mut self.writer, body)
    }

    /// Total bytes framed onto the writer so far (length prefixes included)
    /// — the shipped-byte accounting the bench and serve summaries report.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Frames one tuple.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn write_tuple(&mut self, tuple: &SourceTuple) -> Result<()> {
        let mut body = Vec::with_capacity(34);
        body.push(FRAME_TUPLE);
        body.extend_from_slice(&tuple.tuple.id().raw().to_le_bytes());
        body.extend_from_slice(&tuple.tuple.score().to_bits().to_le_bytes());
        body.extend_from_slice(&tuple.tuple.prob().to_bits().to_le_bytes());
        match tuple.group {
            GroupKey::Independent => body.push(0),
            GroupKey::Shared(key) => {
                body.push(1);
                body.extend_from_slice(&key.to_le_bytes());
            }
        }
        self.frame(&body)
    }

    /// Frames a columnar tuple block as one or more kind-20 frames of at
    /// most [`MAX_FRAME_BODY`] bytes each (an empty block frames nothing).
    /// Only send on connections whose peer announced block support with the
    /// kind-19 query frame — per-tuple peers treat kind 20 as corrupt.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn write_block(&mut self, block: &TupleBlock) -> Result<()> {
        let mut at = 0;
        while at < block.len() {
            let count = (block.len() - at).min(MAX_BLOCK_ROWS);
            let mut body = vec![FRAME_TUPLE_BLOCK, 0, 0];
            for row in at..at + count {
                push_source_tuple(&mut body, &block.get(row));
            }
            body[1..CHUNK_HEADER].copy_from_slice(&(count as u16).to_le_bytes());
            self.frame(&body)?;
            at += count;
        }
        Ok(())
    }

    /// Sends the end-of-stream frame and flushes, returning the total bytes
    /// framed over the connection's lifetime (see
    /// [`bytes_written`](WireWriter::bytes_written)).
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn finish(mut self) -> Result<u64> {
        self.frame(&[FRAME_END])?;
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        Ok(self.bytes)
    }

    /// Sends an error frame (delivered to the peer as [`Error::Source`])
    /// and flushes.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] on I/O failure.
    pub fn fail(mut self, message: &str) -> Result<()> {
        let mut body = Vec::with_capacity(1 + message.len());
        body.push(FRAME_ERROR);
        body.extend_from_slice(message.as_bytes());
        self.frame(&body)?;
        self.writer.flush().map_err(|e| io_err("flush", e))
    }

    /// Pulls `source` to exhaustion and frames every tuple, terminating the
    /// stream correctly on both outcomes: a clean end sends the end frame, a
    /// source failure is forwarded as an error frame (and returned).
    ///
    /// Returns the number of tuples served.
    ///
    /// # Errors
    ///
    /// The source's error (after forwarding it to the peer), or
    /// [`Error::Source`] on I/O failure.
    pub fn serve(mut self, source: &mut dyn TupleSource) -> Result<usize> {
        let mut served = 0usize;
        loop {
            match source.next_tuple() {
                Ok(Some(tuple)) => {
                    self.write_tuple(&tuple)?;
                    served += 1;
                }
                Ok(None) => {
                    self.finish()?;
                    return Ok(served);
                }
                Err(error) => {
                    self.fail(&error.to_string())?;
                    return Err(error);
                }
            }
        }
    }
}

/// The receiving half of the codec: a [`TupleSource`] decoding frames from
/// any blocking [`Read`].
///
/// The hello frame is read lazily on the first pull, so constructing a
/// reader never blocks. Wrap network streams in a `BufReader` — the decoder
/// issues small reads.
#[derive(Debug)]
pub struct WireReader<R: Read> {
    reader: R,
    hello: Option<Hello>,
    done: bool,
    hint: Option<usize>,
    stopped: Option<StoppedAt>,
    /// Undelivered remainder of the last kind-20 block frame; frames are
    /// only read while this buffer is empty.
    pending: TupleBlock,
    cursor: usize,
    /// Kind-20 block frames decoded off the wire, and the rows they carried
    /// — the framing truth, independent of how the consumer pulls (a merge
    /// draining tuple-at-a-time still empties block frames through the
    /// buffer above).
    block_frames: u64,
    block_frame_rows: u64,
}

impl<R: Read> WireReader<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> Self {
        WireReader {
            reader,
            hello: None,
            done: false,
            hint: None,
            stopped: None,
            pending: TupleBlock::default(),
            cursor: 0,
            block_frames: 0,
            block_frame_rows: 0,
        }
    }

    /// How many kind-20 block frames this reader has decoded so far, and
    /// the total rows they carried — regardless of whether the consumer
    /// pulled them back out as blocks or tuple-at-a-time. `(0, 0)` means the
    /// peer framed every tuple individually (a pre-block server, or blocks
    /// disabled at either end).
    pub fn block_frames_decoded(&self) -> (u64, u64) {
        (self.block_frames, self.block_frame_rows)
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        read_frame_from(&mut self.reader)
    }

    fn expect_hello(&mut self) -> Result<()> {
        let body = self.read_frame()?;
        if body.first() != Some(&FRAME_HELLO) || body.len() < 10 {
            return Err(Error::Source(
                "wire stream does not start with a hello frame".into(),
            ));
        }
        let version = body[1];
        let assignment = match version {
            WIRE_VERSION_V1 => {
                if body.len() != 10 {
                    return Err(Error::Source("corrupt v1 wire hello frame".into()));
                }
                None
            }
            WIRE_VERSION => Some(ShardAssignment {
                id_base: u64::from_le_bytes(
                    body.get(10..18)
                        .ok_or_else(|| Error::Source("corrupt v2 wire hello frame".into()))?
                        .try_into()
                        .expect("8 bytes"),
                ),
                namespace: pop_label(&body, 18, "hello")?,
            }),
            WIRE_VERSION_V3 => {
                let corrupt = || Error::Source("corrupt v3 wire hello frame".into());
                match body.get(10) {
                    Some(0) if body.len() == 11 => None,
                    Some(1) => Some(ShardAssignment {
                        id_base: u64::from_le_bytes(
                            body.get(11..19)
                                .ok_or_else(corrupt)?
                                .try_into()
                                .expect("8 bytes"),
                        ),
                        namespace: pop_label(&body, 19, "hello")?,
                    }),
                    _ => return Err(corrupt()),
                }
            }
            other => {
                return Err(Error::Source(format!(
                    "unsupported wire protocol version {other}"
                )))
            }
        };
        let hint = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
        self.hint = (hint != u64::MAX).then_some(hint as usize);
        self.hello = Some(Hello {
            version,
            size_hint: self.hint,
            assignment,
        });
        Ok(())
    }

    /// Forces the hello frame to be read (a no-op if already decoded) and
    /// returns it. Lets a connection manager validate version and
    /// [`ShardAssignment`] **before** handing the reader to a merge — a dead
    /// or misconfigured peer then fails at connection time, where it can be
    /// retried, instead of mid-scan.
    ///
    /// # Errors
    ///
    /// [`Error::Source`] when the stream does not open with a valid hello.
    pub fn hello(&mut self) -> Result<&Hello> {
        if self.hello.is_none() {
            if let Err(e) = self.expect_hello() {
                self.done = true;
                return Err(e);
            }
        }
        Ok(self.hello.as_ref().expect("hello decoded above"))
    }

    /// The shard assignment the hello carried, when one was decoded.
    pub fn assignment(&self) -> Option<&ShardAssignment> {
        self.hello.as_ref().and_then(|h| h.assignment.as_ref())
    }

    /// The v3 stopped-at trailer, once the stream has ended (always `None`
    /// on v1/v2 streams, which carry no trailer).
    pub fn stopped_at(&self) -> Option<&StoppedAt> {
        self.stopped.as_ref()
    }

    fn decode_tuple(body: &[u8]) -> Result<SourceTuple> {
        let corrupt = || Error::Source("corrupt wire tuple frame".into());
        if body.len() != 26 && body.len() != 34 {
            return Err(corrupt());
        }
        let id = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
        let score = f64::from_bits(u64::from_le_bytes(body[9..17].try_into().expect("8 bytes")));
        let prob = f64::from_bits(u64::from_le_bytes(
            body[17..25].try_into().expect("8 bytes"),
        ));
        let tuple = UncertainTuple::new(id, score, prob)?;
        match (body[25], body.len()) {
            (0, 26) => Ok(SourceTuple::independent(tuple)),
            (1, 34) => Ok(SourceTuple::grouped(
                tuple,
                u64::from_le_bytes(body[26..34].try_into().expect("8 bytes")),
            )),
            _ => Err(corrupt()),
        }
    }

    fn decode_block(body: &[u8]) -> Result<TupleBlock> {
        let mut cursor = FrameCursor::new(body, 1, "tuple block");
        let count = cursor.u16()? as usize;
        let mut block = TupleBlock::with_capacity(count);
        for _ in 0..count {
            block.push(&pop_source_tuple(&mut cursor)?);
        }
        cursor.finish()?;
        Ok(block)
    }

    /// Delivers the next buffered block-frame row, maintaining the hint.
    fn pop_buffered(&mut self) -> Option<SourceTuple> {
        if self.cursor >= self.pending.len() {
            return None;
        }
        let row = self.pending.get(self.cursor);
        self.cursor += 1;
        if self.cursor >= self.pending.len() {
            self.pending.clear();
            self.cursor = 0;
        }
        if let Some(hint) = &mut self.hint {
            *hint = hint.saturating_sub(1);
        }
        Some(row)
    }

    fn note_stopped(&mut self, body: &[u8]) -> Result<()> {
        if body.len() != 18 || body[17] > 1 {
            self.done = true;
            return Err(Error::Source("corrupt wire stopped-at frame".into()));
        }
        self.stopped = Some(StoppedAt {
            scanned: u64::from_le_bytes(body[1..9].try_into().expect("8 bytes")),
            shipped: u64::from_le_bytes(body[9..17].try_into().expect("8 bytes")),
            gate_limited: body[17] == 1,
        });
        Ok(())
    }
}

impl<R: Read> TupleSource for WireReader<R> {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        if let Some(row) = self.pop_buffered() {
            return Ok(Some(row));
        }
        if self.done {
            return Ok(None);
        }
        if self.hello.is_none() {
            self.hello()?;
        }
        loop {
            let body = match self.read_frame() {
                Ok(body) => body,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            return match body[0] {
                FRAME_TUPLE => match Self::decode_tuple(&body) {
                    Ok(tuple) => {
                        if let Some(hint) = &mut self.hint {
                            *hint = hint.saturating_sub(1);
                        }
                        Ok(Some(tuple))
                    }
                    Err(e) => {
                        self.done = true;
                        Err(e)
                    }
                },
                FRAME_TUPLE_BLOCK => match Self::decode_block(&body) {
                    Ok(block) => {
                        self.block_frames += 1;
                        self.block_frame_rows += block.len() as u64;
                        self.pending = block;
                        self.cursor = 0;
                        match self.pop_buffered() {
                            Some(row) => Ok(Some(row)),
                            None => continue, // empty block frame
                        }
                    }
                    Err(e) => {
                        self.done = true;
                        Err(e)
                    }
                },
                FRAME_END => {
                    self.done = true;
                    Ok(None)
                }
                FRAME_STOPPED => {
                    self.note_stopped(&body)?;
                    continue; // the end frame follows the trailer
                }
                FRAME_ERROR => {
                    self.done = true;
                    Err(Error::Source(format!(
                        "remote source failed: {}",
                        String::from_utf8_lossy(&body[1..])
                    )))
                }
                other => {
                    self.done = true;
                    Err(Error::Source(format!("unknown wire frame kind {other}")))
                }
            };
        }
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        let max = max.max(1);
        let buffered = self.pending.len() - self.cursor;
        if buffered > 0 {
            // Whole-block handover when the buffer fits the ask; otherwise
            // copy a slice of the columns and keep the remainder buffered.
            let block = if self.cursor == 0 && buffered <= max {
                std::mem::take(&mut self.pending)
            } else {
                let take = buffered.min(max);
                let mut out = TupleBlock::with_capacity(take);
                out.push_range(&self.pending, self.cursor, self.cursor + take);
                self.cursor += take;
                if self.cursor >= self.pending.len() {
                    self.pending.clear();
                    self.cursor = 0;
                }
                out
            };
            if let Some(hint) = &mut self.hint {
                *hint = hint.saturating_sub(block.len());
            }
            return Ok(Some(block));
        }
        if self.done {
            return Ok(None);
        }
        if self.hello.is_none() {
            self.hello()?;
        }
        loop {
            let body = match self.read_frame() {
                Ok(body) => body,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            match body[0] {
                FRAME_TUPLE_BLOCK => match Self::decode_block(&body) {
                    Ok(block) if block.is_empty() => {
                        self.block_frames += 1;
                        continue;
                    }
                    Ok(block) => {
                        self.block_frames += 1;
                        self.block_frame_rows += block.len() as u64;
                        self.pending = block;
                        self.cursor = 0;
                        // Deliver through the buffer path above, which
                        // honors `max` and maintains the hint.
                        return self.next_block(max);
                    }
                    Err(e) => {
                        self.done = true;
                        return Err(e);
                    }
                },
                // A per-tuple peer: hand each tuple up as a unit block
                // rather than blocking here to batch frames the server may
                // not have sent yet.
                FRAME_TUPLE => match Self::decode_tuple(&body) {
                    Ok(tuple) => {
                        if let Some(hint) = &mut self.hint {
                            *hint = hint.saturating_sub(1);
                        }
                        let mut block = TupleBlock::with_capacity(1);
                        block.push(&tuple);
                        return Ok(Some(block));
                    }
                    Err(e) => {
                        self.done = true;
                        return Err(e);
                    }
                },
                FRAME_END => {
                    self.done = true;
                    return Ok(None);
                }
                FRAME_STOPPED => {
                    self.note_stopped(&body)?;
                    continue;
                }
                FRAME_ERROR => {
                    self.done = true;
                    return Err(Error::Source(format!(
                        "remote source failed: {}",
                        String::from_utf8_lossy(&body[1..])
                    )));
                }
                other => {
                    self.done = true;
                    return Err(Error::Source(format!("unknown wire frame kind {other}")));
                }
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        if self.done {
            return Some(0);
        }
        // Unknown until the hello frame has been decoded.
        self.hint.filter(|_| self.hello.is_some())
    }
}

/// Shared observability for one remote scan: every wire-backed connection
/// feeding the scan records what actually crossed the network, so the
/// planner can report shipped-vs-scanned tuples per query. All counters are
/// atomic — prefetched connections record from their producer threads.
#[derive(Debug, Default)]
pub struct WireScanStats {
    tuples: std::sync::atomic::AtomicU64,
    blocks: std::sync::atomic::AtomicU64,
    block_tuples: std::sync::atomic::AtomicU64,
    pushdown_conns: std::sync::atomic::AtomicU64,
    plain_conns: std::sync::atomic::AtomicU64,
    server_scanned: std::sync::atomic::AtomicU64,
    server_shipped: std::sync::atomic::AtomicU64,
    trailers: std::sync::atomic::AtomicU64,
}

impl WireScanStats {
    const ORDER: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

    /// Records one tuple received over the wire.
    pub fn record_tuple(&self) {
        self.tuples.fetch_add(1, Self::ORDER);
    }

    /// Records `tuples` tuples delivered through one block pull — they count
    /// toward [`tuples_received`] exactly like per-tuple deliveries. Wire
    /// framing is tracked separately via [`record_block_frames`]: a block
    /// pull may be served from a buffered frame, and a buffered frame may be
    /// drained tuple-at-a-time.
    ///
    /// [`tuples_received`]: WireScanStats::tuples_received
    /// [`record_block_frames`]: WireScanStats::record_block_frames
    pub fn record_block_pull(&self, tuples: usize) {
        self.tuples.fetch_add(tuples as u64, Self::ORDER);
    }

    /// Folds in kind-20 block frames decoded off the wire (`frames` frames
    /// carrying `rows` rows total), typically harvested from
    /// [`WireReader::block_frames_decoded`].
    pub fn record_block_frames(&self, frames: u64, rows: u64) {
        self.blocks.fetch_add(frames, Self::ORDER);
        self.block_tuples.fetch_add(rows, Self::ORDER);
    }

    /// Records one opened connection, pushdown-negotiated or plain.
    pub fn record_connection(&self, pushdown: bool) {
        if pushdown {
            self.pushdown_conns.fetch_add(1, Self::ORDER);
        } else {
            self.plain_conns.fetch_add(1, Self::ORDER);
        }
    }

    /// Folds in a server's stopped-at trailer.
    pub fn record_stopped(&self, stopped: &StoppedAt) {
        self.server_scanned.fetch_add(stopped.scanned, Self::ORDER);
        self.server_shipped.fetch_add(stopped.shipped, Self::ORDER);
        self.trailers.fetch_add(1, Self::ORDER);
    }

    /// Tuples received over the wire so far.
    pub fn tuples_received(&self) -> u64 {
        self.tuples.load(Self::ORDER)
    }

    /// Kind-20 columnar block frames decoded off the wire so far.
    pub fn blocks_received(&self) -> u64 {
        self.blocks.load(Self::ORDER)
    }

    /// Rows that arrived inside decoded block frames (divide by
    /// [`blocks_received`] for the mean block fill).
    ///
    /// [`blocks_received`]: WireScanStats::blocks_received
    pub fn block_tuples_received(&self) -> u64 {
        self.block_tuples.load(Self::ORDER)
    }

    /// Connections that negotiated v3 pushdown.
    pub fn pushdown_connections(&self) -> u64 {
        self.pushdown_conns.load(Self::ORDER)
    }

    /// Connections served over the plain v1/v2 protocol.
    pub fn plain_connections(&self) -> u64 {
        self.plain_conns.load(Self::ORDER)
    }

    /// Total rows the servers reported scanning (summed trailers).
    pub fn server_scanned(&self) -> u64 {
        self.server_scanned.load(Self::ORDER)
    }

    /// Total tuples the servers reported shipping (summed trailers).
    pub fn server_shipped(&self) -> u64 {
        self.server_shipped.load(Self::ORDER)
    }

    /// Number of stopped-at trailers received.
    pub fn trailers(&self) -> u64 {
        self.trailers.load(Self::ORDER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    fn tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| {
                let t = UncertainTuple::new(i, (n - i) as f64 + 0.125, 0.5).unwrap();
                if i % 3 == 0 {
                    SourceTuple::grouped(t, i / 3)
                } else {
                    SourceTuple::independent(t)
                }
            })
            .collect()
    }

    fn drain(source: &mut dyn TupleSource) -> Result<Vec<SourceTuple>> {
        let mut out = Vec::new();
        while let Some(t) = source.next_tuple()? {
            out.push(t);
        }
        Ok(out)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let all = tuples(50);
        let mut buf = Vec::new();
        let writer = WireWriter::new(&mut buf, Some(all.len())).unwrap();
        let served = writer.serve(&mut VecSource::new(all.clone())).unwrap();
        assert_eq!(served, 50);
        let mut reader = WireReader::new(buf.as_slice());
        assert_eq!(reader.size_hint(), None, "hint unknown before hello");
        let decoded = drain(&mut reader).unwrap();
        assert_eq!(decoded, all);
        assert_eq!(reader.size_hint(), Some(0));
        assert!(reader.next_tuple().unwrap().is_none());
    }

    #[test]
    fn block_frames_round_trip_bit_identical() {
        let all = tuples(1000);
        let mut block = TupleBlock::with_capacity(all.len());
        for t in &all {
            block.push(t);
        }
        let mut buf = Vec::new();
        let mut writer = WireWriter::new(&mut buf, Some(all.len())).unwrap();
        writer.write_block(&block).unwrap();
        assert!(writer.bytes_written() > 0);
        writer.finish().unwrap();

        // Tuple-at-a-time consumption of the blocked stream.
        let mut reader = WireReader::new(buf.as_slice());
        assert_eq!(drain(&mut reader).unwrap(), all);

        // Blocked consumption: same tuples, same order, hint maintained.
        let mut reader = WireReader::new(buf.as_slice());
        let mut out = Vec::new();
        while let Some(b) = reader.next_block(97).unwrap() {
            assert!(b.len() <= 97);
            out.extend(b.iter());
        }
        assert_eq!(out, all);
        assert_eq!(reader.size_hint(), Some(0));
    }

    #[test]
    fn oversized_block_splits_into_bounded_frames() {
        // 34-byte grouped rows: MAX_BLOCK_ROWS rows won't fit one frame
        // once every row carries a key, so the writer must split.
        let mut block = TupleBlock::with_capacity(MAX_BLOCK_ROWS + 10);
        for i in 0..(MAX_BLOCK_ROWS + 10) as u64 {
            let t = UncertainTuple::new(i, 1e6 - i as f64, 0.5).unwrap();
            block.push(&SourceTuple::grouped(t, i));
        }
        let mut buf = Vec::new();
        let mut writer = WireWriter::new(&mut buf, None).unwrap();
        writer.write_block(&block).unwrap();
        writer.finish().unwrap();
        let mut reader = WireReader::new(buf.as_slice());
        let decoded = drain(&mut reader).unwrap();
        assert_eq!(decoded.len(), block.len());
        assert_eq!(decoded[MAX_BLOCK_ROWS], block.get(MAX_BLOCK_ROWS));
    }

    #[test]
    fn empty_block_frames_nothing() {
        let mut buf = Vec::new();
        let mut writer = WireWriter::new(&mut buf, None).unwrap();
        let before = writer.bytes_written();
        writer.write_block(&TupleBlock::default()).unwrap();
        assert_eq!(writer.bytes_written(), before);
        writer.finish().unwrap();
        assert!(drain(&mut WireReader::new(buf.as_slice()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn mixed_tuple_and_block_frames_interleave() {
        let all = tuples(10);
        let mut block = TupleBlock::default();
        for t in &all[2..7] {
            block.push(t);
        }
        let mut buf = Vec::new();
        let mut writer = WireWriter::new(&mut buf, None).unwrap();
        writer.write_tuple(&all[0]).unwrap();
        writer.write_tuple(&all[1]).unwrap();
        writer.write_block(&block).unwrap();
        for t in &all[7..] {
            writer.write_tuple(t).unwrap();
        }
        writer.finish().unwrap();
        assert_eq!(drain(&mut WireReader::new(buf.as_slice())).unwrap(), all);
    }

    #[test]
    fn blocked_query_negotiation_round_trips() {
        let query = PushdownQuery { k: 7, p_tau: 0.125 };
        let mut buf = Vec::new();
        write_query_blocks(&mut buf, &query, 512).unwrap();
        let (decoded, max_block) = read_query_negotiated(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, query);
        assert_eq!(max_block, Some(512));

        // A plain kind-7 query decodes with no block capability.
        let mut buf = Vec::new();
        write_query(&mut buf, &query).unwrap();
        let (decoded, max_block) = read_query_negotiated(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, query);
        assert_eq!(max_block, None);

        // The strict pre-block reader rejects the kind-19 frame — that
        // rejection is what triggers the client's plain-query redial.
        let mut buf = Vec::new();
        write_query_blocks(&mut buf, &query, 512).unwrap();
        assert!(read_query(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn negotiated_zero_block_clamps_to_one() {
        let query = PushdownQuery { k: 1, p_tau: 0.5 };
        let mut buf = Vec::new();
        write_query_blocks(&mut buf, &query, 0).unwrap();
        let (_, max_block) = read_query_negotiated(&mut buf.as_slice()).unwrap();
        assert_eq!(max_block, Some(1));
    }

    #[test]
    fn size_hint_counts_down_after_hello() {
        let all = tuples(4);
        let mut buf = Vec::new();
        WireWriter::new(&mut buf, Some(4))
            .unwrap()
            .serve(&mut VecSource::new(all))
            .unwrap();
        let mut reader = WireReader::new(buf.as_slice());
        reader.next_tuple().unwrap().unwrap();
        assert_eq!(reader.size_hint(), Some(3));
    }

    #[test]
    fn server_side_error_is_forwarded_as_source_error() {
        struct Fails;
        impl TupleSource for Fails {
            fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
                Err(Error::Source("backing store gone".into()))
            }
        }
        let mut buf = Vec::new();
        let err = WireWriter::new(&mut buf, None)
            .unwrap()
            .serve(&mut Fails)
            .unwrap_err();
        assert!(matches!(err, Error::Source(_)));
        let err = drain(&mut WireReader::new(buf.as_slice())).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("backing store gone")),
            "{err}"
        );
    }

    #[test]
    fn truncation_and_corruption_surface_as_errors() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf, None)
            .unwrap()
            .serve(&mut VecSource::new(tuples(5)))
            .unwrap();

        // Cut the stream before the end frame: every prefix fails, none hang
        // and none pretend the stream ended cleanly.
        for cut in [3usize, 11, buf.len() - 2] {
            let err = drain(&mut WireReader::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, Error::Source(_)), "cut at {cut}");
        }

        // A garbage length prefix is rejected instead of allocated.
        let mut garbage = buf.clone();
        garbage[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            drain(&mut WireReader::new(garbage.as_slice())),
            Err(Error::Source(_))
        ));

        // A stream that does not open with hello is rejected.
        let headless = &buf[14..]; // skip the 4+10 byte hello frame
        assert!(matches!(
            drain(&mut WireReader::new(headless)),
            Err(Error::Source(_))
        ));
    }

    #[test]
    fn v2_hello_round_trips_the_assignment() {
        let all = tuples(10);
        let assignment = ShardAssignment {
            id_base: 40,
            namespace: "coord-7".into(),
        };
        let mut buf = Vec::new();
        WireWriter::with_assignment(&mut buf, Some(all.len()), &assignment)
            .unwrap()
            .serve(&mut VecSource::new(all.clone()))
            .unwrap();
        let mut reader = WireReader::new(buf.as_slice());
        let hello = reader.hello().unwrap();
        assert_eq!(hello.version, WIRE_VERSION);
        assert_eq!(hello.size_hint, Some(10));
        assert_eq!(hello.assignment.as_ref(), Some(&assignment));
        assert_eq!(reader.size_hint(), Some(10), "hint known right after hello");
        assert_eq!(drain(&mut reader).unwrap(), all);
        assert_eq!(reader.assignment(), Some(&assignment));
    }

    #[test]
    fn v1_hello_still_decodes_and_carries_no_assignment() {
        // A v1 server (today's `WireWriter::new`) against the v2 reader.
        let all = tuples(6);
        let mut buf = Vec::new();
        WireWriter::new(&mut buf, Some(6))
            .unwrap()
            .serve(&mut VecSource::new(all.clone()))
            .unwrap();
        let mut reader = WireReader::new(buf.as_slice());
        let hello = reader.hello().unwrap();
        assert_eq!(hello.version, 1);
        assert_eq!(hello.assignment, None);
        assert_eq!(drain(&mut reader).unwrap(), all);
        // And the v1 decode rules (10-byte hello, version byte 1) accept what
        // `WireWriter::new` emits — a v1-era client decodes a v2 server that
        // answered its silence with the v1 hello.
        assert_eq!(buf[4], FRAME_HELLO);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 10);
        assert_eq!(buf[5], WIRE_VERSION_V1);
    }

    #[test]
    fn future_versions_and_corrupt_v2_hellos_are_rejected() {
        let mut buf = Vec::new();
        WireWriter::with_assignment(
            &mut buf,
            None,
            &ShardAssignment {
                id_base: 0,
                namespace: "ns".into(),
            },
        )
        .unwrap()
        .finish()
        .unwrap();
        // Bump the version byte past what this build speaks. (Version 3 is
        // spoken since the pushdown release — but with its own hello layout,
        // so the first genuinely-unknown version is 4.)
        let mut future = buf.clone();
        future[5] = WIRE_VERSION_V3 + 1;
        let err = drain(&mut WireReader::new(future.as_slice())).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("version")),
            "{err}"
        );
        // Truncate the namespace out of the v2 hello: corrupt, not a panic.
        let mut short = buf.clone();
        short[0..4].copy_from_slice(&18u32.to_le_bytes());
        short.truncate(4 + 18);
        assert!(drain(&mut WireReader::new(short.as_slice())).is_err());
    }

    #[test]
    fn register_and_lease_frames_round_trip() {
        let mut registry = LeaseRegistry::new("coord-A");
        assert_eq!(registry.next_id_base(), 0);
        let mut buf = Vec::new();
        write_register(&mut buf, 120, "area.shard0.csv").unwrap();
        let (rows, label) = read_register(&mut buf.as_slice()).unwrap();
        assert_eq!((rows, label.as_str()), (120, "area.shard0.csv"));
        let lease = registry.register(rows);
        assert_eq!(lease.id_base, 0);
        let mut reply = Vec::new();
        write_lease(&mut reply, &lease).unwrap();
        assert_eq!(read_lease(&mut reply.as_slice()).unwrap(), lease);
        // The next registration starts where the previous shard ended.
        let second = registry.register(30);
        assert_eq!(second.id_base, 120);
        assert_eq!(second.namespace, "coord-A");
        assert_eq!(registry.next_id_base(), 150);
        assert_eq!(registry.lease_count(), 2);
        // An over-long label is rejected at write time (a frame larger than
        // MAX_FRAME_BODY would write fine but fail on every reader).
        let huge = "x".repeat(MAX_FRAME_BODY);
        assert!(write_register(&mut Vec::new(), 1, &huge).is_err());
        assert!(write_lease(
            &mut Vec::new(),
            &ShardAssignment {
                id_base: 0,
                namespace: huge,
            }
        )
        .is_err());
        // Malformed register/lease frames are errors, not panics.
        assert!(read_register(&mut [0u8; 3].as_slice()).is_err());
        let mut v1_register = Vec::new();
        write_frame_to(
            &mut v1_register,
            &[&[FRAME_REGISTER, 1][..], &[0u8; 10][..]].concat(),
        )
        .unwrap();
        let err = read_register(&mut v1_register.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("needs v2")),
            "{err}"
        );
        assert!(read_lease(&mut buf.as_slice()).is_err(), "kind mismatch");
    }

    #[test]
    fn v3_hello_round_trips_with_and_without_an_assignment() {
        let all = tuples(8);
        for assignment in [
            None,
            Some(ShardAssignment {
                id_base: 64,
                namespace: "coord-9".into(),
            }),
        ] {
            let mut buf = Vec::new();
            let mut writer =
                WireWriter::v3(&mut buf, Some(all.len()), assignment.as_ref()).unwrap();
            for t in &all {
                writer.write_tuple(t).unwrap();
            }
            writer
                .write_stopped(&StoppedAt {
                    scanned: 12,
                    shipped: 8,
                    gate_limited: true,
                })
                .unwrap();
            writer.finish().unwrap();
            let mut reader = WireReader::new(buf.as_slice());
            let hello = reader.hello().unwrap();
            assert_eq!(hello.version, WIRE_VERSION_V3);
            assert_eq!(hello.size_hint, Some(8));
            assert_eq!(hello.assignment, assignment);
            assert_eq!(reader.stopped_at(), None, "no trailer before the end");
            assert_eq!(drain(&mut reader).unwrap(), all);
            assert_eq!(
                reader.stopped_at(),
                Some(&StoppedAt {
                    scanned: 12,
                    shipped: 8,
                    gate_limited: true,
                })
            );
        }
    }

    #[test]
    fn query_and_bound_frames_round_trip() {
        let query = PushdownQuery { k: 5, p_tau: 1e-3 };
        let mut buf = Vec::new();
        write_query(&mut buf, &query).unwrap();
        assert_eq!(read_query(&mut buf.as_slice()).unwrap(), query);

        // k == 0 announces a full replay and skips the pτ range check.
        let full = PushdownQuery { k: 0, p_tau: 0.0 };
        let mut buf = Vec::new();
        write_query(&mut buf, &full).unwrap();
        assert_eq!(read_query(&mut buf.as_slice()).unwrap(), full);

        // A gated query with pτ outside (0, 1) is rejected server-side.
        let mut bad = Vec::new();
        write_query(&mut bad, &PushdownQuery { k: 3, p_tau: 1.5 }).unwrap();
        assert!(read_query(&mut bad.as_slice()).is_err());

        // Bound updates decode through the incremental control parser, even
        // when they arrive split across reads or back to back.
        let mut wire = Vec::new();
        write_bound(&mut wire, 2.5).unwrap();
        write_bound(&mut wire, 3.75).unwrap();
        let mut parser = ControlParser::new();
        parser.extend(&wire[..7]); // a partial first frame
        assert_eq!(parser.next_frame().unwrap(), None);
        parser.extend(&wire[7..]);
        assert_eq!(parser.next_frame().unwrap(), Some(ControlFrame::Bound(2.5)));
        assert_eq!(
            parser.next_frame().unwrap(),
            Some(ControlFrame::Bound(3.75))
        );
        assert_eq!(parser.next_frame().unwrap(), None);

        // Garbage in the control stream is an error, not a hang.
        let mut parser = ControlParser::new();
        parser.extend(&9u32.to_le_bytes());
        parser.extend(&[FRAME_TUPLE; 9]);
        assert!(parser.next_frame().is_err());
    }

    #[test]
    fn scan_stats_accumulate_across_connections() {
        let stats = WireScanStats::default();
        stats.record_connection(true);
        stats.record_connection(false);
        stats.record_tuple();
        stats.record_tuple();
        stats.record_stopped(&StoppedAt {
            scanned: 10,
            shipped: 2,
            gate_limited: true,
        });
        assert_eq!(stats.tuples_received(), 2);
        assert_eq!(stats.pushdown_connections(), 1);
        assert_eq!(stats.plain_connections(), 1);
        assert_eq!(stats.server_scanned(), 10);
        assert_eq!(stats.server_shipped(), 2);
        assert_eq!(stats.trailers(), 1);
    }

    fn sample_request() -> QueryRequest {
        QueryRequest {
            version: WIRE_VERSION_V5,
            dataset: "area-60".into(),
            k: 5,
            p_tau: 1e-3,
            typical_count: 3,
            max_lines: 200,
            algorithm: 2,
            coalesce: 1,
            u_topk: true,
        }
    }

    fn sample_result(points: usize) -> QueryResult {
        let witness = |seed: u64| VectorWitness {
            ids: vec![TupleId(seed), TupleId(seed + 1), TupleId(seed + 2)],
            probability: 0.25 + (seed % 7) as f64 / 100.0,
        };
        QueryResult {
            version: WIRE_VERSION_V5,
            cache_hit: true,
            scan_depth: 69,
            distribution_time_ns: 1_234_567,
            typical_time_ns: 89_012,
            expected_distance: 6.5,
            points: (0..points as u64)
                .map(|i| DistributionPoint {
                    score: 100.0 + i as f64 / 8.0,
                    probability: 1.0 / (i + 2) as f64,
                    witness: (i % 3 != 0).then(|| witness(i)),
                })
                .collect(),
            typical: vec![
                WireTypical {
                    score: 118.0,
                    probability: 0.2,
                    vector: Some(TopkVector::new(vec![TupleId(2), TupleId(6)], 118.0, 0.2)),
                },
                WireTypical {
                    score: 183.0,
                    probability: 0.1,
                    vector: None,
                },
            ],
            u_topk: Some(WireUTopk {
                vector: TopkVector::new(vec![TupleId(2), TupleId(6)], 118.0, 0.2),
                expansions: 42,
                deepest_position: 7,
            }),
            epoch: 9,
            cache_generation: 4,
            live: false,
            live_segments: 0,
            compacted_epoch: 0,
        }
    }

    #[test]
    fn query_request_round_trips_and_rejects_bad_shapes() {
        let request = sample_request();
        let mut buf = Vec::new();
        write_query_request(&mut buf, &request).unwrap();
        assert_eq!(read_query_request(&mut buf.as_slice()).unwrap(), request);

        // k == 0 and pτ outside (0, 1) are refused server-side.
        for (k, p_tau) in [(0, 1e-3), (5, 0.0), (5, 1.0), (5, -0.5)] {
            let mut bad = Vec::new();
            write_query_request(
                &mut bad,
                &QueryRequest {
                    k,
                    p_tau,
                    ..sample_request()
                },
            )
            .unwrap();
            let err = read_query_request(&mut bad.as_slice()).unwrap_err();
            assert!(
                matches!(&err, Error::Source(m) if m.contains("outside the accepted range")),
                "{err}"
            );
        }

        // A version bump is named in the refusal, and truncation is an error.
        let mut future = buf.clone();
        future[5] = WIRE_VERSION_V6 + 1;
        let err = read_query_request(&mut future.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("needs v4")),
            "{err}"
        );
        assert!(read_query_request(&mut buf[..buf.len() - 3].as_ref()).is_err());
        // An over-long dataset name fails at write time, like every label.
        assert!(write_query_request(
            &mut Vec::new(),
            &QueryRequest {
                dataset: "x".repeat(MAX_FRAME_BODY),
                ..sample_request()
            }
        )
        .is_err());
    }

    #[test]
    fn query_result_round_trip_is_bit_identical() {
        for (points, u_topk, cache_hit) in [(40, true, true), (0, false, false)] {
            let mut result = sample_result(points);
            if !u_topk {
                result.u_topk = None;
            }
            result.cache_hit = cache_hit;
            let mut buf = Vec::new();
            write_query_result(&mut buf, &result).unwrap();
            let decoded = read_query_result(&mut buf.as_slice()).unwrap();
            assert_eq!(decoded, result);
        }
    }

    #[test]
    fn query_result_chunks_split_and_reassemble_large_distributions() {
        // ~52 bytes per witnessed point: thousands of points span several
        // 64 KiB chunk frames and must reassemble verbatim.
        let result = sample_result(5_000);
        let mut buf = Vec::new();
        write_query_result(&mut buf, &result).unwrap();
        let chunks = buf.iter().filter(|&&b| b == FRAME_RESULT_CHUNK).count();
        assert!(chunks >= 2, "expected several chunk frames");
        assert_eq!(read_query_result(&mut buf.as_slice()).unwrap(), result);
    }

    #[test]
    fn query_result_corruption_and_server_errors_surface() {
        let result = sample_result(10);
        let mut buf = Vec::new();
        write_query_result(&mut buf, &result).unwrap();

        // Any truncation point fails instead of hanging or fabricating data.
        for cut in [2usize, 20, buf.len() - 2] {
            assert!(read_query_result(&mut buf[..cut].as_ref()).is_err());
        }

        // An error frame in place of the header decodes as Error::Source.
        let mut refusal = Vec::new();
        write_query_error(&mut refusal, "no such dataset `missing`").unwrap();
        let err = read_query_result(&mut refusal.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("no such dataset")),
            "{err}"
        );

        // A shipped-vs-announced point count mismatch is rejected: drop the
        // final chunk + end frame and splice in a bare end frame.
        let header_len = 4 + u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let mut short = buf[..header_len].to_vec();
        short.extend_from_slice(&1u32.to_le_bytes());
        short.push(FRAME_END);
        let err = read_query_result(&mut short.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("announced")),
            "{err}"
        );
    }

    #[test]
    fn v4_request_and_result_layouts_are_preserved_for_old_peers() {
        // A v4 request round-trips with the v4 version byte on the wire.
        let request = QueryRequest {
            version: WIRE_VERSION_V4,
            ..sample_request()
        };
        let mut buf = Vec::new();
        write_query_request(&mut buf, &request).unwrap();
        assert_eq!(buf[5], WIRE_VERSION_V4, "version byte on the wire");
        assert_eq!(read_query_request(&mut buf.as_slice()).unwrap(), request);

        // A result answered at v4 is byte-identical to the v4 release: the
        // header is exactly 16 bytes shorter (no epoch / cache generation)
        // and decodes with both fields zero.
        let v5 = sample_result(3);
        let v4 = QueryResult {
            version: WIRE_VERSION_V4,
            epoch: 0,
            cache_generation: 0,
            ..v5.clone()
        };
        let (mut buf4, mut buf5) = (Vec::new(), Vec::new());
        write_query_result(&mut buf4, &v4).unwrap();
        write_query_result(&mut buf5, &v5).unwrap();
        let header = |buf: &[u8]| u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(header(&buf5), header(&buf4) + 16);
        let decoded = read_query_result(&mut buf4.as_slice()).unwrap();
        assert_eq!(decoded, v4);
        assert_eq!((decoded.epoch, decoded.cache_generation), (0, 0));
        // And the v5 result carries its epoch metadata through.
        let decoded = read_query_result(&mut buf5.as_slice()).unwrap();
        assert_eq!((decoded.epoch, decoded.cache_generation), (9, 4));
        // Versions outside v4-v6 are refused at write time.
        assert!(write_query_result(
            &mut Vec::new(),
            &QueryResult {
                version: WIRE_VERSION_V6 + 1,
                ..v5
            }
        )
        .is_err());
    }

    #[test]
    fn v6_result_tail_round_trips_and_pre_v6_layouts_are_byte_identical() {
        // A v6 result carries the live-scan tail: 17 bytes (flag + segments
        // + last compaction epoch) after the v5 header.
        let v5 = sample_result(3);
        let v6 = QueryResult {
            version: WIRE_VERSION_V6,
            live: true,
            live_segments: 12,
            compacted_epoch: 31,
            ..v5.clone()
        };
        let (mut buf5, mut buf6) = (Vec::new(), Vec::new());
        write_query_result(&mut buf5, &v5).unwrap();
        write_query_result(&mut buf6, &v6).unwrap();
        let header = |buf: &[u8]| u32::from_le_bytes(buf[0..4].try_into().unwrap());
        assert_eq!(header(&buf6), header(&buf5) + 17);
        let decoded = read_query_result(&mut buf6.as_slice()).unwrap();
        assert_eq!(decoded, v6);
        assert_eq!(
            (decoded.live, decoded.live_segments, decoded.compacted_epoch),
            (true, 12, 31)
        );

        // A result answered at v5 by this build is byte-identical to the v5
        // release — not a single v6 byte unless the client asked for one —
        // and decodes with the live tail zeroed.
        let decoded = read_query_result(&mut buf5.as_slice()).unwrap();
        assert_eq!(decoded, v5);
        assert_eq!(
            (decoded.live, decoded.live_segments, decoded.compacted_epoch),
            (false, 0, 0)
        );
    }

    #[test]
    fn admin_requests_round_trip_through_client_dispatch() {
        let requests = [
            AdminRequest {
                verb: AdminVerb::Stats,
                name: String::new(),
                arg: String::new(),
            },
            AdminRequest {
                verb: AdminVerb::Register,
                name: "sensors".into(),
                arg: "/data/sensors.csv".into(),
            },
            AdminRequest {
                verb: AdminVerb::Unregister,
                name: "sensors".into(),
                arg: String::new(),
            },
            AdminRequest {
                verb: AdminVerb::Reload,
                name: "soldiers".into(),
                arg: String::new(),
            },
            AdminRequest {
                verb: AdminVerb::Compact,
                name: "feed".into(),
                arg: String::new(),
            },
        ];
        for request in requests {
            let mut buf = Vec::new();
            write_admin_request(&mut buf, &request).unwrap();
            match read_client_request(&mut buf.as_slice()).unwrap() {
                ClientRequest::Admin(decoded) => assert_eq!(decoded, request),
                other => panic!("expected an admin request, got {other:?}"),
            }
        }

        // An unknown verb byte and truncation anywhere are refusals.
        let mut buf = Vec::new();
        write_admin_request(
            &mut buf,
            &AdminRequest {
                verb: AdminVerb::Compact,
                name: "feed".into(),
                arg: String::new(),
            },
        )
        .unwrap();
        let mut bad = buf.clone();
        bad[4 + 2] = 9;
        let err = read_client_request(&mut bad.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("unknown admin verb")),
            "{err}"
        );
        for cut in [2usize, 6, buf.len() - 2] {
            assert!(read_client_request(&mut buf[..cut].as_ref()).is_err());
        }
    }

    #[test]
    fn admin_responses_round_trip_and_refusals_surface() {
        let mut buf = Vec::new();
        write_admin_response(&mut buf, "registered `sensors` (1,024 rows)").unwrap();
        assert_eq!(
            read_admin_response(&mut buf.as_slice()).unwrap(),
            "registered `sensors` (1,024 rows)"
        );

        // A server error frame decodes with the semantic (never-retried)
        // prefix, a busy frame with the retryable message.
        let mut refusal = Vec::new();
        write_query_error(&mut refusal, "dataset `sensors` is already registered").unwrap();
        let err = read_admin_response(&mut refusal.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.starts_with("remote admin failed: ")
                && m.contains("already registered")),
            "{err}"
        );
        let mut busy = Vec::new();
        write_busy(&mut busy, 250).unwrap();
        let err = read_admin_response(&mut busy.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("retry after 250ms")),
            "{err}"
        );
    }

    #[test]
    fn append_request_round_trips_through_client_dispatch() {
        for (n, seal) in [(0u64, true), (5, false), (9_000, true)] {
            let request = AppendRequest {
                dataset: "feed".into(),
                seal,
                rows: tuples(n),
            };
            let mut buf = Vec::new();
            write_append_request(&mut buf, &request).unwrap();
            match read_client_request(&mut buf.as_slice()).unwrap() {
                ClientRequest::Append(decoded) => assert_eq!(decoded, request),
                other => panic!("expected an append request, got {other:?}"),
            }
        }

        // An invalid probability is refused at decode time, like every
        // import path.
        let row = SourceTuple::independent(UncertainTuple::new(1u64, 10.0, 0.5).unwrap());
        let mut buf = Vec::new();
        write_append_request(
            &mut buf,
            &AppendRequest {
                dataset: "feed".into(),
                seal: false,
                rows: vec![row],
            },
        )
        .unwrap();
        // Zero the probability bits inside the row chunk: the row starts at
        // chunk body offset 3, its prob field 16 bytes in.
        let header_len = 4 + u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let prob_at = header_len + 4 + CHUNK_HEADER + 16;
        buf[prob_at..prob_at + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(read_client_request(&mut buf.as_slice()).is_err());

        // A shipped-vs-announced row count mismatch is rejected.
        let request = AppendRequest {
            dataset: "feed".into(),
            seal: false,
            rows: tuples(4),
        };
        let mut buf = Vec::new();
        write_append_request(&mut buf, &request).unwrap();
        buf[4 + 3] = 9; // bump the announced count
        let err = read_client_request(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("announced")),
            "{err}"
        );

        // Truncation anywhere is an error, not a hang or a partial append.
        let mut buf = Vec::new();
        write_append_request(
            &mut buf,
            &AppendRequest {
                dataset: "feed".into(),
                seal: true,
                rows: tuples(8),
            },
        )
        .unwrap();
        for cut in [2usize, 25, buf.len() - 2] {
            assert!(read_client_request(&mut buf[..cut].as_ref()).is_err());
        }
    }

    #[test]
    fn append_ack_round_trips_and_server_refusals_surface() {
        let ack = AppendAck {
            epoch: 12,
            staged: 7,
            sealed_rows: 4_096,
            sealed_now: true,
        };
        let mut buf = Vec::new();
        write_append_ack(&mut buf, &ack).unwrap();
        assert_eq!(read_append_ack(&mut buf.as_slice()).unwrap(), ack);

        // A server error frame decodes with the semantic (never-retried)
        // prefix; a busy frame decodes as the retryable busy error.
        let mut refusal = Vec::new();
        write_query_error(&mut refusal, "dataset `feed` is not live").unwrap();
        let err = read_append_ack(&mut refusal.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.starts_with("remote append failed")),
            "{err}"
        );
        let mut busy = Vec::new();
        write_busy(&mut busy, 250).unwrap();
        let err = read_append_ack(&mut busy.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("retry after 250ms")
                && !m.contains("failed")),
            "{err}"
        );
    }

    #[test]
    fn subscribe_round_trips_and_requires_v5() {
        let request = SubscribeRequest {
            query: sample_request(),
            max_pushes: 3,
        };
        let mut buf = Vec::new();
        write_subscribe(&mut buf, &request).unwrap();
        match read_client_request(&mut buf.as_slice()).unwrap() {
            ClientRequest::Subscribe(decoded) => assert_eq!(decoded, request),
            other => panic!("expected a subscribe request, got {other:?}"),
        }

        // A v4 query shape cannot subscribe — refused at write time, and a
        // doctored frame is refused at decode time.
        let v4 = SubscribeRequest {
            query: QueryRequest {
                version: WIRE_VERSION_V4,
                ..sample_request()
            },
            max_pushes: 0,
        };
        assert!(write_subscribe(&mut Vec::new(), &v4).is_err());
        let mut doctored = buf.clone();
        doctored[5] = WIRE_VERSION_V4;
        let err = read_client_request(&mut doctored.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("needs protocol version 5")),
            "{err}"
        );
    }

    #[test]
    fn notifications_and_busy_frames_decode_on_the_push_stream() {
        let mut buf = Vec::new();
        write_notification(
            &mut buf,
            &Notification {
                epoch: 3,
                answer_hash: 0xDEAD_BEEF,
            },
        )
        .unwrap();
        write_frame_to(&mut buf, &[FRAME_END]).unwrap();
        let mut reader = buf.as_slice();
        assert_eq!(
            read_push(&mut reader).unwrap(),
            Some(Notification {
                epoch: 3,
                answer_hash: 0xDEAD_BEEF,
            })
        );
        assert_eq!(read_push(&mut reader).unwrap(), None, "clean close");

        // A busy refusal on the query path is retryable: no semantic prefix.
        let mut busy = Vec::new();
        write_busy(&mut busy, 100).unwrap();
        let err = read_query_result(&mut busy.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("server busy")
                && !m.starts_with("remote query failed")),
            "{err}"
        );
        let err = read_push(&mut busy.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("server busy")),
            "{err}"
        );

        // Dispatch refuses non-request frames by kind, naming the surprise.
        let mut hello = Vec::new();
        WireWriter::new(&mut hello, None).unwrap().finish().unwrap();
        let err = read_client_request(&mut hello.as_slice()).unwrap_err();
        assert!(
            matches!(&err, Error::Source(m) if m.contains("unexpected wire frame kind")),
            "{err}"
        );
    }
}
