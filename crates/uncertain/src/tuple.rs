//! Uncertain tuples and their identifiers.

use crate::error::{Error, Result};
use crate::probability::Probability;

/// Opaque identifier of an uncertain tuple.
///
/// Identifiers are assigned by the application (for example a row id of the
/// underlying relation) and are carried through every algorithm so results can
/// be mapped back to application data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u64);

impl TupleId {
    /// Returns the raw id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TupleId {
    fn from(v: u64) -> Self {
        TupleId(v)
    }
}

/// One uncertain tuple: an identifier, a ranking score, and a membership
/// probability.
///
/// The scoring function of the paper maps a full relational tuple to a real
/// score; by the time the top-k machinery runs, only the triple
/// `(id, score, probability)` matters, so this is the unit every algorithm
/// operates on. Scores may repeat across tuples (non-injective scoring
/// functions are fully supported, see §2.3 / §3.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertainTuple {
    id: TupleId,
    score: f64,
    probability: Probability,
}

impl UncertainTuple {
    /// Creates an uncertain tuple, validating score finiteness and the
    /// probability range.
    pub fn new(id: impl Into<TupleId>, score: f64, probability: f64) -> Result<Self> {
        let id = id.into();
        if !score.is_finite() {
            return Err(Error::NonFiniteScore {
                tuple: id.raw(),
                value: score,
            });
        }
        Ok(UncertainTuple {
            id,
            score,
            probability: Probability::new(probability)?,
        })
    }

    /// Rebuilds a tuple from columns whose values were validated when they
    /// entered the block (see [`Probability::from_validated`]).
    #[inline]
    pub(crate) fn from_validated_parts(id: u64, score: f64, probability: f64) -> Self {
        debug_assert!(score.is_finite());
        UncertainTuple {
            id: TupleId(id),
            score,
            probability: Probability::from_validated(probability),
        }
    }

    /// The tuple identifier.
    #[inline]
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// The ranking score of the tuple.
    #[inline]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The membership probability of the tuple.
    #[inline]
    pub fn probability(&self) -> Probability {
        self.probability
    }

    /// Raw membership probability as an `f64`.
    #[inline]
    pub fn prob(&self) -> f64 {
        self.probability.value()
    }

    /// Ordering key used by every algorithm in this workspace: descending by
    /// score, then descending by probability, then ascending by id.
    ///
    /// Sorting by `(score desc, probability desc)` is exactly the tie-handling
    /// extension of §3.4 (Theorem 3); the id component only makes the order
    /// deterministic.
    pub fn rank_key(&self) -> impl Ord {
        (
            std::cmp::Reverse(OrderedScore(self.score)),
            std::cmp::Reverse(OrderedScore(self.probability.value())),
            self.id,
        )
    }
}

/// Total-ordering wrapper for finite `f64` scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrderedScore(pub f64);

impl Eq for OrderedScore {}

impl PartialOrd for OrderedScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_valid_tuples() {
        let t = UncertainTuple::new(7u64, 42.5, 0.3).unwrap();
        assert_eq!(t.id(), TupleId(7));
        assert_eq!(t.score(), 42.5);
        assert_eq!(t.prob(), 0.3);
    }

    #[test]
    fn rejects_invalid_scores_and_probabilities() {
        assert!(matches!(
            UncertainTuple::new(1u64, f64::NAN, 0.5),
            Err(Error::NonFiniteScore { tuple: 1, .. })
        ));
        assert!(UncertainTuple::new(1u64, 1.0, 0.0).is_err());
        assert!(UncertainTuple::new(1u64, 1.0, 1.2).is_err());
    }

    #[test]
    fn rank_key_orders_by_score_then_probability() {
        let a = UncertainTuple::new(1u64, 10.0, 0.4).unwrap();
        let b = UncertainTuple::new(2u64, 8.0, 0.9).unwrap();
        let c = UncertainTuple::new(3u64, 8.0, 0.3).unwrap();
        let mut v = [c, a, b];
        v.sort_by_key(|t| t.rank_key());
        let ids: Vec<u64> = v.iter().map(|t| t.id().raw()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn rank_key_breaks_full_ties_by_id() {
        let a = UncertainTuple::new(9u64, 8.0, 0.3).unwrap();
        let b = UncertainTuple::new(2u64, 8.0, 0.3).unwrap();
        let mut v = [a, b];
        v.sort_by_key(|t| t.rank_key());
        assert_eq!(v[0].id().raw(), 2);
    }

    #[test]
    fn tuple_id_display() {
        assert_eq!(TupleId(12).to_string(), "T12");
    }
}
