//! Selecting c-Typical-Topk answers from a score distribution (§4).
//!
//! Given the PMF `{(s_1, p_1), …, (s_n, p_n)}` of top-k total scores (scores
//! ascending) the c-Typical-Topk *scores* are the `c` support points that
//! minimise the expected distance between a random score drawn from the PMF
//! and the closest chosen score (Definition 1) — a one-dimensional c-median
//! problem restricted to the support. The c-Typical-Topk *tuples* are, for
//! each chosen score, the most probable top-k vector attaining it
//! (Definition 2); those witnesses are carried by the
//! [`ScoreDistribution`] produced by the
//! algorithms of this crate.
//!
//! The solver is the two-function dynamic program of Figure 7 (after Hassin &
//! Tamir): `F_a(j)` is the optimal cost of covering the suffix `{s_j, …}`
//! with at most `a` typical scores, and `G_a(j)` the same under the
//! constraint that `s_j` itself is typical. With prefix sums `P`/`PS` every
//! candidate split is evaluated in O(1).

use ttk_uncertain::{Error, Result, ScoreDistribution, TopkVector};

/// One selected typical answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TypicalAnswer {
    /// The typical score (a support point of the distribution).
    pub score: f64,
    /// Probability mass the distribution assigns to that exact score.
    pub probability: f64,
    /// The most probable top-k vector attaining the score, when the
    /// producing algorithm tracked witnesses.
    pub vector: Option<TopkVector>,
}

/// The result of c-Typical-Topk selection.
#[derive(Debug, Clone, PartialEq)]
pub struct TypicalSelection {
    /// The selected answers in ascending score order. Contains
    /// `min(c, support size)` entries.
    pub answers: Vec<TypicalAnswer>,
    /// The achieved objective: `E[min_i |S − s_i|]` over the captured mass.
    pub expected_distance: f64,
}

impl TypicalSelection {
    /// The typical scores in ascending order.
    pub fn scores(&self) -> Vec<f64> {
        self.answers.iter().map(|a| a.score).collect()
    }

    /// The typical vectors (where available) in ascending score order.
    pub fn vectors(&self) -> Vec<&TopkVector> {
        self.answers
            .iter()
            .filter_map(|a| a.vector.as_ref())
            .collect()
    }
}

/// Selects the c-Typical-Topk answers from a score distribution using the
/// O(c·n²) dynamic program of Figure 7 (the paper reports O(cn) after the
/// prefix-sum preprocessing; the quadratic inner minimisation is kept simple
/// here because `n` is already bounded by the line-coalescing limit).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `c == 0` or the distribution is
/// empty.
#[allow(clippy::needless_range_loop)] // index arithmetic mirrors the paper's recurrences
pub fn typical_topk(distribution: &ScoreDistribution, c: usize) -> Result<TypicalSelection> {
    if c == 0 {
        return Err(Error::InvalidParameter(
            "the number of typical answers c must be at least 1".into(),
        ));
    }
    if distribution.is_empty() {
        return Err(Error::InvalidParameter(
            "cannot select typical answers from an empty distribution".into(),
        ));
    }
    let n = distribution.len();
    let points = distribution.points();
    let scores: Vec<f64> = points.iter().map(|p| p.score).collect();
    let probs: Vec<f64> = points.iter().map(|p| p.probability).collect();

    if c >= n {
        // Every support point becomes typical; the objective is zero.
        let answers = points
            .iter()
            .map(|p| TypicalAnswer {
                score: p.score,
                probability: p.probability,
                vector: p.witness.as_ref().map(|w| w.to_vector(p.score)),
            })
            .collect();
        return Ok(TypicalSelection {
            answers,
            expected_distance: 0.0,
        });
    }

    // Prefix sums: P[j] = Σ_{b<j} p_b, PS[j] = Σ_{b<j} p_b·s_b  (0-based,
    // exclusive upper bound, so P[0] = 0 and P[n] is the total mass).
    let mut prefix_p = vec![0.0; n + 1];
    let mut prefix_ps = vec![0.0; n + 1];
    for j in 0..n {
        prefix_p[j + 1] = prefix_p[j] + probs[j];
        prefix_ps[j + 1] = prefix_ps[j] + probs[j] * scores[j];
    }
    // Cost of assigning points j..k (inclusive) to the typical score s_k
    // (all of them lie at or below s_k).
    let left_cost = |j: usize, k: usize| -> f64 {
        (prefix_p[k + 1] - prefix_p[j]) * scores[k] - (prefix_ps[k + 1] - prefix_ps[j])
    };
    // Cost of assigning points j..k (inclusive) to the typical score s_j
    // (all of them lie at or above s_j).
    let right_cost = |j: usize, k: usize| -> f64 {
        (prefix_ps[k + 1] - prefix_ps[j]) - (prefix_p[k + 1] - prefix_p[j]) * scores[j]
    };

    // f[a][j]: optimal cost for suffix starting at j with at most a typical
    // scores; g[a][j]: same with s_j forced typical. `f_arg`/`g_arg` record
    // the minimising split for traceback. Index a from 1..=c.
    let mut f = vec![vec![f64::INFINITY; n + 2]; c + 1];
    let mut g = vec![vec![f64::INFINITY; n + 2]; c + 1];
    let mut f_arg = vec![vec![0usize; n + 2]; c + 1];
    let mut g_arg = vec![vec![0usize; n + 2]; c + 1];

    // Boundary: G_1(j) = cost of assigning the whole suffix to s_j;
    // F_a(n) = 0 (empty suffix).
    for j in 0..n {
        g[1][j] = right_cost(j, n - 1);
        g_arg[1][j] = n; // the next subproblem starts past the end
    }
    for a in 1..=c {
        f[a][n] = 0.0;
        g[a][n] = 0.0;
    }

    // F_a(j) = min_{j ≤ k < n} [ left_cost(j, k) + G_a(k) ].
    let fill_f =
        |f: &mut Vec<Vec<f64>>, f_arg: &mut Vec<Vec<usize>>, g: &Vec<Vec<f64>>, a: usize| {
            for j in (0..n).rev() {
                let mut best = f64::INFINITY;
                let mut best_k = j;
                for k in j..n {
                    let candidate = left_cost(j, k) + g[a][k];
                    if candidate < best {
                        best = candidate;
                        best_k = k;
                    }
                }
                f[a][j] = best;
                f_arg[a][j] = best_k;
            }
        };

    fill_f(&mut f, &mut f_arg, &g, 1);
    for a in 2..=c {
        // G_a(j) = min_{j < k ≤ n} [ right_cost(j, k-1) + F_{a-1}(k) ].
        for j in (0..n).rev() {
            let mut best = f64::INFINITY;
            let mut best_k = j + 1;
            for k in (j + 1)..=n {
                let candidate = right_cost(j, k - 1) + f[a - 1][k];
                if candidate < best {
                    best = candidate;
                    best_k = k;
                }
            }
            g[a][j] = best;
            g_arg[a][j] = best_k;
        }
        fill_f(&mut f, &mut f_arg, &g, a);
    }

    // Traceback (lines 36–41 of Figure 7).
    let mut chosen = Vec::with_capacity(c);
    let mut start = 0usize;
    for a in (1..=c).rev() {
        if start >= n {
            break;
        }
        let typical = f_arg[a][start];
        chosen.push(typical);
        start = if a >= 2 { g_arg[a][typical] } else { n };
    }
    chosen.sort_unstable();
    chosen.dedup();

    let answers: Vec<TypicalAnswer> = chosen
        .iter()
        .map(|&i| TypicalAnswer {
            score: points[i].score,
            probability: points[i].probability,
            vector: points[i]
                .witness
                .as_ref()
                .map(|w| w.to_vector(points[i].score)),
        })
        .collect();
    let expected_distance = f[c][0];
    Ok(TypicalSelection {
        answers,
        expected_distance,
    })
}

/// Brute-force reference implementation: tries every subset of `c` support
/// points. Exponential; used for testing the dynamic program and exposed for
/// small didactic cases.
pub fn typical_topk_brute_force(
    distribution: &ScoreDistribution,
    c: usize,
) -> Result<TypicalSelection> {
    if c == 0 {
        return Err(Error::InvalidParameter(
            "the number of typical answers c must be at least 1".into(),
        ));
    }
    if distribution.is_empty() {
        return Err(Error::InvalidParameter(
            "cannot select typical answers from an empty distribution".into(),
        ));
    }
    let n = distribution.len();
    let points = distribution.points();
    let take = c.min(n);
    let mut best: Option<(Vec<usize>, f64)> = None;

    fn search(
        distribution: &ScoreDistribution,
        n: usize,
        take: usize,
        start: usize,
        current: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if current.len() == take {
            let representatives: Vec<f64> = current
                .iter()
                .map(|&i| distribution.points()[i].score)
                .collect();
            let cost = distribution.expected_min_distance(&representatives);
            if best.as_ref().is_none_or(|(_, b)| cost < *b - 1e-15) {
                *best = Some((current.clone(), cost));
            }
            return;
        }
        for i in start..n {
            if n - i < take - current.len() {
                break;
            }
            current.push(i);
            search(distribution, n, take, i + 1, current, best);
            current.pop();
        }
    }
    search(distribution, n, take, 0, &mut Vec::new(), &mut best);
    let (idx, cost) = best.expect("at least one combination exists");
    let answers = idx
        .iter()
        .map(|&i| TypicalAnswer {
            score: points[i].score,
            probability: points[i].probability,
            vector: points[i]
                .witness
                .as_ref()
                .map(|w| w.to_vector(points[i].score)),
        })
        .collect();
    Ok(TypicalSelection {
        answers,
        expected_distance: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::ScoreDistribution;

    fn dist(pairs: &[(f64, f64)]) -> ScoreDistribution {
        ScoreDistribution::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn rejects_invalid_inputs() {
        let d = dist(&[(1.0, 0.5)]);
        assert!(typical_topk(&d, 0).is_err());
        assert!(typical_topk(&ScoreDistribution::empty(), 1).is_err());
        assert!(typical_topk_brute_force(&d, 0).is_err());
        assert!(typical_topk_brute_force(&ScoreDistribution::empty(), 2).is_err());
    }

    #[test]
    fn one_typical_score_of_a_symmetric_distribution_is_the_median() {
        let d = dist(&[(0.0, 0.25), (10.0, 0.5), (20.0, 0.25)]);
        let sel = typical_topk(&d, 1).unwrap();
        assert_eq!(sel.answers.len(), 1);
        assert_eq!(sel.answers[0].score, 10.0);
        assert!((sel.expected_distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn c_at_least_support_size_costs_nothing() {
        let d = dist(&[(0.0, 0.5), (7.0, 0.5)]);
        for c in [2, 3, 10] {
            let sel = typical_topk(&d, c).unwrap();
            assert_eq!(sel.answers.len(), 2);
            assert_eq!(sel.expected_distance, 0.0);
        }
    }

    #[test]
    fn two_clusters_are_covered_by_two_typicals() {
        let d = dist(&[(0.0, 0.3), (1.0, 0.3), (100.0, 0.2), (101.0, 0.2)]);
        let sel = typical_topk(&d, 2).unwrap();
        let scores = sel.scores();
        assert!(scores[0] <= 1.0 && scores[1] >= 100.0, "{scores:?}");
        // The optimal cost covers only the within-cluster spread.
        assert!(sel.expected_distance <= 0.3 + 0.2 + 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_small_inputs() {
        // Deterministic pseudo-random inputs (no external RNG needed).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..30 {
            let n = 2 + (next() % 9) as usize;
            let pairs: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    (
                        (next() % 1000) as f64 / 10.0,
                        ((next() % 99) + 1) as f64 / 100.0,
                    )
                })
                .collect();
            let d = dist(&pairs);
            for c in 1..=3usize.min(d.len()) {
                let fast = typical_topk(&d, c).unwrap();
                let slow = typical_topk_brute_force(&d, c).unwrap();
                assert!(
                    (fast.expected_distance - slow.expected_distance).abs() < 1e-9,
                    "case {case}, c={c}: {} vs {} ({:?})",
                    fast.expected_distance,
                    slow.expected_distance,
                    pairs
                );
                // The reported objective must equal the objective of the
                // reported scores.
                let recomputed = d.expected_min_distance(&fast.scores());
                assert!((recomputed - fast.expected_distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn soldier_example_three_typical_scores() {
        // §2.2: the 3-Typical-Top-2 scores of the soldier table are
        // {118, 183, 235} with expected distance 6.6, and the 1-Typical-Top-2
        // score is 170 (vector <T3, T2>).
        let table = ttk_uncertain::UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap();
        let dist = crate::dp::topk_score_distribution(
            &table,
            2,
            &crate::dp::MainConfig {
                p_tau: 1e-9,
                max_lines: 0,
                ..crate::dp::MainConfig::default()
            },
        )
        .unwrap()
        .distribution;

        let three = typical_topk(&dist, 3).unwrap();
        assert_eq!(three.scores(), vec![118.0, 183.0, 235.0]);
        assert!((three.expected_distance - 6.6).abs() < 0.05);
        let vectors = three.vectors();
        assert_eq!(vectors.len(), 3);
        assert_eq!(
            vectors[0].ids(),
            &[ttk_uncertain::TupleId(2), ttk_uncertain::TupleId(6)]
        );
        assert_eq!(
            vectors[1].ids(),
            &[ttk_uncertain::TupleId(7), ttk_uncertain::TupleId(6)]
        );
        assert_eq!(
            vectors[2].ids(),
            &[ttk_uncertain::TupleId(7), ttk_uncertain::TupleId(3)]
        );

        let one = typical_topk(&dist, 1).unwrap();
        assert_eq!(one.scores(), vec![170.0]);
        let v = &one.vectors()[0];
        assert_eq!(
            v.ids(),
            &[ttk_uncertain::TupleId(3), ttk_uncertain::TupleId(2)]
        );
        assert!((v.probability() - 0.16).abs() < 1e-9);
    }
}
