//! The shared daemon runtime every `ttk` serving process runs on.
//!
//! Before this module, `ttk serve-shard`, `ttk coordinator` and `ttk serve`
//! each hand-rolled the same lifecycle: bind a listener (optionally
//! advertising the bound port through an atomically-written port file), poll
//! a non-blocking accept loop against a shutdown flag, bound concurrency
//! with a worker pool, isolate per-connection failures, and drain in-flight
//! connections on exit. [`run_daemon`] is that lifecycle extracted once:
//!
//! * **Admission control.** Accepted connections are handed to a bounded
//!   pool of pre-spawned workers over a rendezvous channel (capacity 0): a
//!   handoff only succeeds when a worker is actually waiting, so a
//!   connection flood queues in the listen backlog instead of buffering
//!   inside the process. [`ShedPolicy`] decides what happens when every
//!   worker stays busy: [`ShedPolicy::Block`] waits (a streaming daemon's
//!   clients are patient), [`ShedPolicy::Busy`] sheds the connection after
//!   a short grace window via [`ConnectionHandler::shed`] — typically a
//!   busy/retry-after frame — so the daemon never accumulates connections
//!   nobody is draining.
//! * **Error isolation.** A worker serves one connection at a time through
//!   [`ConnectionHandler::serve`]; whether the connection ends in a summary
//!   or an error, the runtime logs one line and the worker moves on. A bad
//!   client never kills the daemon.
//! * **Stall protection.** [`DaemonOptions::write_timeout`] arms
//!   `set_write_timeout` on every accepted socket, so a client that stops
//!   reading mid-reply costs its worker a bounded wait, not forever.
//! * **Drain discipline.** The accept loop polls the caller's shutdown flag
//!   (set by a signal handler the *binary* installs — this crate forbids
//!   unsafe code) and the handler-requested drain
//!   ([`DaemonControl::request_drain`], how `ttk coordinator --max-leases`
//!   exits). On either, or after [`DaemonOptions::max_conns`] served
//!   connections, the loop stops accepting, the channel closes, and every
//!   in-flight connection is joined before [`run_daemon`] returns its
//!   [`DaemonReport`].
//!
//! Transient accept failures (an aborted handshake, fd pressure) are logged
//! and survived; [`MAX_CONSECUTIVE_ACCEPT_FAILURES`] of them back-to-back —
//! or one fatal listener error — end the daemon with an error after the
//! in-flight connections drain.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the accept loop sleeps between polls of an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long the handoff loop sleeps between attempts to hand a connection
/// to a worker.
const HANDOFF_POLL: Duration = Duration::from_millis(5);

/// Even "transient" accept errors repeating back-to-back with no successful
/// accept in between mean the listener is wedged; give up after this many.
pub const MAX_CONSECUTIVE_ACCEPT_FAILURES: usize = 128;

/// What a daemon does with a connection when every worker is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Wait for a worker, however long it takes (still honouring drain
    /// requests). Right for streaming replays whose clients block anyway.
    Block,
    /// Wait `grace_polls` handoff polls, then shed the connection through
    /// [`ConnectionHandler::shed`] with `retry_after_ms` as the hint.
    /// Shed connections never count toward [`DaemonOptions::max_conns`],
    /// which bounds *served* connections.
    Busy {
        /// Handoff polls (5 ms apart) before the connection is shed.
        grace_polls: usize,
        /// The retry-after hint passed to [`ConnectionHandler::shed`].
        retry_after_ms: u64,
    },
}

/// The knobs of one [`run_daemon`] invocation.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Workers in the pool — the daemon's connection parallelism (≥ 1).
    pub workers: usize,
    /// Exit after this many *served* connections (0 = unlimited). Shed
    /// connections do not count.
    pub max_conns: usize,
    /// When set, armed as `set_write_timeout` on every accepted socket so a
    /// stalled reader cannot pin a worker forever. `None` keeps the OS
    /// default (block indefinitely), the historical behaviour.
    pub write_timeout: Option<Duration>,
    /// What to do when every worker is busy.
    pub shed: ShedPolicy,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            workers: 4,
            max_conns: 0,
            write_timeout: None,
            shed: ShedPolicy::Block,
        }
    }
}

/// The runtime's view of "should we stop?", shared with every handler call.
///
/// Two flags feed it: the caller's shutdown flag (flipped by the binary's
/// signal handler) and an internal drain flag any handler can raise with
/// [`request_drain`](DaemonControl::request_drain) — how a daemon that has
/// done its configured amount of work (say, delivered `--max-leases`
/// leases) asks the accept loop to wind down.
pub struct DaemonControl<'a> {
    shutdown: &'a AtomicBool,
    drain: AtomicBool,
}

impl<'a> DaemonControl<'a> {
    fn new(shutdown: &'a AtomicBool) -> Self {
        DaemonControl {
            shutdown,
            drain: AtomicBool::new(false),
        }
    }

    /// True once either stop condition holds: the accept loop will accept
    /// no further connections.
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || self.drain.load(Ordering::SeqCst)
    }

    /// Asks the accept loop to stop accepting and drain. In-flight
    /// connections (including the one whose handler is calling this)
    /// finish normally.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// The caller's shutdown flag — what long-running per-connection loops
    /// (subscription pushes) poll so a drain request interrupts them.
    pub fn shutdown_flag(&self) -> &'a AtomicBool {
        self.shutdown
    }
}

/// What one daemon serves per connection. Implementations are shared across
/// the worker pool (`Sync`); per-worker mutable state (a [`crate::Session`],
/// a lease registry) lives in [`ConnectionHandler::Worker`].
pub trait ConnectionHandler: Sync {
    /// Per-worker state, built once per pool worker and threaded through
    /// every connection that worker serves.
    type Worker: Send;

    /// Builds worker `worker_id`'s state (ids run `0..workers`).
    fn worker(&self, worker_id: usize) -> Self::Worker;

    /// Serves one connection to completion. Both arms become one log line
    /// (`connection PEER (worker N): …`): `Ok` is the summary of a served
    /// connection, `Err` the isolated failure — either way the worker moves
    /// on to the next connection.
    fn serve(
        &self,
        worker: &mut Self::Worker,
        stream: TcpStream,
        control: &DaemonControl<'_>,
    ) -> Result<String, String>;

    /// Called on the accept thread for a connection shed under
    /// [`ShedPolicy::Busy`] — the place to write a busy/retry-after frame.
    /// Best-effort: the default does nothing (the client just sees the
    /// close).
    fn shed(&self, stream: &TcpStream, retry_after_ms: u64) {
        let _ = (stream, retry_after_ms);
    }
}

/// Why [`run_daemon`] stopped accepting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// The caller's shutdown flag flipped (a signal, typically).
    Shutdown,
    /// [`DaemonOptions::max_conns`] served connections were reached.
    MaxConns,
    /// A handler called [`DaemonControl::request_drain`].
    HandlerDrain,
}

/// What one [`run_daemon`] run did, reported after the drain completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonReport {
    /// Connections handed to a worker (shed connections excluded).
    pub served: u64,
    /// Connections shed under [`ShedPolicy::Busy`].
    pub shed: u64,
    /// Why the accept loop stopped.
    pub reason: DrainReason,
}

/// Binds the daemon listener on `listen`, switches it to non-blocking
/// polling, and — when `port_file` is set — advertises the bound address
/// through an atomically-written file (the `--listen 127.0.0.1:0` +
/// `--port-file` handshake scripts and tests use). Returns the listener and
/// the bound `host:port`.
///
/// # Errors
///
/// A human-readable message when the bind, the non-blocking switch, or the
/// port-file write fails.
pub fn bind_daemon_listener(
    listen: &str,
    port_file: Option<&str>,
) -> Result<(TcpListener, String), String> {
    let listener =
        TcpListener::bind(listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the listener: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    if let Some(path) = port_file {
        write_file_atomically(path, &bound)?;
    }
    Ok((listener, bound))
}

/// Writes `contents` to `path` atomically: the bytes land in a unique temp
/// file in the same directory which is then renamed into place, so a
/// concurrently-polling reader observes either no file or the complete
/// contents — never a partial write.
///
/// # Errors
///
/// A human-readable message when the temp write or the rename fails.
pub fn write_file_atomically(path: &str, contents: &str) -> Result<(), String> {
    let target = std::path::Path::new(path);
    let mut tmp_name = target.as_os_str().to_owned();
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, target)
        .map_err(|e| format!("cannot move {} to {path}: {e}", tmp.display()))
}

/// True for accept-loop failures that concern one connection attempt (an
/// aborted handshake, a reset before accept, fd pressure) rather than the
/// listener itself. Fatal errors — the listener fd is dead, the address
/// became invalid — must exit non-zero instead of spinning forever.
pub fn accept_error_is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// The peer address for log lines, tolerating sockets already dead.
fn peer_of(stream: &TcpStream) -> String {
    stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_string())
}

/// Runs the daemon lifecycle on `listener` until a drain condition: spawns
/// `options.workers` pool workers, accepts and hands off connections under
/// the shed policy, and joins every in-flight connection before returning.
///
/// The caller owns `shutdown` (typically a `static` its signal handler
/// flips); the runtime only reads it. The listener must be non-blocking —
/// [`bind_daemon_listener`] arranges that.
///
/// # Errors
///
/// A human-readable message when the listener dies (a fatal accept error,
/// or [`MAX_CONSECUTIVE_ACCEPT_FAILURES`] transient ones back-to-back),
/// when every worker exits while connections still arrive, or when
/// `options.workers` is zero. In-flight connections are joined before any
/// error returns.
pub fn run_daemon<H: ConnectionHandler>(
    listener: &TcpListener,
    handler: &H,
    options: &DaemonOptions,
    shutdown: &AtomicBool,
) -> Result<DaemonReport, String> {
    if options.workers == 0 {
        return Err("a daemon needs at least one worker".to_string());
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot poll the listener: {e}"))?;

    let control = DaemonControl::new(shutdown);
    // The rendezvous handoff: capacity 0 means `try_send` only succeeds
    // when a worker is actually blocked in `recv`, so the accept loop
    // backpressures instead of buffering connections nobody can serve yet.
    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(0);
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(options.workers);
        for worker_id in 0..options.workers {
            let conn_rx = Arc::clone(&conn_rx);
            let control = &control;
            workers.push(scope.spawn(move || {
                let mut state = handler.worker(worker_id);
                loop {
                    // Take the receiver lock only to pull the next
                    // connection; serving happens outside it so workers run
                    // concurrently.
                    let next = conn_rx.lock().expect("connection channel poisoned").recv();
                    let Ok(stream) = next else {
                        break; // Sender dropped: the daemon is draining.
                    };
                    let peer = peer_of(&stream);
                    match handler.serve(&mut state, stream, control) {
                        Ok(line) => eprintln!("connection {peer} (worker {worker_id}): {line}"),
                        Err(line) => eprintln!("connection {peer} (worker {worker_id}): {line}"),
                    }
                }
            }));
        }
        drop(conn_rx); // Workers hold the only receiver handles now.

        let mut served = 0u64;
        let mut shed = 0u64;
        let mut consecutive_failures = 0usize;
        let result = 'accept: loop {
            if control.draining() {
                break Ok(drain_reason(&control));
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => {
                    consecutive_failures = 0;
                    stream
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) if accept_error_is_transient(&e) => {
                    consecutive_failures += 1;
                    if consecutive_failures >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        break Err(format!(
                            "accept failing persistently ({e} and \
                             {MAX_CONSECUTIVE_ACCEPT_FAILURES} predecessors); the listener is \
                             presumed dead"
                        ));
                    }
                    eprintln!("accepting connection: {e}");
                    continue;
                }
                Err(e) => break Err(format!("accept failed fatally: {e}")),
            };
            // Accepted sockets are blocking again (handlers speak framed
            // exchanges, not polls), with the stall bound armed when
            // configured. A socket refusing either is dead on arrival:
            // log and move on, exactly like any other per-connection error.
            if let Err(e) = stream.set_nonblocking(false) {
                eprintln!("connection {}: cannot unpoll: {e}", peer_of(&stream));
                continue;
            }
            if let Some(timeout) = options.write_timeout {
                if let Err(e) = stream.set_write_timeout(Some(timeout)) {
                    eprintln!(
                        "connection {}: cannot arm the write timeout: {e}",
                        peer_of(&stream)
                    );
                    continue;
                }
            }

            // Hand off under backpressure, still honouring drain requests
            // (the connection just accepted is then dropped unserved — its
            // client sees a clean close before any hello).
            let mut pending = stream;
            let mut grace_polls = 0usize;
            let handed_off = loop {
                if control.draining() {
                    break 'accept Ok(drain_reason(&control));
                }
                match conn_tx.try_send(pending) {
                    Ok(()) => break true,
                    Err(TrySendError::Full(back)) => {
                        pending = back;
                        if let ShedPolicy::Busy {
                            grace_polls: grace,
                            retry_after_ms,
                        } = options.shed
                        {
                            grace_polls += 1;
                            if grace_polls >= grace {
                                handler.shed(&pending, retry_after_ms);
                                eprintln!(
                                    "connection {}: shed by admission control (every worker \
                                     busy), retry-after {retry_after_ms}ms",
                                    peer_of(&pending)
                                );
                                break false;
                            }
                        }
                        std::thread::sleep(HANDOFF_POLL);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        break 'accept Err(
                            "every worker exited; the daemon cannot serve".to_string()
                        );
                    }
                }
            };
            if !handed_off {
                shed += 1;
                continue;
            }
            served += 1;
            if options.max_conns > 0 && served >= options.max_conns as u64 {
                break Ok(DrainReason::MaxConns);
            }
        };

        // Whatever ended the loop, close the channel and join every
        // in-flight connection before reporting.
        drop(conn_tx);
        let in_flight = workers.iter().filter(|w| !w.is_finished()).count();
        if in_flight > 0 {
            let why = match &result {
                Ok(DrainReason::Shutdown) => "shutdown requested",
                Ok(DrainReason::MaxConns) => "--max-conns reached",
                Ok(DrainReason::HandlerDrain) => "drain requested",
                Err(_) => "listener failed",
            };
            eprintln!("{why}: joining {in_flight} in-flight connection(s)");
        }
        for worker in workers {
            let _ = worker.join();
        }
        result.map(|reason| DaemonReport {
            served,
            shed,
            reason,
        })
    })
}

/// Which drain condition fired (shutdown wins: it is the operator's word).
fn drain_reason(control: &DaemonControl<'_>) -> DrainReason {
    if control.shutdown.load(Ordering::SeqCst) {
        DrainReason::Shutdown
    } else {
        DrainReason::HandlerDrain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::mpsc;

    fn local_listener() -> (TcpListener, String) {
        bind_daemon_listener("127.0.0.1:0", None).expect("bind")
    }

    /// Reads one byte and echoes it back, tagging it with the worker id.
    struct Echo;

    impl ConnectionHandler for Echo {
        type Worker = usize;

        fn worker(&self, worker_id: usize) -> usize {
            worker_id
        }

        fn serve(
            &self,
            worker: &mut usize,
            mut stream: TcpStream,
            _control: &DaemonControl<'_>,
        ) -> Result<String, String> {
            let mut byte = [0u8; 1];
            stream
                .read_exact(&mut byte)
                .map_err(|e| format!("read: {e}"))?;
            stream.write_all(&byte).map_err(|e| format!("write: {e}"))?;
            Ok(format!("echoed {} on worker {worker}", byte[0]))
        }

        fn shed(&self, stream: &TcpStream, _retry_after_ms: u64) {
            let _ = (&mut &*stream).write_all(b"B");
        }
    }

    fn echo_round_trip(addr: &str, byte: u8) -> u8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(&[byte]).expect("send");
        let mut back = [0u8; 1];
        stream.read_exact(&mut back).expect("echo");
        back[0]
    }

    #[test]
    fn serves_until_max_conns_then_drains() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| {
                run_daemon(
                    &listener,
                    &Echo,
                    &DaemonOptions {
                        workers: 2,
                        max_conns: 3,
                        ..DaemonOptions::default()
                    },
                    &shutdown,
                )
            });
            for byte in [7u8, 8, 9] {
                assert_eq!(echo_round_trip(&addr, byte), byte);
            }
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 3);
            assert_eq!(report.shed, 0);
            assert_eq!(report.reason, DrainReason::MaxConns);
        });
    }

    #[test]
    fn shutdown_flag_drains_the_loop() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let daemon =
                scope.spawn(|| run_daemon(&listener, &Echo, &DaemonOptions::default(), &shutdown));
            assert_eq!(echo_round_trip(&addr, 42), 42);
            shutdown.store(true, Ordering::SeqCst);
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 1);
            assert_eq!(report.reason, DrainReason::Shutdown);
        });
    }

    /// Holds every connection until the test releases it, so the pool can
    /// be saturated deterministically.
    struct HoldUntilReleased {
        started: mpsc::Sender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    impl ConnectionHandler for HoldUntilReleased {
        type Worker = ();

        fn worker(&self, _worker_id: usize) {}

        fn serve(
            &self,
            _worker: &mut (),
            _stream: TcpStream,
            _control: &DaemonControl<'_>,
        ) -> Result<String, String> {
            self.started.send(()).expect("test alive");
            self.release
                .lock()
                .expect("release channel")
                .recv()
                .map_err(|e| format!("released: {e}"))?;
            Ok("held connection released".to_string())
        }

        fn shed(&self, stream: &TcpStream, retry_after_ms: u64) {
            let _ = (&mut &*stream).write_all(&[retry_after_ms as u8]);
        }
    }

    #[test]
    fn busy_policy_sheds_when_every_worker_is_pinned() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let handler = HoldUntilReleased {
            started: started_tx,
            release: Mutex::new(release_rx),
        };
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| {
                run_daemon(
                    &listener,
                    &handler,
                    &DaemonOptions {
                        workers: 1,
                        shed: ShedPolicy::Busy {
                            grace_polls: 2,
                            retry_after_ms: 77,
                        },
                        ..DaemonOptions::default()
                    },
                    &shutdown,
                )
            });
            // Pin the only worker…
            let held = TcpStream::connect(&addr).expect("connect");
            started_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("worker picked up the first connection");
            // …then watch the second connection get shed with the hint.
            let mut second = TcpStream::connect(&addr).expect("connect");
            second
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut hint = [0u8; 1];
            second.read_exact(&mut hint).expect("busy hint");
            assert_eq!(hint[0], 77);
            release_tx.send(()).expect("release the worker");
            shutdown.store(true, Ordering::SeqCst);
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 1);
            assert_eq!(report.shed, 1);
            assert_eq!(report.reason, DrainReason::Shutdown);
            drop(held);
        });
    }

    #[test]
    fn block_policy_waits_for_the_worker_instead_of_shedding() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let handler = HoldUntilReleased {
            started: started_tx,
            release: Mutex::new(release_rx),
        };
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| {
                run_daemon(
                    &listener,
                    &handler,
                    &DaemonOptions {
                        workers: 1,
                        max_conns: 2,
                        shed: ShedPolicy::Block,
                        ..DaemonOptions::default()
                    },
                    &shutdown,
                )
            });
            let first = TcpStream::connect(&addr).expect("connect");
            started_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("first connection picked up");
            let second = TcpStream::connect(&addr).expect("connect");
            // The accept loop is now blocked on the handoff. Release the
            // worker twice: both connections are served, nothing shed.
            release_tx.send(()).expect("release first");
            started_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("second connection picked up");
            release_tx.send(()).expect("release second");
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 2);
            assert_eq!(report.shed, 0);
            drop((first, second));
        });
    }

    /// Writes a reply far larger than the socket buffers, so a client that
    /// never reads stalls the write until the timeout fires.
    struct FloodReply;

    impl ConnectionHandler for FloodReply {
        type Worker = ();

        fn worker(&self, _worker_id: usize) {}

        fn serve(
            &self,
            _worker: &mut (),
            mut stream: TcpStream,
            _control: &DaemonControl<'_>,
        ) -> Result<String, String> {
            let chunk = vec![0u8; 1 << 20];
            for _ in 0..64 {
                stream
                    .write_all(&chunk)
                    .map_err(|e| format!("flood write: {e}"))?;
            }
            Ok("flood delivered".to_string())
        }
    }

    #[test]
    fn write_timeout_sheds_a_stalled_reader_and_frees_the_worker() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| {
                run_daemon(
                    &listener,
                    &FloodReply,
                    &DaemonOptions {
                        workers: 1,
                        max_conns: 2,
                        write_timeout: Some(Duration::from_millis(200)),
                        ..DaemonOptions::default()
                    },
                    &shutdown,
                )
            });
            // A client that connects and never reads: the worker's flood
            // fills the socket buffers and then blocks — until the armed
            // write timeout sheds it.
            let stalled = TcpStream::connect(&addr).expect("connect");
            // The freed worker must then serve a reading client in full.
            let mut reader = TcpStream::connect(&addr).expect("connect");
            reader
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut sink = Vec::new();
            reader.read_to_end(&mut sink).expect("full flood");
            assert_eq!(sink.len(), 64 << 20);
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 2);
            drop(stalled);
        });
    }

    /// Requests a drain from inside the first served connection.
    struct DrainOnFirst;

    impl ConnectionHandler for DrainOnFirst {
        type Worker = ();

        fn worker(&self, _worker_id: usize) {}

        fn serve(
            &self,
            _worker: &mut (),
            mut stream: TcpStream,
            control: &DaemonControl<'_>,
        ) -> Result<String, String> {
            control.request_drain();
            stream.write_all(b"x").map_err(|e| format!("ack: {e}"))?;
            Ok("drain requested".to_string())
        }
    }

    #[test]
    fn handler_requested_drain_stops_the_accept_loop() {
        let (listener, addr) = local_listener();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| {
                run_daemon(
                    &listener,
                    &DrainOnFirst,
                    &DaemonOptions::default(),
                    &shutdown,
                )
            });
            let mut stream = TcpStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).expect("ack");
            let report = daemon.join().expect("daemon").expect("clean exit");
            assert_eq!(report.served, 1);
            assert_eq!(report.reason, DrainReason::HandlerDrain);
        });
    }

    #[test]
    fn zero_workers_is_refused() {
        let (listener, _) = local_listener();
        let shutdown = AtomicBool::new(false);
        let err = run_daemon(
            &listener,
            &Echo,
            &DaemonOptions {
                workers: 0,
                ..DaemonOptions::default()
            },
            &shutdown,
        )
        .expect_err("zero workers");
        assert!(err.contains("at least one worker"), "{err}");
    }

    #[test]
    fn accept_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        assert!(accept_error_is_transient(&Error::from(
            ErrorKind::ConnectionAborted
        )));
        assert!(accept_error_is_transient(&Error::from(
            ErrorKind::Interrupted
        )));
        assert!(!accept_error_is_transient(&Error::from(
            ErrorKind::InvalidInput
        )));
        assert!(!accept_error_is_transient(&Error::from(
            ErrorKind::PermissionDenied
        )));
    }

    #[test]
    fn port_files_are_written_atomically_and_hold_the_bound_address() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ttk_daemon_port_{}", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        let (_listener, bound) =
            bind_daemon_listener("127.0.0.1:0", Some(&path_str)).expect("bind");
        let advertised = std::fs::read_to_string(&path).expect("port file");
        assert_eq!(advertised, bound);
        advertised
            .parse::<std::net::SocketAddr>()
            .expect("a complete address");
        std::fs::remove_file(&path).expect("cleanup");
    }
}
