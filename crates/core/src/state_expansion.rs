//! The StateExpansion baseline algorithm (Figure 4 of the paper).
//!
//! StateExpansion walks the tuples in rank order and maintains a set of
//! partial states, each recording which of the processed tuples appear and
//! which do not. A state that has accumulated `k` appearing tuples
//! contributes one `(score, probability)` line to the output distribution; a
//! state whose probability drops to the threshold pτ or below is discarded.
//! The cost is exponential in the number of tuples considered, which is
//! exactly why the paper uses it only as a baseline for the main dynamic
//! programming algorithm.

use std::collections::HashMap;

use ttk_uncertain::{
    CoalescePolicy, Error, Result, ScoreDistribution, TableSource, TupleId, TupleSource,
    UncertainTable, VectorWitness,
};

use crate::scan::RankScan;
use crate::scan_depth::ScanGate;

/// Configuration shared by the two naive baselines (StateExpansion, k-Combo).
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Probability threshold pτ below which top-k vectors are ignored.
    pub p_tau: f64,
    /// Maximum number of lines in the output distribution (0 = unbounded).
    pub max_lines: usize,
    /// How coalesced lines combine.
    pub coalesce_policy: CoalescePolicy,
    /// Whether witness vectors are tracked.
    pub track_witnesses: bool,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            p_tau: 1e-3,
            max_lines: 200,
            coalesce_policy: CoalescePolicy::PaperMean,
            track_witnesses: true,
        }
    }
}

/// Output of a baseline algorithm run.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// The computed score distribution.
    pub distribution: ScoreDistribution,
    /// Scan depth used (Theorem 2).
    pub scan_depth: usize,
    /// Number of states expanded (StateExpansion) or combinations evaluated
    /// (k-Combo); a machine-independent cost measure.
    pub explored: u64,
}

/// One partial state: decisions for every processed tuple.
#[derive(Debug, Clone)]
struct State {
    /// Ids of the tuples selected so far (rank order), kept only when
    /// witnesses are tracked.
    selected: Vec<TupleId>,
    /// Number of selected tuples.
    count: usize,
    /// Total score of the selected tuples.
    score: f64,
    /// Probability of this exact appearance pattern.
    probability: f64,
    /// For each ME group with at least one *excluded* member and no included
    /// member: the accumulated probability mass of its excluded members.
    excluded: HashMap<usize, f64>,
    /// ME groups that already contributed an included member.
    included_groups: Vec<usize>,
}

impl State {
    fn initial() -> Self {
        State {
            selected: Vec::new(),
            count: 0,
            score: 0.0,
            probability: 1.0,
            excluded: HashMap::new(),
            included_groups: Vec::new(),
        }
    }

    fn has_included(&self, group: usize) -> bool {
        self.included_groups.contains(&group)
    }
}

/// Runs StateExpansion and returns the top-k score distribution.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `k == 0` or an out-of-range pτ.
pub fn state_expansion(
    table: &UncertainTable,
    k: usize,
    config: &NaiveConfig,
) -> Result<BaselineOutput> {
    state_expansion_streamed(&mut TableSource::new(table), k, config)
}

/// Runs StateExpansion against a rank-ordered [`TupleSource`], reading at
/// most one tuple past the Theorem-2 bound.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for invalid parameters and propagates
/// source errors.
pub fn state_expansion_streamed(
    source: &mut dyn TupleSource,
    k: usize,
    config: &NaiveConfig,
) -> Result<BaselineOutput> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut gate = ScanGate::new(k, config.p_tau)?;
    let prefix = RankScan::new().collect_prefix(source, &mut gate)?;
    Ok(state_expansion_on_prefix(&prefix.table, k, config))
}

/// The expansion loop over an already-collected Theorem-2 prefix.
pub(crate) fn state_expansion_on_prefix(
    table: &UncertainTable,
    k: usize,
    config: &NaiveConfig,
) -> BaselineOutput {
    let depth = table.len();
    let mut dist = ScoreDistribution::empty();
    let mut states = vec![State::initial()];
    let mut explored: u64 = 0;

    for pos in 0..depth {
        if states.is_empty() {
            break;
        }
        let tuple = table.tuple(pos);
        let group = table.group_index(pos);
        let group_is_singleton = table.group_members(pos).len() == 1;
        let mut next_states = Vec::with_capacity(states.len() * 2);
        for state in &states {
            explored += 1;
            // Branch 1: tuple appears (is part of the top-k prefix).
            if !state.has_included(group) {
                let excluded_mass = state.excluded.get(&group).copied().unwrap_or(0.0);
                let denom = 1.0 - excluded_mass;
                if denom > 1e-15 {
                    let probability = state.probability / denom * tuple.prob();
                    if probability > 0.0 {
                        let mut s1 = state.clone();
                        s1.probability = probability;
                        s1.score += tuple.score();
                        s1.count += 1;
                        if config.track_witnesses {
                            s1.selected.push(tuple.id());
                        }
                        if !group_is_singleton {
                            s1.excluded.remove(&group);
                            s1.included_groups.push(group);
                        }
                        if s1.count == k {
                            let witness = config.track_witnesses.then(|| VectorWitness {
                                ids: s1.selected.clone(),
                                probability: s1.probability,
                            });
                            dist.add_mass(s1.score, s1.probability, witness);
                            if config.max_lines > 0 {
                                dist.coalesce(config.max_lines, config.coalesce_policy);
                            }
                        } else if s1.probability > config.p_tau {
                            next_states.push(s1);
                        }
                    }
                }
            }
            // Branch 2: tuple does not appear.
            let (probability, new_excluded) = if state.has_included(group) || group_is_singleton {
                // Either implied by the included member (probability already
                // accounts for it) or a simple independent complement.
                if group_is_singleton {
                    (state.probability * tuple.probability().complement(), None)
                } else {
                    (state.probability, None)
                }
            } else {
                let excluded_mass = state.excluded.get(&group).copied().unwrap_or(0.0);
                let denom = 1.0 - excluded_mass;
                let numer = 1.0 - excluded_mass - tuple.prob();
                if denom <= 1e-15 || numer <= 0.0 {
                    (0.0, None)
                } else {
                    (
                        state.probability / denom * numer,
                        Some(excluded_mass + tuple.prob()),
                    )
                }
            };
            if probability > config.p_tau {
                let mut s2 = state.clone();
                s2.probability = probability;
                if let Some(mass) = new_excluded {
                    s2.excluded.insert(group, mass);
                }
                next_states.push(s2);
            }
        }
        states = next_states;
    }

    if config.max_lines > 0 {
        dist.coalesce(config.max_lines, config.coalesce_policy);
    }
    BaselineOutput {
        distribution: dist,
        scan_depth: depth,
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::exact_topk_score_distribution;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    fn exact_config() -> NaiveConfig {
        NaiveConfig {
            p_tau: 1e-12,
            max_lines: 0,
            ..NaiveConfig::default()
        }
    }

    fn assert_matches_exact(table: &UncertainTable, k: usize) {
        let exact = exact_topk_score_distribution(table, k, 1 << 22).unwrap();
        let got = state_expansion(table, k, &exact_config()).unwrap();
        assert_eq!(got.distribution.len(), exact.len());
        for (a, b) in got.distribution.points().iter().zip(exact.points()) {
            assert!((a.score - b.score).abs() < 1e-9);
            assert!(
                (a.probability - b.probability).abs() < 1e-9,
                "score {}: {} vs {}",
                a.score,
                a.probability,
                b.probability
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_soldier_table() {
        let table = soldier_table();
        for k in 1..=4 {
            assert_matches_exact(&table, k);
        }
    }

    #[test]
    fn matches_exhaustive_with_ties() {
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 8.0, 0.3)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .tuple(4u64, 7.0, 0.6)
            .unwrap()
            .tuple(5u64, 7.0, 0.4)
            .unwrap()
            .me_rule([2u64, 5])
            .build()
            .unwrap();
        for k in 1..=4 {
            assert_matches_exact(&table, k);
        }
    }

    #[test]
    fn u_top2_vector_is_among_witnesses() {
        let table = soldier_table();
        let got = state_expansion(&table, 2, &exact_config()).unwrap();
        let w = got
            .distribution
            .points()
            .iter()
            .find(|p| (p.score - 118.0).abs() < 1e-9)
            .and_then(|p| p.witness.as_ref())
            .expect("witness for score 118");
        assert_eq!(w.ids, vec![TupleId(2), TupleId(6)]);
        assert!((w.probability - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_exploration() {
        let table = soldier_table();
        let exact = state_expansion(&table, 2, &exact_config()).unwrap();
        let pruned = state_expansion(
            &table,
            2,
            &NaiveConfig {
                p_tau: 0.05,
                ..exact_config()
            },
        )
        .unwrap();
        assert!(pruned.explored <= exact.explored);
        assert!(pruned.distribution.total_probability() <= exact.distribution.total_probability());
    }

    #[test]
    fn rejects_k_zero() {
        assert!(state_expansion(&soldier_table(), 0, &exact_config()).is_err());
    }

    #[test]
    fn coalescing_limits_output_size() {
        let table = soldier_table();
        let got = state_expansion(
            &table,
            2,
            &NaiveConfig {
                max_lines: 3,
                p_tau: 1e-12,
                ..NaiveConfig::default()
            },
        )
        .unwrap();
        assert!(got.distribution.len() <= 3);
        assert!((got.distribution.total_probability() - 1.0).abs() < 1e-9);
    }
}
