//! The streaming rank-scan executor: pull rank-ordered tuples through the
//! Theorem-2 gate and assemble the prefix every algorithm runs on.
//!
//! Before this abstraction existed, every algorithm materialized the full
//! [`UncertainTable`], computed the Theorem-2 depth, and *truncated*
//! afterwards — the whole input was read, sorted and grouped even though only
//! a prefix was ever needed. [`RankScan::collect_prefix`] fuses the stopping
//! condition into the scan instead: tuples are pulled from a [`TupleSource`]
//! in geometrically growing columnar [`TupleBlock`]s, each row is offered to
//! a [`ScanGate`] by an in-block scalar tail, and the scan ends the moment
//! the gate closes — the stopping depth is **bit-identical** to pulling one
//! tuple at a time, the block pull only changes how many tuples sit in the
//! executor's hand when the gate closes. The unconsumed remainder of that
//! last block is kept as [`ScanPrefix::surplus`] (it is never lost, and
//! [`ScanPrefix::into_full_table`] splices it back), so the over-read past
//! the bound is bounded by the final block ask, which starts at
//! [`FIRST_BLOCK_TUPLES`] and at most doubles per pull up to
//! [`MAX_BLOCK_TUPLES`] — out-of-core and incrementally-arriving inputs stay
//! viable while deep scans amortize per-tuple dispatch (spill decode, wire
//! frames, feed channel hops) over whole blocks.
//!
//! The admitted prefix is assembled into a regular [`UncertainTable`] via
//! [`UncertainTable::from_rank_ordered`] — no re-sort, no rule re-derivation
//! — so the downstream dynamic programs run unchanged on a table that is
//! observationally identical to the old truncate-based one.

use ttk_uncertain::{
    GroupKey, Result, SourceTuple, TupleBlock, TupleSource, UncertainTable, UncertainTuple,
};

use crate::scan_depth::ScanGate;

/// The executor's first block ask: small, so a scan whose gate closes within
/// the first few ranks over-reads almost nothing.
pub const FIRST_BLOCK_TUPLES: usize = 32;

/// The executor's largest block ask, reached after a few doublings; also the
/// block size used when draining a stream to exhaustion.
pub const MAX_BLOCK_TUPLES: usize = 512;

/// The Theorem-2 prefix produced by one rank scan.
#[derive(Debug, Clone)]
pub struct ScanPrefix {
    /// The admitted prefix as a regular uncertain table (rank positions
    /// `0..depth`).
    pub table: UncertainTable,
    /// The source-assigned group key of each prefix tuple, in rank order
    /// (needed to splice the prefix back onto the remaining stream, see
    /// [`ScanPrefix::into_full_table`]).
    pub keys: Vec<GroupKey>,
    /// The single look-ahead tuple the gate rejected, when it closed
    /// mid-stream.
    pub pending: Option<SourceTuple>,
    /// The unconsumed remainder of the block the gate closed inside: the
    /// rows after [`pending`](ScanPrefix::pending) in rank order, already
    /// pulled from the source but never offered to the gate. Empty when the
    /// gate closed on the last row of its block or the stream was exhausted.
    pub surplus: TupleBlock,
    /// Number of tuples pulled from the source, including the look-ahead
    /// and the surplus rows.
    pub pulled: usize,
    /// True when the source was exhausted before the gate closed (the prefix
    /// is the entire stream).
    pub exhausted: bool,
}

impl ScanPrefix {
    /// The scan depth: the number of tuples every algorithm may read.
    pub fn depth(&self) -> usize {
        self.table.len()
    }

    /// Consumes the prefix, drains the rest of `source`, and builds the full
    /// table of the stream — prefix, rejected look-ahead and remainder.
    ///
    /// This is the escape hatch for consumers whose semantics Theorem 2 does
    /// not bound (U-Topk has no probability threshold): they can still scan
    /// through the gate and fall back to the whole stream only when needed.
    ///
    /// # Errors
    ///
    /// Propagates source errors and table-validation errors.
    pub fn into_full_table(self, source: &mut dyn TupleSource) -> Result<UncertainTable> {
        if self.exhausted && self.pending.is_none() && self.surplus.is_empty() {
            return Ok(self.table);
        }
        let mut tuples: Vec<UncertainTuple> = self.table.tuples().to_vec();
        let mut keys = self.keys;
        if let Some(pending) = self.pending {
            tuples.push(pending.tuple);
            keys.push(pending.group);
        }
        for streamed in self.surplus.iter() {
            tuples.push(streamed.tuple);
            keys.push(streamed.group);
        }
        while let Some(block) = source.next_block(MAX_BLOCK_TUPLES)? {
            for streamed in block.iter() {
                tuples.push(streamed.tuple);
                keys.push(streamed.group);
            }
        }
        UncertainTable::from_rank_ordered(tuples, &keys)
    }
}

/// The streaming rank-scan executor: pulls a source through a gate and
/// assembles [`ScanPrefix`]es. Stateless — cross-query reuse lives in
/// [`crate::query::Executor`], which re-arms one [`ScanGate`] per query so
/// its group-mass table keeps its allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct RankScan;

impl RankScan {
    /// Creates a scan.
    pub fn new() -> Self {
        RankScan
    }

    /// Pulls tuples from `source` while `gate` admits them and assembles the
    /// admitted prefix.
    ///
    /// Tuples are pulled in geometrically growing blocks and admitted by an
    /// in-block scalar tail, so the prefix and stopping depth are
    /// bit-identical to a tuple-at-a-time scan; the unconsumed rows of the
    /// block the gate closed inside land in [`ScanPrefix::surplus`].
    ///
    /// # Errors
    ///
    /// Propagates source errors and prefix-validation errors (out-of-order
    /// streams, duplicate ids, overweight ME groups).
    pub fn collect_prefix(
        &mut self,
        source: &mut dyn TupleSource,
        gate: &mut ScanGate,
    ) -> Result<ScanPrefix> {
        // Presize for the stream when it is small; the Theorem-2 bound keeps
        // real prefixes short, so never reserve more than a modest block up
        // front for huge streams.
        let hint = source.size_hint().unwrap_or(0).min(4096);
        let mut tuples: Vec<UncertainTuple> = Vec::with_capacity(hint);
        let mut keys: Vec<GroupKey> = Vec::with_capacity(hint);
        let mut pulled = 0usize;
        let mut pending = None;
        let mut surplus = TupleBlock::default();
        let mut exhausted = true;
        let mut ask = FIRST_BLOCK_TUPLES;
        'scan: while let Some(block) = source.next_block(ask)? {
            pulled += block.len();
            for at in 0..block.len() {
                let streamed = block.get(at);
                if !gate.admit(
                    streamed.tuple.score(),
                    streamed.tuple.prob(),
                    streamed.group,
                ) {
                    pending = Some(streamed);
                    exhausted = false;
                    if at + 1 < block.len() {
                        surplus.push_range(&block, at + 1, block.len());
                    }
                    break 'scan;
                }
                tuples.push(streamed.tuple);
                keys.push(streamed.group);
            }
            ask = (ask * 2).min(MAX_BLOCK_TUPLES);
        }
        let table = UncertainTable::from_rank_ordered(tuples, &keys)?;
        Ok(ScanPrefix {
            table,
            keys,
            pending,
            surplus,
            pulled,
            exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_depth::scan_depth;
    use ttk_uncertain::{CountingSource, TableSource, UncertainTable};

    fn uniform_table(n: usize, prob: f64) -> UncertainTable {
        UncertainTable::new(
            (0..n)
                .map(|i| {
                    ttk_uncertain::UncertainTuple::new(i as u64, (n - i) as f64, prob).unwrap()
                })
                .collect(),
            Vec::new(),
        )
        .unwrap()
    }

    #[test]
    fn prefix_equals_materialized_truncation() {
        let table = uniform_table(2000, 0.5);
        for (k, p_tau) in [(5usize, 1e-3), (20, 1e-3), (3, 0.05)] {
            let depth = scan_depth(&table, k, p_tau).unwrap();
            let truncated = table.truncate(depth);

            let mut source = TableSource::new(&table);
            let mut gate = ScanGate::new(k, p_tau).unwrap();
            let prefix = RankScan::new()
                .collect_prefix(&mut source, &mut gate)
                .unwrap();

            assert_eq!(prefix.depth(), depth);
            assert_eq!(prefix.table.len(), truncated.len());
            for pos in 0..depth {
                assert_eq!(prefix.table.tuple(pos), truncated.tuple(pos));
                assert_eq!(
                    prefix.table.group_members(pos),
                    truncated.group_members(pos)
                );
            }
        }
    }

    #[test]
    fn scan_over_read_is_bounded_by_the_block_ask() {
        let table = uniform_table(5000, 0.8);
        let k = 10;
        let p_tau = 1e-3;
        let depth = scan_depth(&table, k, p_tau).unwrap();
        assert!(depth < table.len(), "workload must stop early");

        let mut source = CountingSource::new(TableSource::new(&table));
        let mut gate = ScanGate::new(k, p_tau).unwrap();
        let prefix = RankScan::new()
            .collect_prefix(&mut source, &mut gate)
            .unwrap();

        assert_eq!(prefix.depth(), depth);
        assert!(!prefix.exhausted);
        // Every pulled tuple is accounted for: the admitted prefix, one
        // rejected look-ahead, and the unconsumed surplus of the last block.
        assert_eq!(source.pulled(), prefix.pulled);
        assert_eq!(prefix.pulled, depth + 1 + prefix.surplus.len());
        assert!(
            prefix.surplus.len() < MAX_BLOCK_TUPLES,
            "surplus {} must stay under the largest block ask",
            prefix.surplus.len()
        );
    }

    #[test]
    fn block_scan_matches_the_tuple_at_a_time_scan() {
        /// Degrades every block ask to a single tuple, forcing the exact
        /// pre-block pull pattern.
        struct OneAtATime<S>(S);
        impl<S: TupleSource> TupleSource for OneAtATime<S> {
            fn next_tuple(&mut self) -> ttk_uncertain::Result<Option<SourceTuple>> {
                self.0.next_tuple()
            }
            fn next_block(
                &mut self,
                _max: usize,
            ) -> ttk_uncertain::Result<Option<ttk_uncertain::TupleBlock>> {
                self.0.next_block(1)
            }
        }

        let table = uniform_table(3000, 0.7);
        for (k, p_tau) in [(5usize, 1e-3), (12, 0.01)] {
            let mut gate = ScanGate::new(k, p_tau).unwrap();
            let blocked = RankScan::new()
                .collect_prefix(&mut TableSource::new(&table), &mut gate)
                .unwrap();
            let mut gate = ScanGate::new(k, p_tau).unwrap();
            let scalar = RankScan::new()
                .collect_prefix(&mut OneAtATime(TableSource::new(&table)), &mut gate)
                .unwrap();
            assert_eq!(blocked.depth(), scalar.depth());
            assert_eq!(blocked.table.tuples(), scalar.table.tuples());
            assert_eq!(blocked.keys, scalar.keys);
            assert_eq!(blocked.pending, scalar.pending);
            assert!(scalar.surplus.is_empty(), "unit blocks leave no surplus");
        }
    }

    #[test]
    fn into_full_table_splices_prefix_lookahead_and_remainder() {
        // ME groups straddle the scan bound: members 150 apart.
        let mut builder = UncertainTable::builder();
        for i in 0..600u64 {
            builder.push(ttk_uncertain::UncertainTuple::new(i, (600 - i) as f64, 0.3).unwrap());
        }
        for g in 0..150u64 {
            builder.add_me_rule([g, g + 150, g + 300]);
        }
        let table = builder.build().unwrap();

        let mut source = TableSource::new(&table);
        let mut gate = ScanGate::new(3, 1e-3).unwrap();
        let prefix = RankScan::new()
            .collect_prefix(&mut source, &mut gate)
            .unwrap();
        assert!(!prefix.exhausted);
        assert!(prefix.pending.is_some());
        assert!(prefix.depth() < table.len());

        let full = prefix.into_full_table(&mut source).unwrap();
        assert_eq!(full.len(), table.len());
        for pos in 0..table.len() {
            assert_eq!(full.tuple(pos), table.tuple(pos));
            assert_eq!(
                full.group_members(pos),
                table.group_members(pos),
                "group members at position {pos}"
            );
        }

        // Exhausted prefixes return their table unchanged.
        let small = uniform_table(10, 0.5);
        let mut source = TableSource::new(&small);
        let mut gate = ScanGate::new(2, 1e-3).unwrap();
        let prefix = RankScan::new()
            .collect_prefix(&mut source, &mut gate)
            .unwrap();
        assert!(prefix.exhausted);
        let full = prefix.into_full_table(&mut source).unwrap();
        assert_eq!(full.len(), 10);
    }

    #[test]
    fn exhausted_streams_are_flagged() {
        let table = uniform_table(20, 0.5);
        let mut source = TableSource::new(&table);
        let mut gate = ScanGate::new(5, 1e-3).unwrap();
        let prefix = RankScan::new()
            .collect_prefix(&mut source, &mut gate)
            .unwrap();
        assert!(prefix.exhausted);
        assert_eq!(prefix.depth(), 20);
        assert_eq!(prefix.pulled, 20);
    }

    #[test]
    fn scratch_buffers_are_reusable_across_queries() {
        let big = uniform_table(1000, 0.9);
        let small = uniform_table(15, 0.4);
        let mut scan = RankScan::new();
        for (table, k) in [(&big, 3usize), (&small, 2), (&big, 8)] {
            let mut source = TableSource::new(table);
            let mut gate = ScanGate::new(k, 1e-3).unwrap();
            let prefix = scan.collect_prefix(&mut source, &mut gate).unwrap();
            assert_eq!(prefix.depth(), scan_depth(table, k, 1e-3).unwrap());
        }
    }
}
