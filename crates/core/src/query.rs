//! High-level query interface.
//!
//! [`TopkQuery`] bundles every knob of the paper's proposal — the query size
//! `k`, the number of typical answers `c`, the probability threshold pτ, the
//! line-coalescing budget and the algorithm choice — and a [`Session`]
//! (driving the [`Executor`] engine defined here) runs the whole pipeline:
//! score distribution → c-Typical-Topk selection → U-Topk comparison point.
//! This is the API the examples, the CLI and the probabilistic-database
//! layer (`ttk-pdb`) build on.
//!
//! Every algorithm choice runs through the same streaming front end: the
//! input — an in-memory table or any [`TupleSource`] — is pulled through a
//! Theorem-2 [`ScanGate`] by the rank-scan executor, and only the admitted
//! prefix reaches the algorithm. The [`Executor`] owns the scan's scratch
//! buffers so serving many queries does not reallocate per query.
//!
//! **Use the unified API.** The per-shape entry points of earlier releases
//! (`execute`, `execute_source`, `execute_shards`, `execute_batch`,
//! `execute_batch_sources`) have been removed: wrap the input in a
//! [`Dataset`] and run it through a [`Session`] instead — one seam for
//! every physical input, with plan-once/run-many caching, cost-ordered
//! batches and `explain`.

use std::time::{Duration, Instant};

use ttk_uncertain::{
    CoalescePolicy, Error, Result, ScoreDistribution, TableSource, TupleSource, UncertainTable,
};

use crate::baselines::exhaustive::exhaustive_topk_distribution;
use crate::baselines::u_topk::{u_topk, UTopkAnswer, UTopkConfig};
use crate::dp::{topk_from_prefix, MainConfig, MeStrategy};
use crate::k_combo::k_combo_on_prefix;
use crate::scan::RankScan;
use crate::scan_depth::{GateMeter, ScanGate};
use crate::state_expansion::{state_expansion_on_prefix, NaiveConfig};
use crate::typical::{typical_topk, TypicalSelection};

// The unified execution API lives in [`crate::session`]; re-exported here so
// the successor types sit next to the entry points they replace.
pub use crate::session::{Dataset, Session};

/// Which algorithm computes the score distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The main dynamic-programming algorithm (§3.2–3.4) with the lead-region
    /// refinement for ME groups. This is the default.
    #[default]
    Main,
    /// The main algorithm with the simpler per-ending decomposition (§3.3.2);
    /// slower but useful for ablation.
    MainPerEnding,
    /// The StateExpansion baseline (Figure 4).
    StateExpansion,
    /// The k-Combo baseline (§3.1).
    KCombo,
    /// Exhaustive possible-world enumeration (tiny tables only).
    Exhaustive,
}

/// A fully specified typical top-k query.
#[derive(Debug, Clone, Copy)]
pub struct TopkQuery {
    /// Number of tuples per answer vector.
    pub k: usize,
    /// Number of typical vectors to return (the `c` of c-Typical-Topk).
    pub typical_count: usize,
    /// Probability threshold pτ: vectors less likely than this may be
    /// ignored (drives the Theorem-2 scan depth and state pruning).
    pub p_tau: f64,
    /// Maximum number of lines kept in any distribution (0 = exact).
    pub max_lines: usize,
    /// How coalesced lines combine.
    pub coalesce_policy: CoalescePolicy,
    /// Algorithm used to compute the score distribution.
    pub algorithm: Algorithm,
    /// Whether the U-Topk comparison answer is also computed.
    pub compute_u_topk: bool,
    /// Upper bound on possible worlds for [`Algorithm::Exhaustive`].
    pub world_limit: u128,
}

impl TopkQuery {
    /// A query with the defaults used throughout the paper's evaluation:
    /// `c = 3`, pτ = 10⁻³, at most 200 lines, main algorithm, U-Topk
    /// comparison enabled.
    pub fn new(k: usize) -> Self {
        TopkQuery {
            k,
            typical_count: 3,
            p_tau: 1e-3,
            max_lines: 200,
            coalesce_policy: CoalescePolicy::PaperMean,
            algorithm: Algorithm::Main,
            compute_u_topk: true,
            world_limit: 1 << 22,
        }
    }

    /// Sets the query size k (handy for fanning one parameter set across a
    /// batch of k values).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the number of typical answers.
    pub fn with_typical_count(mut self, c: usize) -> Self {
        self.typical_count = c;
        self
    }

    /// Sets the probability threshold pτ.
    pub fn with_p_tau(mut self, p_tau: f64) -> Self {
        self.p_tau = p_tau;
        self
    }

    /// Sets the line-coalescing budget (0 keeps every line).
    pub fn with_max_lines(mut self, max_lines: usize) -> Self {
        self.max_lines = max_lines;
        self
    }

    /// Sets the coalescing policy.
    pub fn with_coalesce_policy(mut self, policy: CoalescePolicy) -> Self {
        self.coalesce_policy = policy;
        self
    }

    /// Sets the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enables or disables the U-Topk comparison answer.
    pub fn with_u_topk(mut self, compute: bool) -> Self {
        self.compute_u_topk = compute;
        self
    }
}

/// The complete answer to a [`TopkQuery`].
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The score distribution of top-k vectors (usage (1) of §2.2).
    pub distribution: ScoreDistribution,
    /// The c-Typical-Topk selection (usage (2) of §2.2).
    pub typical: TypicalSelection,
    /// The U-Topk answer, when requested and when one exists.
    pub u_topk: Option<UTopkAnswer>,
    /// Scan depth n used by the distribution algorithm (Theorem 2); zero for
    /// the exhaustive algorithm.
    pub scan_depth: usize,
    /// Wall-clock time spent computing the distribution (excludes U-Topk).
    pub distribution_time: Duration,
    /// Wall-clock time spent selecting typical answers.
    pub typical_time: Duration,
}

impl QueryAnswer {
    /// Expected total score of the top-k vectors.
    pub fn expected_score(&self) -> f64 {
        self.distribution.expected_score()
    }

    /// Convenience accessor: where does the U-Topk score fall within the
    /// distribution? Returns the normalized CDF value at the U-Topk score,
    /// or `None` when U-Topk was not computed. Values close to 0 or 1 mean
    /// the U-Topk answer is atypical.
    pub fn u_topk_percentile(&self) -> Option<f64> {
        let answer = self.u_topk.as_ref()?;
        let total = self.distribution.total_probability();
        if total <= 0.0 {
            return None;
        }
        Some(self.distribution.cdf(answer.vector.total_score()) / total)
    }
}

/// A reusable query executor.
///
/// An `Executor` owns the streaming rank scan and one [`ScanGate`] that is
/// re-armed per query, so a long-lived serving process (or a batch worker
/// thread) keeps the gate's group-mass table allocation across queries.
/// Every execution — regardless of the [`Algorithm`] chosen — flows through
/// [`TupleSource`] + [`ScanGate`]: the gate implements Theorem 2 for the
/// four bounded algorithms and stays open for the exhaustive ground truth,
/// which simply needs the entire stream.
#[derive(Debug)]
pub struct Executor {
    scan: RankScan,
    gate: ScanGate,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            scan: RankScan::new(),
            gate: ScanGate::open(),
        }
    }
}

impl Executor {
    /// Creates an executor with empty scratch buffers.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Executes a query against an in-memory table.
    ///
    /// The score distribution is computed through the streaming scan; the
    /// U-Topk comparison answer (when requested) searches the full table,
    /// matching the classical semantics.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the underlying algorithms
    /// (`k == 0`, pτ out of range, `typical_count == 0`, too many possible
    /// worlds for the exhaustive algorithm, …).
    pub fn execute(&mut self, table: &UncertainTable, query: &TopkQuery) -> Result<QueryAnswer> {
        let mut source = TableSource::new(table);
        self.run_source(&mut source, query, Some(table))
    }

    /// Kernel of the streaming execution path: pulls `source`
    /// through the Theorem-2 gate and runs the selected algorithm on the
    /// admitted prefix. `full_table` enables the direct U-Topk search when
    /// the caller holds the materialized table.
    pub(crate) fn run_source(
        &mut self,
        source: &mut dyn TupleSource,
        query: &TopkQuery,
        full_table: Option<&UncertainTable>,
    ) -> Result<QueryAnswer> {
        self.run_source_metered(source, query, full_table, None)
    }

    /// [`Executor::run_source`] with an optional [`GateMeter`] attached to
    /// the Theorem-2 gate for the duration of the scan, so a concurrent
    /// observer (the remote pushdown plumbing) can watch the accumulated
    /// probability mass tighten as tuples are admitted.
    pub(crate) fn run_source_metered(
        &mut self,
        source: &mut dyn TupleSource,
        query: &TopkQuery,
        full_table: Option<&UncertainTable>,
        meter: Option<GateMeter>,
    ) -> Result<QueryAnswer> {
        if query.typical_count == 0 {
            return Err(Error::InvalidParameter(
                "the number of typical answers c must be at least 1".into(),
            ));
        }
        if query.k == 0 {
            return Err(Error::InvalidParameter("k must be at least 1".into()));
        }
        let start = Instant::now();
        match query.algorithm {
            Algorithm::Exhaustive => self.gate.reset_open(),
            _ => self.gate.reset(query.k, query.p_tau)?,
        }
        self.gate.set_meter(meter);
        let prefix = self.scan.collect_prefix(source, &mut self.gate)?;
        let (distribution, scan_depth) = match query.algorithm {
            Algorithm::Main | Algorithm::MainPerEnding => {
                let config = MainConfig {
                    p_tau: query.p_tau,
                    max_lines: query.max_lines,
                    coalesce_policy: query.coalesce_policy,
                    track_witnesses: true,
                    me_strategy: if query.algorithm == Algorithm::Main {
                        MeStrategy::LeadRegions
                    } else {
                        MeStrategy::PerEnding
                    },
                };
                let out = topk_from_prefix(&prefix, query.k, &config)?;
                (out.distribution, out.scan_depth)
            }
            Algorithm::StateExpansion | Algorithm::KCombo => {
                let config = NaiveConfig {
                    p_tau: query.p_tau,
                    max_lines: query.max_lines,
                    coalesce_policy: query.coalesce_policy,
                    track_witnesses: true,
                };
                let out = if query.algorithm == Algorithm::StateExpansion {
                    state_expansion_on_prefix(&prefix.table, query.k, &config)
                } else {
                    k_combo_on_prefix(&prefix.table, query.k, &config)
                };
                (out.distribution, out.scan_depth)
            }
            Algorithm::Exhaustive => {
                let dist = exhaustive_topk_distribution(&prefix.table, query.k, query.world_limit)?;
                (dist, prefix.depth())
            }
        };
        let distribution_time = start.elapsed();

        if distribution.is_empty() {
            return Err(Error::InvalidParameter(format!(
                "the table admits no top-{} vector (fewer than k compatible tuples)",
                query.k
            )));
        }

        let typical_start = Instant::now();
        let typical = typical_topk(&distribution, query.typical_count)?;
        let typical_time = typical_start.elapsed();

        let u_topk_answer = if query.compute_u_topk {
            match full_table {
                Some(table) => u_topk(table, query.k, &UTopkConfig::default())?,
                None => {
                    // Theorem 2 does not bound U-Topk (it has no probability
                    // threshold), so honour the classical semantics by
                    // draining the rest of the stream — mirroring
                    // `u_topk_streamed` rather than silently searching only
                    // the pτ prefix.
                    let full = prefix.into_full_table(source)?;
                    u_topk(&full, query.k, &UTopkConfig::default())?
                }
            }
        } else {
            None
        };

        Ok(QueryAnswer {
            distribution,
            typical,
            u_topk: u_topk_answer,
            scan_depth,
            distribution_time,
            typical_time,
        })
    }
}

/// Resolves a thread-count request (`0` = one per available CPU) against the
/// number of jobs.
pub(crate) fn resolve_threads(threads: usize, jobs: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::TupleId;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_soldier_query() {
        let table = soldier_table();
        let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
        let answer = Executor::new().execute(&table, &query).unwrap();
        assert!((answer.expected_score() - 164.1).abs() < 0.05);
        assert_eq!(answer.typical.scores(), vec![118.0, 183.0, 235.0]);
        let u = answer.u_topk.as_ref().unwrap();
        assert_eq!(u.vector.ids(), &[TupleId(2), TupleId(6)]);
        // The U-Top2 score of 118 sits in the lowest quarter of the
        // distribution — the "atypical" observation of §1.
        assert!(answer.u_topk_percentile().unwrap() < 0.25);
        assert!(answer.scan_depth == table.len());
    }

    #[test]
    fn all_algorithms_agree_on_expected_score() {
        let table = soldier_table();
        let mut expected = Vec::new();
        for algorithm in [
            Algorithm::Main,
            Algorithm::MainPerEnding,
            Algorithm::StateExpansion,
            Algorithm::KCombo,
            Algorithm::Exhaustive,
        ] {
            let query = TopkQuery::new(2)
                .with_p_tau(1e-9)
                .with_max_lines(0)
                .with_algorithm(algorithm)
                .with_u_topk(false);
            let answer = Executor::new().execute(&table, &query).unwrap();
            expected.push(answer.expected_score());
        }
        for pair in expected.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-6, "{expected:?}");
        }
    }

    #[test]
    fn builder_methods_set_fields() {
        let q = TopkQuery::new(7)
            .with_typical_count(5)
            .with_p_tau(0.01)
            .with_max_lines(64)
            .with_coalesce_policy(CoalescePolicy::WeightedMean)
            .with_algorithm(Algorithm::KCombo)
            .with_u_topk(false);
        assert_eq!(q.k, 7);
        assert_eq!(q.typical_count, 5);
        assert_eq!(q.p_tau, 0.01);
        assert_eq!(q.max_lines, 64);
        assert_eq!(q.coalesce_policy, CoalescePolicy::WeightedMean);
        assert_eq!(q.algorithm, Algorithm::KCombo);
        assert!(!q.compute_u_topk);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let table = soldier_table();
        assert!(Executor::new().execute(&table, &TopkQuery::new(0)).is_err());
        assert!(Executor::new()
            .execute(&table, &TopkQuery::new(2).with_typical_count(0))
            .is_err());
        // k larger than the table can support.
        assert!(Executor::new()
            .execute(&table, &TopkQuery::new(10))
            .is_err());
    }

    #[test]
    fn typical_answers_lie_inside_the_distribution_span() {
        let table = soldier_table();
        let answer = Executor::new().execute(&table, &TopkQuery::new(3)).unwrap();
        let lo = answer.distribution.min_score().unwrap();
        let hi = answer.distribution.max_score().unwrap();
        for score in answer.typical.scores() {
            assert!(score >= lo && score <= hi);
        }
    }
}
