//! The server side of scan-gate pushdown: one accepted `serve-shard`
//! connection, negotiated and driven end to end.
//!
//! [`serve_stream`] owns the protocol decision the wire layer documents: a
//! v3 pushdown client speaks first (a query frame right after connecting),
//! so the server peeks the socket under a short grace window. Data waiting
//! → read the query, answer with a v3 hello and stream only the
//! [`ShardScanGate`]-bounded prefix, draining client bound updates
//! mid-replay and closing with a stopped-at trailer. Silence → the peer is
//! a v1/v2 client; serve the full replay exactly as previous releases did.
//!
//! The function is transport-specific (`TcpStream`) because the negotiation
//! is: it needs `peek`, read timeouts, and an independently readable clone
//! of the write half. Everything protocol-level (frames, gates) lives in
//! `ttk_uncertain::wire` and [`crate::scan_depth`].

use std::io::{BufWriter, Read};
use std::net::TcpStream;
use std::time::Duration;

use ttk_uncertain::wire::{self, ControlFrame, ControlParser, PushdownQuery, StoppedAt};
use ttk_uncertain::{Error, Result, ShardAssignment, TupleBlock, TupleSource, WireWriter};

use crate::scan_depth::ShardScanGate;

/// How a [`serve_stream`] replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The shard source was drained to its end.
    Exhausted,
    /// The server-side [`ShardScanGate`] proved no later tuple can be in the
    /// merge-side Theorem-2 prefix.
    Gate,
    /// The client hung up (or its socket died) before the replay finished.
    ClientGone,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Exhausted => "exhausted",
            StopReason::Gate => "gate",
            StopReason::ClientGone => "client-gone",
        })
    }
}

/// What one connection's replay amounted to — the per-connection summary
/// the `serve-shard` daemon logs, and what the pushdown tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Rows pulled from the shard source.
    pub scanned: u64,
    /// Tuples framed onto the wire.
    pub shipped: u64,
    /// Why the replay stopped.
    pub reason: StopReason,
    /// Whether the connection negotiated v3 pushdown.
    pub pushdown: bool,
    /// Bytes framed onto the wire (length prefixes included); best-effort
    /// on [`StopReason::ClientGone`], exact otherwise.
    pub wire_bytes: u64,
}

/// Knobs for [`serve_stream`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long to wait for a client query frame before falling back to the
    /// full v1/v2 replay.
    pub pushdown_wait: Duration,
    /// Drain client bound updates every this many shipped tuples.
    pub drain_every: u64,
    /// Most tuples packed into one block frame when the client negotiates
    /// columnar blocks (the effective size is the smaller of this and the
    /// client's announced maximum). Per-tuple clients are unaffected.
    pub block_tuples: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            pushdown_wait: Duration::from_millis(25),
            drain_every: 64,
            block_tuples: 512,
        }
    }
}

/// Serves one accepted shard connection: negotiates the protocol version as
/// described in the module doc, replays `source` (fully, or up to the
/// conservative per-shard Theorem-2 bound), and reports what happened.
///
/// A vanished client is a normal outcome ([`StopReason::ClientGone`]), not
/// an error; errors are reserved for a failing `source` (forwarded to the
/// peer as an error frame first) and for protocol violations.
///
/// # Errors
///
/// [`Error::Source`] on a source failure, a malformed query frame, or local
/// socket configuration failures.
pub fn serve_stream(
    stream: TcpStream,
    source: &mut dyn TupleSource,
    assignment: Option<&ShardAssignment>,
    options: &ServeOptions,
) -> Result<ServeSummary> {
    stream.set_nonblocking(false).map_err(|e| io_config(&e))?;
    stream
        .set_read_timeout(Some(options.pushdown_wait.max(Duration::from_millis(1))))
        .map_err(|e| io_config(&e))?;
    let mut peek = [0u8; 1];
    match stream.peek(&mut peek) {
        // The client connected and hung up before saying anything.
        Ok(0) => Ok(ServeSummary {
            scanned: 0,
            shipped: 0,
            reason: StopReason::ClientGone,
            pushdown: false,
            wire_bytes: 0,
        }),
        Ok(_) => serve_pushdown(stream, source, assignment, options),
        Err(e) if would_block(&e) => serve_legacy(stream, source, assignment),
        Err(_) => Ok(ServeSummary {
            scanned: 0,
            shipped: 0,
            reason: StopReason::ClientGone,
            pushdown: false,
            wire_bytes: 0,
        }),
    }
}

fn io_config(e: &std::io::Error) -> Error {
    Error::Source(format!("serve-stream socket configuration: {e}"))
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The pre-v3 serving path: full replay behind the v1/v2 hello, bit-exactly
/// what previous releases sent. A peer write failure means the client went
/// away, which is a summary, not an error.
fn serve_legacy(
    stream: TcpStream,
    source: &mut dyn TupleSource,
    assignment: Option<&ShardAssignment>,
) -> Result<ServeSummary> {
    stream.set_read_timeout(None).map_err(|e| io_config(&e))?;
    let hint = source.size_hint();
    let buffered = BufWriter::new(stream);
    let writer = match assignment {
        Some(assignment) => WireWriter::with_assignment(buffered, hint, assignment),
        None => WireWriter::new(buffered, hint),
    };
    let mut writer = match writer {
        Ok(writer) => writer,
        Err(_) => {
            return Ok(ServeSummary {
                scanned: 0,
                shipped: 0,
                reason: StopReason::ClientGone,
                pushdown: false,
                wire_bytes: 0,
            })
        }
    };
    let mut shipped = 0u64;
    loop {
        match source.next_tuple() {
            Ok(Some(tuple)) => {
                if writer.write_tuple(&tuple).is_err() {
                    return Ok(ServeSummary {
                        scanned: shipped + 1,
                        shipped,
                        reason: StopReason::ClientGone,
                        pushdown: false,
                        wire_bytes: writer.bytes_written(),
                    });
                }
                shipped += 1;
            }
            Ok(None) => {
                let sent = writer.bytes_written();
                let (reason, wire_bytes) = match writer.finish() {
                    Ok(total) => (StopReason::Exhausted, total),
                    Err(_) => (StopReason::ClientGone, sent),
                };
                return Ok(ServeSummary {
                    scanned: shipped,
                    shipped,
                    reason,
                    pushdown: false,
                    wire_bytes,
                });
            }
            Err(error) => {
                let _ = writer.fail(&error.to_string());
                return Err(error);
            }
        }
    }
}

/// The v3 query-mode path: read the query frame, answer with the v3 hello,
/// replay through a [`ShardScanGate`] while draining bound updates off the
/// client half of the socket, and close with the stopped-at trailer.
///
/// A client that announced block capability (the kind-19 query frame) gets
/// the same gated prefix packed into kind-20 block frames; the gate still
/// admits tuple by tuple, so scanned/shipped counts and the stopping point
/// are identical to the per-tuple path.
fn serve_pushdown(
    stream: TcpStream,
    source: &mut dyn TupleSource,
    assignment: Option<&ShardAssignment>,
    options: &ServeOptions,
) -> Result<ServeSummary> {
    // The query frame is already (at least partially) in the receive buffer;
    // keep the grace-window timeout for the remainder rather than blocking
    // forever on a half-written frame from a dying client.
    let (query, max_block) = wire::read_query_negotiated(&mut (&stream))?;
    let mut gate = match query.k {
        0 => None,
        k => Some(ShardScanGate::new(k as usize, query.p_tau)?),
    };
    let block_cap = max_block.map(|m| (m as usize).min(options.block_tuples.max(1)));

    // Bound updates are drained with tiny timed reads mid-replay.
    stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .map_err(|e| io_config(&e))?;
    let read_half = stream.try_clone().map_err(|e| io_config(&e))?;
    let writer = WireWriter::v3(BufWriter::new(stream), source.size_hint(), assignment);
    let mut writer = match writer {
        Ok(writer) => writer,
        Err(_) => {
            return Ok(ServeSummary {
                scanned: 0,
                shipped: 0,
                reason: StopReason::ClientGone,
                pushdown: true,
                wire_bytes: 0,
            })
        }
    };

    let mut parser = ControlParser::new();
    let mut updates_dead = false;
    let mut scanned = 0u64;
    let mut shipped = 0u64;
    let mut block = TupleBlock::default();
    let mut reason = loop {
        let tuple = match source.next_tuple() {
            Ok(Some(tuple)) => tuple,
            Ok(None) => break StopReason::Exhausted,
            Err(error) => {
                let _ = writer.fail(&error.to_string());
                return Err(error);
            }
        };
        scanned += 1;
        if let Some(gate) = &mut gate {
            if !gate.admit(tuple.tuple.score(), tuple.tuple.prob(), tuple.group) {
                break StopReason::Gate;
            }
        }
        match block_cap {
            None => {
                if writer.write_tuple(&tuple).is_err() {
                    break StopReason::ClientGone;
                }
            }
            Some(cap) => {
                block.push(&tuple);
                if block.len() >= cap {
                    if writer.write_block(&block).is_err() {
                        break StopReason::ClientGone;
                    }
                    block.clear();
                }
            }
        }
        shipped += 1;
        if !updates_dead && shipped.is_multiple_of(options.drain_every) {
            match drain_bounds(&read_half, &mut parser, gate.as_mut()) {
                Ok(false) => {}
                Ok(true) => break StopReason::ClientGone,
                Err(_) => updates_dead = true,
            }
        }
    };

    // Flush the partially filled block before the trailer, so the shipped
    // count the trailer reports is exactly what crossed the wire.
    if reason != StopReason::ClientGone && !block.is_empty() && writer.write_block(&block).is_err()
    {
        reason = StopReason::ClientGone;
    }
    let mut wire_bytes = writer.bytes_written();
    if reason != StopReason::ClientGone {
        let trailer = StoppedAt {
            scanned,
            shipped,
            gate_limited: reason == StopReason::Gate,
        };
        if writer.write_stopped(&trailer).is_err() {
            reason = StopReason::ClientGone;
        } else {
            match writer.finish() {
                Ok(total) => wire_bytes = total,
                Err(_) => reason = StopReason::ClientGone,
            }
        }
    }
    Ok(ServeSummary {
        scanned,
        shipped,
        reason,
        pushdown: true,
        wire_bytes,
    })
}

/// Reads whatever control bytes are waiting (bounded by the 1 ms read
/// timeout), feeds complete bound frames into the gate, and reports whether
/// the client closed its half of the socket.
fn drain_bounds(
    read_half: &TcpStream,
    parser: &mut ControlParser,
    mut gate: Option<&mut ShardScanGate>,
) -> Result<bool> {
    let mut buf = [0u8; 256];
    loop {
        match (&mut (&*read_half)).read(&mut buf) {
            Ok(0) => return Ok(true),
            Ok(n) => {
                parser.extend(&buf[..n]);
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if would_block(&e) => break,
            Err(e) => return Err(Error::Source(format!("draining bound updates: {e}"))),
        }
    }
    while let Some(frame) = parser.next_frame()? {
        match frame {
            ControlFrame::Bound(mass) => {
                if let Some(gate) = gate.as_deref_mut() {
                    gate.update_remote_mass(mass);
                }
            }
        }
    }
    Ok(false)
}

/// The [`PushdownQuery`] a client announces for a given query shape:
/// `k == 0` (stream everything) when the consumer needs the full stream
/// (U-Topk witnesses, exhaustive enumeration), the real Theorem-2
/// parameters otherwise.
pub fn pushdown_query(k: usize, p_tau: f64, full_stream: bool) -> PushdownQuery {
    if full_stream {
        PushdownQuery { k: 0, p_tau: 0.0 }
    } else {
        PushdownQuery { k: k as u64, p_tau }
    }
}
