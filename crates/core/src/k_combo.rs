//! The k-Combo baseline algorithm (§3.1).
//!
//! k-Combo iterates over all k-combinations of the first `n` rank-ordered
//! tuples (`n` given by Theorem 2), skips combinations that violate a mutual
//! exclusion rule, and computes for each remaining combination the
//! probability that it is the top-k prefix of a possible world. Its cost is
//! O(n^k); like StateExpansion it exists as a baseline for the main
//! algorithm. Combinations whose partial probability already fell to pτ or
//! below are pruned, which matches the threshold semantics used throughout
//! the paper (a top-k vector with probability below pτ need not be
//! reported).

use ttk_uncertain::{
    Error, Result, ScoreDistribution, TableSource, TupleSource, UncertainTable, VectorWitness,
};

use crate::scan::RankScan;
use crate::scan_depth::ScanGate;
use crate::state_expansion::{BaselineOutput, NaiveConfig};

/// Runs k-Combo and returns the top-k score distribution.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `k == 0` or an out-of-range pτ.
pub fn k_combo(table: &UncertainTable, k: usize, config: &NaiveConfig) -> Result<BaselineOutput> {
    k_combo_streamed(&mut TableSource::new(table), k, config)
}

/// Runs k-Combo against a rank-ordered [`TupleSource`], reading at most one
/// tuple past the Theorem-2 bound.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for invalid parameters and propagates
/// source errors.
pub fn k_combo_streamed(
    source: &mut dyn TupleSource,
    k: usize,
    config: &NaiveConfig,
) -> Result<BaselineOutput> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut gate = ScanGate::new(k, config.p_tau)?;
    let prefix = RankScan::new().collect_prefix(source, &mut gate)?;
    Ok(k_combo_on_prefix(&prefix.table, k, config))
}

/// The combination enumeration over an already-collected Theorem-2 prefix.
pub(crate) fn k_combo_on_prefix(
    table: &UncertainTable,
    k: usize,
    config: &NaiveConfig,
) -> BaselineOutput {
    let depth = table.len();
    let mut ctx = Context {
        table,
        k,
        config,
        depth,
        dist: ScoreDistribution::empty(),
        explored: 0,
        chosen: Vec::with_capacity(k),
    };
    if depth >= k {
        ctx.recurse(0, 1.0, 0.0);
    }
    let mut dist = ctx.dist;
    if config.max_lines > 0 {
        dist.coalesce(config.max_lines, config.coalesce_policy);
    }
    BaselineOutput {
        distribution: dist,
        scan_depth: depth,
        explored: ctx.explored,
    }
}

struct Context<'a> {
    table: &'a UncertainTable,
    k: usize,
    config: &'a NaiveConfig,
    depth: usize,
    dist: ScoreDistribution,
    explored: u64,
    /// Positions chosen so far (ascending).
    chosen: Vec<usize>,
}

impl Context<'_> {
    /// Depth-first enumeration of combinations. `selected_prob` is the
    /// product of the membership probabilities of the chosen tuples — an
    /// upper bound on the probability of any completed combination, used for
    /// pτ pruning. `score` is the accumulated total score.
    fn recurse(&mut self, next: usize, selected_prob: f64, score: f64) {
        if self.chosen.len() == self.k {
            self.explored += 1;
            self.emit(selected_prob, score);
            return;
        }
        let remaining_needed = self.k - self.chosen.len();
        // `pos` can go up to depth - remaining_needed.
        for pos in next..=self.depth.saturating_sub(remaining_needed) {
            if !self.violates_me(pos) {
                let p = self.table.tuple(pos).prob();
                let new_prob = selected_prob * p;
                if new_prob > self.config.p_tau || self.config.p_tau <= 0.0 {
                    self.chosen.push(pos);
                    self.recurse(pos + 1, new_prob, score + self.table.tuple(pos).score());
                    self.chosen.pop();
                }
            }
            // Skipping past a certain tuple (probability one) that no chosen
            // tuple excludes makes every later combination impossible — the
            // certain tuple would have to be absent. Stop extending here.
            if self.table.tuple(pos).probability().is_certain() && !self.violates_me(pos) {
                break;
            }
        }
    }

    /// True when `pos` shares an ME group with an already chosen position.
    fn violates_me(&self, pos: usize) -> bool {
        let group = self.table.group_index(pos);
        self.chosen
            .iter()
            .any(|&c| self.table.group_index(c) == group)
    }

    /// Computes the exact probability of the completed combination and adds
    /// it to the distribution.
    ///
    /// The probability that the chosen combination `C` is the top-k prefix is
    ///
    /// ```text
    /// ∏_{t ∈ C} p_t · ∏_{g without a member in C} (1 − Σ_{u ∈ g, rank(u) < rank(last(C))} p_u)
    /// ```
    ///
    /// Groups that contributed a member to `C` need no factor for their
    /// remaining members: those are automatically absent because the members
    /// of an ME group are disjoint events.
    fn emit(&mut self, selected_prob: f64, score: f64) {
        let last = *self.chosen.last().expect("k >= 1");
        let mut probability = selected_prob;
        // One exclusion factor per ME group without a chosen member; the
        // factor is applied when the group's lead (highest-ranked) member is
        // visited, which is necessarily below `last` whenever any member is.
        for pos in 0..last {
            if !self.table.is_lead(pos) {
                continue;
            }
            let group = self.table.group_index(pos);
            if self
                .chosen
                .iter()
                .any(|&c| self.table.group_index(c) == group)
            {
                continue;
            }
            let mass: f64 = self
                .table
                .group_positions(group)
                .iter()
                .filter(|&&m| m < last)
                .map(|&m| self.table.tuple(m).prob())
                .sum();
            probability *= (1.0 - mass).max(0.0);
            if probability <= 0.0 {
                return;
            }
        }
        if probability <= self.config.p_tau && self.config.p_tau > 0.0 {
            return;
        }
        let witness = self.config.track_witnesses.then(|| VectorWitness {
            ids: self
                .chosen
                .iter()
                .map(|&p| self.table.tuple(p).id())
                .collect(),
            probability,
        });
        self.dist.add_mass(score, probability, witness);
        if self.config.max_lines > 0 {
            self.dist
                .coalesce(self.config.max_lines, self.config.coalesce_policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::exact_topk_score_distribution;

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    fn exact_config() -> NaiveConfig {
        NaiveConfig {
            p_tau: 1e-12,
            max_lines: 0,
            ..NaiveConfig::default()
        }
    }

    fn assert_matches_exact(table: &UncertainTable, k: usize) {
        let exact = exact_topk_score_distribution(table, k, 1 << 22).unwrap();
        let got = k_combo(table, k, &exact_config()).unwrap();
        assert_eq!(
            got.distribution.len(),
            exact.len(),
            "k={k}: {:?} vs {:?}",
            got.distribution,
            exact
        );
        for (a, b) in got.distribution.points().iter().zip(exact.points()) {
            assert!((a.score - b.score).abs() < 1e-9);
            assert!(
                (a.probability - b.probability).abs() < 1e-9,
                "k={k} score {}: {} vs {}",
                a.score,
                a.probability,
                b.probability
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_soldier_table() {
        let table = soldier_table();
        for k in 1..=4 {
            assert_matches_exact(&table, k);
        }
    }

    #[test]
    fn matches_exhaustive_with_ties_and_groups() {
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 8.0, 0.3)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .tuple(4u64, 7.0, 0.6)
            .unwrap()
            .tuple(5u64, 7.0, 0.4)
            .unwrap()
            .tuple(6u64, 5.0, 0.7)
            .unwrap()
            .me_rule([2u64, 5])
            .me_rule([3u64, 6])
            .build()
            .unwrap();
        for k in 1..=4 {
            assert_matches_exact(&table, k);
        }
    }

    #[test]
    fn independent_tuples_match_exhaustive() {
        let table = UncertainTable::builder()
            .tuple(1u64, 40.0, 0.7)
            .unwrap()
            .tuple(2u64, 30.0, 0.5)
            .unwrap()
            .tuple(3u64, 20.0, 0.9)
            .unwrap()
            .tuple(4u64, 10.0, 0.4)
            .unwrap()
            .build()
            .unwrap();
        for k in 1..=3 {
            assert_matches_exact(&table, k);
        }
    }

    #[test]
    fn pruning_never_increases_captured_mass() {
        let table = soldier_table();
        let exact = k_combo(&table, 2, &exact_config()).unwrap();
        let pruned = k_combo(
            &table,
            2,
            &NaiveConfig {
                p_tau: 0.05,
                max_lines: 0,
                ..NaiveConfig::default()
            },
        )
        .unwrap();
        assert!(
            pruned.distribution.total_probability()
                <= exact.distribution.total_probability() + 1e-12
        );
        assert!(pruned.explored <= exact.explored);
    }

    #[test]
    fn rejects_k_zero_and_handles_small_tables() {
        let table = soldier_table();
        assert!(k_combo(&table, 0, &exact_config()).is_err());
        let tiny = UncertainTable::builder()
            .tuple(1u64, 5.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        let out = k_combo(&tiny, 3, &exact_config()).unwrap();
        assert!(out.distribution.is_empty());
    }
}
