//! # ttk-core — score distributions and typical answers for top-k queries on uncertain data
//!
//! This crate implements the algorithms of *Top-k Queries on Uncertain Data:
//! On Score Distribution and Typical Answers* (Ge, Zdonik, Madden — SIGMOD
//! 2009) on top of the [`ttk_uncertain`] data model:
//!
//! * [`mod@scan_depth`] — the Theorem-2 stopping condition bounding how many
//!   rank-ordered tuples any algorithm must read, both as a batch formula
//!   and as the incremental [`ScanGate`] consulted per streamed tuple.
//! * [`scan`] — the streaming rank-scan executor: pulls a
//!   [`TupleSource`](ttk_uncertain::TupleSource) through the gate and
//!   assembles the Theorem-2 prefix no algorithm ever reads past.
//! * [`dp`] — the main dynamic-programming algorithm for the top-k score
//!   distribution, with line coalescing (§3.2.1), mutual-exclusion handling
//!   via rule tuples and lead-tuple regions (§3.3), and score ties (§3.4).
//! * [`mod@state_expansion`] / [`mod@k_combo`] — the two naive baselines of §3.1.
//! * [`typical`] — the c-Typical-Topk selection dynamic program of §4.
//! * [`baselines`] — the comparator semantics U-Topk, U-kRanks and PT-k, and
//!   exhaustive possible-world ground truth.
//! * [`session`] — the unified execution API: a [`Dataset`] abstracts every
//!   physical input (in-memory table, owned stream, shard set, CSV via
//!   `ttk-pdb`, generator closure, remote shard servers) behind one
//!   `open()`, and a [`Session`] exposes exactly three verbs — `execute`,
//!   `execute_batch` (cost-ordered, optionally bounded-result-memory) and
//!   `explain` (now with observed-vs-estimated scan-depth drift).
//! * [`remote`] — [`RemoteShardDataset`]: shard streams decoded from other
//!   processes over the wire protocol of `ttk-uncertain`, merged (optionally
//!   prefetched, optionally together with local shards) into one scan; opens
//!   connections in v3 query mode so servers ship only the Theorem-2 prefix.
//! * [`serve`] — the server side of scan-gate pushdown: [`serve_stream`]
//!   negotiates v1/v2/v3 per connection and replays a shard through the
//!   conservative [`ShardScanGate`] bound.
//! * [`daemon`] — the shared daemon runtime all three serving binaries run
//!   on: listener setup with atomic port files, the non-blocking accept
//!   loop, a bounded worker pool with rendezvous handoff, saturation
//!   shedding, write-timeout stall protection, and signal/handler-requested
//!   draining — behind one small [`ConnectionHandler`] trait.
//! * [`registry`] — the state a query-serving daemon keeps resident: the
//!   named, `Arc`-shared [`DatasetRegistry`] and the sharded LRU
//!   [`ResultCache`] keyed on the full query shape ([`CacheKey`]),
//!   epoch-stamped so live appends invalidate cached answers.
//! * [`mod@query_serve`] — query serving itself: [`serve_client`] answers one
//!   connection from the registry/cache (queries, appends, standing
//!   subscriptions), [`RemoteQueryClient`] ships whole queries to a
//!   `ttk serve` daemon and decodes bit-identical answers.
//! * [`live`] — growing datasets: an [`AppendLog`] staging out-of-order
//!   appends and sealing them into immutable rank-ordered segments under
//!   epoch-numbered watermarked snapshots; [`LiveDataset`] opens any
//!   snapshot as a plain merged scan, so every other layer works unchanged.
//! * [`query`] — the query model ([`TopkQuery`], [`QueryAnswer`]) and the
//!   reusable [`Executor`] engine the session drives.
//!
//! ## Quick start
//!
//! ```
//! use ttk_core::{Dataset, Session, TopkQuery};
//! use ttk_uncertain::UncertainTable;
//!
//! // The soldier-monitoring example of the paper (Figure 1).
//! let table = UncertainTable::builder()
//!     .tuple(1u64, 49.0, 0.4)?
//!     .tuple(2u64, 60.0, 0.4)?
//!     .tuple(3u64, 110.0, 0.4)?
//!     .tuple(4u64, 80.0, 0.3)?
//!     .tuple(5u64, 56.0, 1.0)?
//!     .tuple(6u64, 58.0, 0.5)?
//!     .tuple(7u64, 125.0, 0.3)?
//!     .me_rule([2u64, 4, 7])
//!     .me_rule([3u64, 6])
//!     .build()?;
//!
//! let dataset = Dataset::table(table);
//! let mut session = Session::new();
//! let query = TopkQuery::new(2).with_p_tau(1e-9).with_max_lines(0);
//! let answer = session.execute(&dataset, &query)?;
//! // The U-Top2 answer has score 118, far below the expected top-2 score.
//! assert!((answer.expected_score() - 164.1).abs() < 0.05);
//! assert_eq!(answer.typical.scores(), vec![118.0, 183.0, 235.0]);
//! # Ok::<(), ttk_uncertain::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod daemon;
pub mod dp;
pub mod k_combo;
pub mod live;
pub mod query;
pub mod query_serve;
pub mod registry;
pub mod remote;
pub mod scan;
pub mod scan_depth;
pub mod serve;
pub mod session;
pub mod state_expansion;
pub mod typical;

pub use baselines::{u_topk, UTopkAnswer, UTopkConfig};
pub use daemon::{
    bind_daemon_listener, run_daemon, write_file_atomically, ConnectionHandler, DaemonControl,
    DaemonOptions, DaemonReport, DrainReason, ShedPolicy,
};
pub use dp::{
    materialized_topk_score_distribution, topk_score_distribution,
    topk_score_distribution_streamed, MainConfig, MainOutput, MeStrategy,
};
pub use k_combo::{k_combo, k_combo_streamed};
pub use live::{AppendLog, AppendOutcome, LiveDataset, LiveSnapshot, SubscriberGuard};
pub use query::{Algorithm, Executor, QueryAnswer, TopkQuery};
pub use query_serve::{
    answer_from_wire, answer_hash, answer_to_wire, query_from_request, request_for, serve_client,
    serve_query, AppendServeSummary, QueryServeOptions, QueryServeSummary, RemoteAnswer,
    RemoteQueryClient, ServeOutcome, SubscriptionSummary, WatchClient, WatchPush,
};
pub use registry::{CacheKey, DatasetImporter, DatasetLoader, DatasetRegistry, ResultCache};
pub use remote::{ConnectOptions, RemoteShardDataset};
pub use scan::{RankScan, ScanPrefix, FIRST_BLOCK_TUPLES, MAX_BLOCK_TUPLES};
pub use scan_depth::{scan_depth, stopping_threshold, GateMeter, ScanGate, ShardScanGate};
pub use serve::{serve_stream, ServeOptions, ServeSummary, StopReason};
pub use session::{
    cost_descending_order, estimated_cost, estimated_scan_depth, BatchOptions, BatchOrdering,
    Dataset, DatasetPlan, DatasetProvider, PlanDescription, QueryJob, ScanPath, ScanSpec, Session,
};
pub use state_expansion::{state_expansion, state_expansion_streamed, BaselineOutput, NaiveConfig};
pub use typical::{typical_topk, typical_topk_brute_force, TypicalAnswer, TypicalSelection};

// Re-export the data model so downstream users need a single dependency.
pub use ttk_uncertain as uncertain;
