//! Remote shard serving: one scan spanning processes and machines.
//!
//! A [`RemoteShardDataset`] is the [`DatasetProvider`] of the transport
//! layer: each configured address is a shard server speaking the
//! [`wire`](ttk_uncertain::wire) protocol (`ttk serve-shard` on the CLI, or
//! any program driving a [`WireWriter`](ttk_uncertain::WireWriter)), and
//! opening the dataset connects to every server and fuses the decoded
//! streams — optionally together with locally-opened shard streams — under
//! the loser-tree k-way merge. Because the wire format carries raw IEEE-754
//! bits, the merged stream is **bit-identical** to scanning the same shards
//! in-process, and every [`Session`](crate::Session) verb (`execute`,
//! `execute_batch`, `explain`) works unchanged.
//!
//! Two knobs shape the scan:
//!
//! * [`RemoteShardDataset::with_local_shards`] mixes local shard streams
//!   into the same merge (the `--shard` + `--remote-shard` combination of
//!   the CLI). Remote and local shards must partition one relation and
//!   share a group-key namespace — servers derive stable keys by hashing
//!   the group label, see `shard_import` in `ttk-pdb`.
//! * [`RemoteShardDataset::with_prefetch`] reads each shard ahead through a
//!   bounded [`TupleFeed`](ttk_uncertain::TupleFeed) channel, overlapping
//!   network latency with the merge.
//!
//! Connection failures, mid-stream disconnects and server-side errors all
//! surface as [`Error::Source`] on the pulling thread — a remote scan never
//! hangs on a dead peer and never silently truncates.

use std::io::BufReader;
use std::net::TcpStream;

use ttk_uncertain::{Error, PrefetchPolicy, Result, ScanHandle, TupleSource, WireReader};

use crate::session::{Dataset, DatasetPlan, DatasetProvider, ScanPath};

/// Opens the local shard streams merged alongside the remote connections.
type LocalShardOpener = Box<dyn Fn() -> Result<Vec<Box<dyn TupleSource + Send>>> + Send + Sync>;

/// A relation whose shards are served by remote processes over the wire
/// protocol. See the [module documentation](self).
pub struct RemoteShardDataset {
    addrs: Vec<String>,
    local: Option<LocalShardOpener>,
    local_count: usize,
    prefetch: PrefetchPolicy,
}

impl std::fmt::Debug for RemoteShardDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardDataset")
            .field("addrs", &self.addrs)
            .field("local_shards", &self.local_count)
            .field("prefetch", &self.prefetch)
            .finish()
    }
}

impl RemoteShardDataset {
    /// A dataset over the shard servers at `addrs` (`host:port`, one shard
    /// stream per address). Nothing is connected until the first open.
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        RemoteShardDataset {
            addrs: addrs.into_iter().map(Into::into).collect(),
            local: None,
            local_count: 0,
            prefetch: PrefetchPolicy::Off,
        }
    }

    /// Merges `count` locally-opened shard streams alongside the remote
    /// ones; `open` is called once per query for fresh streams (sources are
    /// single-pass) and must yield exactly `count` shards of the same
    /// partitioned relation, in a group-key namespace shared with the
    /// servers.
    pub fn with_local_shards(
        mut self,
        count: usize,
        open: impl Fn() -> Result<Vec<Box<dyn TupleSource + Send>>> + Send + Sync + 'static,
    ) -> Self {
        self.local = Some(Box::new(open));
        self.local_count = count;
        self
    }

    /// Reads every shard (remote and local) ahead through a bounded feed
    /// channel, overlapping per-shard I/O with the merge.
    pub fn with_prefetch(mut self, prefetch: PrefetchPolicy) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Wraps the provider into the unified [`Dataset`] type consumed by
    /// [`Session`](crate::Session).
    pub fn into_dataset(self) -> Dataset {
        let mut label = format!("remote({})", self.addrs.join(", "));
        if self.local_count > 0 {
            label.push_str(&format!(" + {} local shards", self.local_count));
        }
        Dataset::from_provider(self).with_label(label)
    }
}

impl DatasetProvider for RemoteShardDataset {
    fn open(&self) -> Result<ScanHandle> {
        let mut shards: Vec<Box<dyn TupleSource + Send>> =
            Vec::with_capacity(self.addrs.len() + self.local_count);
        for addr in &self.addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| Error::Source(format!("connecting to shard server {addr}: {e}")))?;
            shards.push(Box::new(WireReader::new(BufReader::new(stream))));
        }
        if let Some(open) = &self.local {
            shards.extend(open()?);
        }
        Ok(ScanHandle::merged_prefetched(shards, self.prefetch))
    }

    fn plan(&self) -> DatasetPlan {
        DatasetPlan {
            path: ScanPath::Remote {
                remote: self.addrs.len(),
                local: self.local_count,
            },
            // Row counts arrive with each connection's hello frame; the plan
            // never connects, so they are unknown here.
            rows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, TopkQuery};
    use std::net::TcpListener;
    use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource, WireWriter};

    fn tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| {
                let t = UncertainTuple::new(i, (n - i) as f64, 0.6).unwrap();
                if i % 4 == 0 {
                    SourceTuple::grouped(t, i / 4)
                } else {
                    SourceTuple::independent(t)
                }
            })
            .collect()
    }

    /// Serves each shard once over a loopback listener; returns the
    /// addresses.
    fn serve_once(shards: Vec<Vec<SourceTuple>>) -> Vec<String> {
        shards
            .into_iter()
            .map(|shard| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap().to_string();
                std::thread::spawn(move || {
                    let (stream, _) = listener.accept().unwrap();
                    let hint = Some(shard.len());
                    // The client may hang up early (gate closed): a write
                    // failure here is expected, not a test failure.
                    if let Ok(writer) = WireWriter::new(std::io::BufWriter::new(stream), hint) {
                        let _ = writer.serve(&mut VecSource::new(shard));
                    }
                });
                addr
            })
            .collect()
    }

    #[test]
    fn remote_scan_matches_the_local_scan() {
        let all = tuples(60);
        let shards: Vec<Vec<SourceTuple>> = (0..3)
            .map(|s| {
                all.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == s)
                    .map(|(_, t)| *t)
                    .collect()
            })
            .collect();
        let query = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let local = session
            .execute(&Dataset::stream(VecSource::new(all)), &query)
            .unwrap();

        let dataset = RemoteShardDataset::new(serve_once(shards)).into_dataset();
        let plan = session.explain(&dataset, &query);
        assert_eq!(
            plan.path,
            ScanPath::Remote {
                remote: 3,
                local: 0
            }
        );
        let remote = session.execute(&dataset, &query).unwrap();
        assert_eq!(remote.distribution, local.distribution);
        assert_eq!(remote.scan_depth, local.scan_depth);
        assert_eq!(remote.typical.scores(), local.typical.scores());
    }

    #[test]
    fn mixed_local_and_remote_shards_merge_into_one_relation() {
        let all = tuples(40);
        let remote_shard: Vec<SourceTuple> = all.iter().step_by(2).copied().collect();
        let local_shard: Vec<SourceTuple> = all.iter().skip(1).step_by(2).copied().collect();
        let query = TopkQuery::new(2).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session
            .execute(&Dataset::stream(VecSource::new(all)), &query)
            .unwrap();

        let dataset = RemoteShardDataset::new(serve_once(vec![remote_shard]))
            .with_local_shards(1, move || {
                Ok(vec![
                    Box::new(VecSource::new(local_shard.clone())) as Box<dyn TupleSource + Send>
                ])
            })
            .with_prefetch(PrefetchPolicy::per_shard(8))
            .into_dataset();
        assert_eq!(
            session.explain(&dataset, &query).path,
            ScanPath::Remote {
                remote: 1,
                local: 1
            }
        );
        let mixed = session.execute(&dataset, &query).unwrap();
        assert_eq!(mixed.distribution, single.distribution);
        assert_eq!(mixed.scan_depth, single.scan_depth);
    }

    #[test]
    fn unreachable_server_is_a_source_error() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let dataset = RemoteShardDataset::new([addr]).into_dataset();
        let err = Session::new()
            .execute(&dataset, &TopkQuery::new(1))
            .unwrap_err();
        assert!(matches!(err, Error::Source(_)), "{err:?}");
    }
}
