//! Remote shard serving: one scan spanning processes and machines.
//!
//! A [`RemoteShardDataset`] is the [`DatasetProvider`] of the transport
//! layer: each configured address is a shard server speaking the
//! [`wire`](ttk_uncertain::wire) protocol (`ttk serve-shard` on the CLI, or
//! any program driving a [`WireWriter`](ttk_uncertain::WireWriter)), and
//! opening the dataset connects to every server and fuses the decoded
//! streams — optionally together with locally-opened shard streams — under
//! the loser-tree k-way merge. Because the wire format carries raw IEEE-754
//! bits, the merged stream is **bit-identical** to scanning the same shards
//! in-process, and every [`Session`](crate::Session) verb (`execute`,
//! `execute_batch`, `explain`) works unchanged.
//!
//! Three knobs shape the scan:
//!
//! * [`RemoteShardDataset::with_local_shards`] mixes local shard streams
//!   into the same merge (the `--shard` + `--remote-shard` combination of
//!   the CLI). Remote and local shards must partition one relation and
//!   share a group-key namespace — servers derive stable keys by hashing
//!   the group label, see `shard_import` in `ttk-pdb`.
//! * [`RemoteShardDataset::with_prefetch`] reads each shard ahead through a
//!   bounded [`TupleFeed`](ttk_uncertain::TupleFeed) channel, overlapping
//!   network latency with the merge.
//! * [`RemoteShardDataset::with_connect_options`] bounds and retries the
//!   dial: every connection attempt runs under [`ConnectOptions`] —
//!   per-attempt connect timeout, optional read timeout on the established
//!   socket, and exponential-backoff retries covering both refused dials and
//!   connections lost before the hello frame — so a server still starting up
//!   (or briefly restarting) is retried instead of failing the query, and a
//!   black-holed address fails after a bounded wait instead of hanging a
//!   `Session` verb forever.
//!
//! Opening the dataset reads each connection's hello frame **eagerly**: when
//! servers attach a [`ShardAssignment`] (coordinator-leased id bases, see
//! `ttk coordinator`), the per-connection hellos are cross-checked —
//! conflicting group-key namespaces or overlapping tuple-id ranges fail the
//! open with a message naming the offending servers, instead of silently
//! merging shards that never partitioned one relation.
//!
//! Connection failures (after the retry budget), mid-stream disconnects and
//! server-side errors all surface as [`Error::Source`] on the pulling thread
//! — a remote scan never hangs on a dead peer and never silently truncates.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use ttk_uncertain::wire::{self, PushdownQuery, WIRE_VERSION_V3};
use ttk_uncertain::{
    Error, PrefetchPolicy, Result, ScanHandle, ShardAssignment, SourceTuple, TupleBlock,
    TupleSource, WireReader, WireScanStats,
};

use crate::scan_depth::GateMeter;
use crate::serve::pushdown_query;
use crate::session::{Dataset, DatasetPlan, DatasetProvider, ScanPath, ScanSpec};

/// Dial behaviour of a [`RemoteShardDataset`]: how long to wait, how often
/// to retry, and how fast to back off.
///
/// A *retryable* failure is anything that happens before the peer's hello
/// frame is decoded — name resolution, the TCP dial, a connection reset
/// mid-handshake. Once the hello has arrived the stream belongs to the
/// merge, and later failures surface as [`Error::Source`] without
/// reconnecting (a resumed stream could silently skip tuples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectOptions {
    /// Upper bound on each individual TCP dial.
    pub connect_timeout: Duration,
    /// Read timeout armed on the established socket for the whole stream
    /// (`None` = block forever on a silent peer).
    pub read_timeout: Option<Duration>,
    /// Additional attempts after the first failed dial/handshake.
    pub retries: u32,
    /// Sleep before the first retry; doubles on every further retry.
    pub backoff: Duration,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            connect_timeout: Duration::from_secs(10),
            read_timeout: None,
            retries: 3,
            backoff: Duration::from_millis(100),
        }
    }
}

impl ConnectOptions {
    /// Sets both timeouts (connect and read) to `timeout`.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets the retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the initial backoff (doubled per retry).
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Opens the local shard streams merged alongside the remote connections.
type LocalShardOpener = Box<dyn Fn() -> Result<Vec<Box<dyn TupleSource + Send>>> + Send + Sync>;

/// A relation whose shards are served by remote processes over the wire
/// protocol. See the [module documentation](self).
pub struct RemoteShardDataset {
    addrs: Vec<String>,
    local: Option<LocalShardOpener>,
    local_count: usize,
    prefetch: PrefetchPolicy,
    connect: ConnectOptions,
    pushdown: bool,
    wire_blocks: bool,
    bound_update_every: u64,
}

/// The per-block tuple cap a pushdown client announces in its kind-19 query
/// frame. The server ships blocks no larger than the *smaller* of this and
/// its own `ServeOptions::block_tuples`.
const CLIENT_BLOCK_TUPLES: u16 = 2048;

impl std::fmt::Debug for RemoteShardDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardDataset")
            .field("addrs", &self.addrs)
            .field("local_shards", &self.local_count)
            .field("prefetch", &self.prefetch)
            .field("connect", &self.connect)
            .field("pushdown", &self.pushdown)
            .field("wire_blocks", &self.wire_blocks)
            .field("bound_update_every", &self.bound_update_every)
            .finish()
    }
}

impl RemoteShardDataset {
    /// A dataset over the shard servers at `addrs` (`host:port`, one shard
    /// stream per address). Nothing is connected until the first open.
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        RemoteShardDataset {
            addrs: addrs.into_iter().map(Into::into).collect(),
            local: None,
            local_count: 0,
            prefetch: PrefetchPolicy::Off,
            connect: ConnectOptions::default(),
            pushdown: true,
            wire_blocks: true,
            bound_update_every: 64,
        }
    }

    /// Enables or disables scan-gate pushdown (on by default): when enabled,
    /// every connection opened through a [`Session`](crate::Session)
    /// announces the query's Theorem-2 parameters up front, so v3 servers
    /// ship only their conservative prefix instead of the whole shard. v1/v2
    /// servers ignore the announcement and stream the full replay — results
    /// are bit-identical either way.
    pub fn with_pushdown(mut self, pushdown: bool) -> Self {
        self.pushdown = pushdown;
        self
    }

    /// Enables or disables columnar block framing on pushdown connections
    /// (on by default): when enabled, the query announcement asks the server
    /// to pack the gated prefix into kind-20 block frames instead of one
    /// frame per tuple. A server that predates blocks rejects the announcement
    /// and the connection is redialed speaking the plain query — results are
    /// bit-identical either way. Has no effect when pushdown is off.
    pub fn with_wire_blocks(mut self, blocks: bool) -> Self {
        self.wire_blocks = blocks;
        self
    }

    /// Sets how often (in tuples pulled off each connection) the client
    /// re-sends the merge-side gate's accumulated probability mass to v3
    /// servers, letting their shard gates stop even earlier. Clamped to at
    /// least 1; default 64.
    pub fn with_bound_update_every(mut self, every: u64) -> Self {
        self.bound_update_every = every.max(1);
        self
    }

    /// Sets the dial behaviour (timeouts, retries, backoff) applied to every
    /// connection of every open.
    pub fn with_connect_options(mut self, connect: ConnectOptions) -> Self {
        self.connect = connect;
        self
    }

    /// Merges `count` locally-opened shard streams alongside the remote
    /// ones; `open` is called once per query for fresh streams (sources are
    /// single-pass) and must yield exactly `count` shards of the same
    /// partitioned relation, in a group-key namespace shared with the
    /// servers.
    pub fn with_local_shards(
        mut self,
        count: usize,
        open: impl Fn() -> Result<Vec<Box<dyn TupleSource + Send>>> + Send + Sync + 'static,
    ) -> Self {
        self.local = Some(Box::new(open));
        self.local_count = count;
        self
    }

    /// Reads every shard (remote and local) ahead through a bounded feed
    /// channel, overlapping per-shard I/O with the merge.
    pub fn with_prefetch(mut self, prefetch: PrefetchPolicy) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Wraps the provider into the unified [`Dataset`] type consumed by
    /// [`Session`](crate::Session).
    pub fn into_dataset(self) -> Dataset {
        let mut label = format!("remote({})", self.addrs.join(", "));
        if self.local_count > 0 {
            label.push_str(&format!(" + {} local shards", self.local_count));
        }
        Dataset::from_provider(self).with_label(label)
    }
}

/// One dial attempt: resolve, connect under the timeout, optionally announce
/// the query (pushdown mode — the client speaks first, see
/// [`ttk_uncertain::wire`]), and decode the hello eagerly so handshake
/// failures stay retryable. In pushdown mode the connection's write half is
/// returned alongside the reader **iff** the server answered with a v3
/// hello; v1/v2 servers never read from the socket, so the write half is
/// dropped and the stale query frame rots harmlessly in their receive
/// buffer.
fn try_dial_query(
    addr: &str,
    options: &ConnectOptions,
    query: Option<&PushdownQuery>,
    blocks: Option<u16>,
) -> Result<(WireReader<BufReader<TcpStream>>, Option<TcpStream>)> {
    let sock_addrs: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| Error::Source(format!("resolving {addr}: {e}")))?
        .collect();
    let mut last = None;
    let stream = sock_addrs
        .iter()
        .find_map(
            |sock| match TcpStream::connect_timeout(sock, options.connect_timeout) {
                Ok(stream) => Some(stream),
                Err(e) => {
                    last = Some(e);
                    None
                }
            },
        )
        .ok_or_else(|| match last {
            Some(e) => Error::Source(format!("dialing {addr}: {e}")),
            None => Error::Source(format!("{addr} resolved to no addresses")),
        })?;
    stream
        .set_read_timeout(options.read_timeout)
        .map_err(|e| Error::Source(format!("arming read timeout on {addr}: {e}")))?;
    let mut write_half = match query {
        Some(query) => {
            let mut write_half = stream
                .try_clone()
                .map_err(|e| Error::Source(format!("cloning the socket to {addr}: {e}")))?;
            // Announce before reading the hello: the server's protocol
            // decision is "did the client speak first?". The announcement is
            // best-effort — a pre-v3 server that served its replay and
            // closed before our frame landed answers it with a reset, which
            // surfaces here as a write error while the hello and tuples stay
            // readable in our receive queue. Downgrade to the legacy replay
            // and let the hello read decide whether the connection is alive.
            let sent = match blocks {
                Some(max_block) => wire::write_query_blocks(&mut write_half, query, max_block),
                None => wire::write_query(&mut write_half, query),
            };
            match sent {
                Ok(()) => Some(write_half),
                Err(_) => None,
            }
        }
        None => None,
    };
    let mut reader = WireReader::new(BufReader::new(stream));
    let hello = reader.hello()?;
    if hello.version != WIRE_VERSION_V3 {
        // A pre-v3 server: it will stream the full shard and never read our
        // bound updates, so stop sending them.
        write_half = None;
    }
    Ok((reader, write_half))
}

/// Dials with retries: transient dial failures and connections lost before
/// the hello retry under exponential backoff until the budget is spent.
/// Each attempt re-announces `query` on a fresh connection, so a retry never
/// resumes a half-spoken handshake.
///
/// When `blocks` is set, the first failed handshake also triggers an
/// immediate redial speaking the plain kind-7 query: a server that predates
/// block framing strictly rejects the kind-19 announcement and closes before
/// its hello, and that downgrade redial — not a capability exchange — is how
/// old servers keep interoperating. The downgrade sticks for the remaining
/// attempts; a genuinely dead peer fails the plain dial the same way.
fn dial(
    addr: &str,
    options: &ConnectOptions,
    query: Option<&PushdownQuery>,
    blocks: Option<u16>,
) -> Result<(WireReader<BufReader<TcpStream>>, Option<TcpStream>)> {
    let mut blocks = blocks.filter(|_| query.is_some());
    let mut delay = options.backoff;
    let mut first = None;
    let mut last = None;
    for attempt in 0..=options.retries {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        match try_dial_query(addr, options, query, blocks) {
            Ok(connection) => return Ok(connection),
            Err(e) => {
                if blocks.take().is_some() {
                    if let Ok(connection) = try_dial_query(addr, options, query, None) {
                        return Ok(connection);
                    }
                }
                // Unwrap the Error::Source shell so the final message does
                // not nest its prefix per attempt.
                let text = match e {
                    Error::Source(m) => m,
                    other => other.to_string(),
                };
                first.get_or_insert(text.clone());
                last = Some(text);
            }
        }
    }
    let attempts = options.retries as usize + 1;
    let first = first.expect("at least one attempt ran");
    let last = last.expect("at least one attempt ran");
    // When later attempts fail differently (a one-shot server consumed, a
    // port recycled), the first failure is usually the diagnostic one — keep
    // both.
    let history = if last == first {
        first
    } else {
        format!("{first}; finally: {last}")
    };
    Err(Error::Source(format!(
        "connecting to shard server {addr}: {history} (after {attempts} attempt{})",
        if attempts == 1 { "" } else { "s" }
    )))
}

/// Cross-checks the hello assignments of every connection: all asserted
/// namespaces must agree and no two asserted tuple-id ranges may overlap.
/// Servers that asserted nothing (v1, or v2 without a lease) are skipped.
fn validate_assignments(
    assignments: &[(String, Option<ShardAssignment>, Option<usize>)],
) -> Result<()> {
    let asserted: Vec<(&String, &ShardAssignment, Option<usize>)> = assignments
        .iter()
        .filter_map(|(addr, a, hint)| a.as_ref().map(|a| (addr, a, *hint)))
        .filter(|(_, a, _)| !a.namespace.is_empty())
        .collect();
    for window in asserted.windows(2) {
        let ((addr_a, a, _), (addr_b, b, _)) = (&window[0], &window[1]);
        if a.namespace != b.namespace {
            return Err(Error::Source(format!(
                "shard servers disagree on the group-key namespace: {addr_a} serves \
                 `{}` but {addr_b} serves `{}` — these shards do not partition one \
                 relation",
                a.namespace, b.namespace
            )));
        }
    }
    // Overlapping id ranges mean two servers were leased (or configured) the
    // same rows; merging them would double-count tuples.
    let mut ranges: Vec<(&String, u64, Option<u64>)> = asserted
        .iter()
        // Saturating: base and hint are wire-controlled values, and a wrap
        // here would silence the very overlap this check exists to catch.
        .map(|(addr, a, hint)| {
            (
                *addr,
                a.id_base,
                hint.map(|h| a.id_base.saturating_add(h as u64)),
            )
        })
        .collect();
    ranges.sort_by_key(|(_, base, _)| *base);
    for window in ranges.windows(2) {
        let ((addr_a, base_a, end_a), (addr_b, base_b, _)) = (&window[0], &window[1]);
        let collides = match end_a {
            Some(end_a) => base_b < end_a,
            // Without a size hint only an identical base is provably wrong.
            None => base_b == base_a,
        };
        if collides {
            return Err(Error::Source(format!(
                "shard servers {addr_a} and {addr_b} serve overlapping tuple-id \
                 ranges (bases {base_a} and {base_b}) — check the id-base leases"
            )));
        }
    }
    Ok(())
}

/// One remote connection as the merge sees it: decoded tuples counted into
/// the shared [`WireScanStats`], with the merge-side gate's mass pushed back
/// to the server every `cadence` pulls while the write half lives (v3
/// pushdown connections only — plain and pre-v3 connections carry
/// `write: None` and just count).
struct BoundSource {
    reader: WireReader<BufReader<TcpStream>>,
    write: Option<TcpStream>,
    meter: GateMeter,
    last_sent: f64,
    pulls: u64,
    cadence: u64,
    stats: Arc<WireScanStats>,
    finished: bool,
    /// Frame counts already folded into `stats`, so each harvest only adds
    /// the delta since the previous reader call.
    reported_frames: (u64, u64),
}

impl BoundSource {
    /// Folds newly decoded kind-20 frames into the shared stats. Runs after
    /// every reader call: the reader decodes block frames into its buffer
    /// even when the merge above drains tuple-at-a-time, so pull-site
    /// counting alone would miss the wire framing entirely.
    fn harvest_frames(&mut self) {
        let (frames, rows) = self.reader.block_frames_decoded();
        let (seen_frames, seen_rows) = self.reported_frames;
        if frames > seen_frames || rows > seen_rows {
            self.stats
                .record_block_frames(frames - seen_frames, rows - seen_rows);
            self.reported_frames = (frames, rows);
        }
    }
}

impl TupleSource for BoundSource {
    fn next_tuple(&mut self) -> Result<Option<SourceTuple>> {
        self.pulls += 1;
        if self.write.is_some() && self.pulls.is_multiple_of(self.cadence) {
            let mass = self.meter.current();
            // Only growth is worth a frame: the server keeps the max anyway.
            if mass > self.last_sent {
                match wire::write_bound(self.write.as_mut().expect("checked above"), mass) {
                    Ok(()) => self.last_sent = mass,
                    // A dead write half ends the updates, not the scan — the
                    // server falls back to its local-only bound.
                    Err(_) => self.write = None,
                }
            }
        }
        let pulled = self.reader.next_tuple();
        self.harvest_frames();
        match pulled {
            Ok(Some(tuple)) => {
                self.stats.record_tuple();
                Ok(Some(tuple))
            }
            Ok(None) => {
                if !self.finished {
                    self.finished = true;
                    if let Some(stopped) = self.reader.stopped_at() {
                        self.stats.record_stopped(stopped);
                    }
                }
                Ok(None)
            }
            Err(error) => Err(error),
        }
    }

    fn next_block(&mut self, max: usize) -> Result<Option<TupleBlock>> {
        // Blocks are hundreds of tuples, so the bound-update cadence check
        // runs once per block pull instead of every `cadence` tuples.
        if self.write.is_some() {
            let mass = self.meter.current();
            if mass > self.last_sent {
                match wire::write_bound(self.write.as_mut().expect("checked above"), mass) {
                    Ok(()) => self.last_sent = mass,
                    Err(_) => self.write = None,
                }
            }
        }
        let pulled = self.reader.next_block(max);
        self.harvest_frames();
        match pulled {
            Ok(Some(block)) => {
                self.pulls += block.len() as u64;
                self.stats.record_block_pull(block.len());
                Ok(Some(block))
            }
            Ok(None) => {
                if !self.finished {
                    self.finished = true;
                    if let Some(stopped) = self.reader.stopped_at() {
                        self.stats.record_stopped(stopped);
                    }
                }
                Ok(None)
            }
            Err(error) => Err(error),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        self.reader.size_hint()
    }
}

impl RemoteShardDataset {
    /// The shared open path: dials every address (announcing `query` when in
    /// pushdown mode), cross-checks the hellos, and fuses the connections —
    /// wrapped in counting/bounding [`BoundSource`]s — with any local shards.
    fn open_connections(
        &self,
        query: Option<&PushdownQuery>,
        meter: &GateMeter,
    ) -> Result<ScanHandle> {
        let stats = Arc::new(WireScanStats::default());
        let mut shards: Vec<Box<dyn TupleSource + Send>> =
            Vec::with_capacity(self.addrs.len() + self.local_count);
        let mut assignments = Vec::with_capacity(self.addrs.len());
        let blocks = self.wire_blocks.then_some(CLIENT_BLOCK_TUPLES);
        for addr in &self.addrs {
            let (mut reader, write) = dial(addr, &self.connect, query, blocks)?;
            let hello = reader.hello().expect("hello decoded during dial").clone();
            stats.record_connection(write.is_some());
            assignments.push((addr.clone(), hello.assignment, hello.size_hint));
            shards.push(Box::new(BoundSource {
                reader,
                write,
                meter: meter.clone(),
                last_sent: 0.0,
                pulls: 0,
                cadence: self.bound_update_every.max(1),
                stats: Arc::clone(&stats),
                finished: false,
                reported_frames: (0, 0),
            }));
        }
        validate_assignments(&assignments)?;
        if let Some(open) = &self.local {
            shards.extend(open()?);
        }
        Ok(ScanHandle::merged_prefetched(shards, self.prefetch).with_wire_stats(stats))
    }
}

impl DatasetProvider for RemoteShardDataset {
    fn open(&self) -> Result<ScanHandle> {
        // The compatibility path (no query context): full replay, counted
        // but never gated server-side.
        self.open_connections(None, &GateMeter::new())
    }

    fn open_for(&self, spec: &ScanSpec) -> Result<ScanHandle> {
        let query = self
            .pushdown
            .then(|| pushdown_query(spec.k, spec.p_tau, spec.full_stream));
        self.open_connections(query.as_ref(), &spec.meter)
    }

    fn plan(&self) -> DatasetPlan {
        DatasetPlan {
            path: ScanPath::Remote {
                remote: self.addrs.len(),
                local: self.local_count,
            },
            // Row counts arrive with each connection's hello frame; the plan
            // never connects, so they are unknown here.
            rows: None,
        }
    }

    fn plan_for(&self, full_stream: bool) -> DatasetPlan {
        let path = if self.pushdown && !full_stream {
            ScanPath::RemotePushdown {
                remote: self.addrs.len(),
                local: self.local_count,
            }
        } else {
            ScanPath::Remote {
                remote: self.addrs.len(),
                local: self.local_count,
            }
        };
        DatasetPlan { path, rows: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, TopkQuery};
    use std::net::TcpListener;
    use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource, WireWriter};

    fn tuples(n: u64) -> Vec<SourceTuple> {
        (0..n)
            .map(|i| {
                let t = UncertainTuple::new(i, (n - i) as f64, 0.6).unwrap();
                if i % 4 == 0 {
                    SourceTuple::grouped(t, i / 4)
                } else {
                    SourceTuple::independent(t)
                }
            })
            .collect()
    }

    /// Serves each shard once over a loopback listener; returns the
    /// addresses.
    fn serve_once(shards: Vec<Vec<SourceTuple>>) -> Vec<String> {
        shards
            .into_iter()
            .map(|shard| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap().to_string();
                std::thread::spawn(move || {
                    let (stream, _) = listener.accept().unwrap();
                    let hint = Some(shard.len());
                    // The client may hang up early (gate closed): a write
                    // failure here is expected, not a test failure.
                    if let Ok(writer) = WireWriter::new(std::io::BufWriter::new(stream), hint) {
                        let _ = writer.serve(&mut VecSource::new(shard));
                    }
                });
                addr
            })
            .collect()
    }

    #[test]
    fn remote_scan_matches_the_local_scan() {
        let all = tuples(60);
        let shards: Vec<Vec<SourceTuple>> = (0..3)
            .map(|s| {
                all.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == s)
                    .map(|(_, t)| *t)
                    .collect()
            })
            .collect();
        let query = TopkQuery::new(3).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let local = session
            .execute(&Dataset::stream(VecSource::new(all)), &query)
            .unwrap();

        let dataset = RemoteShardDataset::new(serve_once(shards)).into_dataset();
        let plan = session.explain(&dataset, &query);
        // The plan optimistically assumes pushdown; the v1 test servers
        // decline it at open time, which changes nothing about the results.
        assert_eq!(
            plan.path,
            ScanPath::RemotePushdown {
                remote: 3,
                local: 0
            }
        );
        let remote = session.execute(&dataset, &query).unwrap();
        assert_eq!(remote.distribution, local.distribution);
        assert_eq!(remote.scan_depth, local.scan_depth);
        assert_eq!(remote.typical.scores(), local.typical.scores());
    }

    #[test]
    fn mixed_local_and_remote_shards_merge_into_one_relation() {
        let all = tuples(40);
        let remote_shard: Vec<SourceTuple> = all.iter().step_by(2).copied().collect();
        let local_shard: Vec<SourceTuple> = all.iter().skip(1).step_by(2).copied().collect();
        let query = TopkQuery::new(2).with_p_tau(1e-3).with_u_topk(false);
        let mut session = Session::new();
        let single = session
            .execute(&Dataset::stream(VecSource::new(all)), &query)
            .unwrap();

        let dataset = RemoteShardDataset::new(serve_once(vec![remote_shard]))
            .with_local_shards(1, move || {
                Ok(vec![
                    Box::new(VecSource::new(local_shard.clone())) as Box<dyn TupleSource + Send>
                ])
            })
            .with_prefetch(PrefetchPolicy::per_shard(8))
            .into_dataset();
        assert_eq!(
            session.explain(&dataset, &query).path,
            ScanPath::RemotePushdown {
                remote: 1,
                local: 1
            }
        );
        let mixed = session.execute(&dataset, &query).unwrap();
        assert_eq!(mixed.distribution, single.distribution);
        assert_eq!(mixed.scan_depth, single.scan_depth);
    }

    #[test]
    fn unreachable_server_is_a_source_error() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let dataset = RemoteShardDataset::new([addr]).into_dataset();
        let err = Session::new()
            .execute(&dataset, &TopkQuery::new(1))
            .unwrap_err();
        assert!(matches!(err, Error::Source(_)), "{err:?}");
    }
}
