//! The paper's main algorithm: dynamic programming for the top-k score
//! distribution (§3.2), extended to mutual-exclusion groups (§3.3) and score
//! ties (§3.4).
//!
//! The module is split into the mechanical recurrence ([`engine`]) and the
//! driver in this file, which
//!
//! 1. streams the rank-ordered tuples through the Theorem-2 [`ScanGate`]
//!    ([`crate::scan`]), so the dynamic program only ever sees the prefix it
//!    is allowed to read,
//! 2. decomposes the (rank-ordered) tuples into *ending segments* — maximal
//!    lead-tuple regions and individual non-lead tuples (§3.3.3),
//! 3. translates each segment into a row sequence where every other ME group
//!    is compressed into a *rule tuple* (§3.3.1) and exit points are enabled
//!    only inside the segment (§3.3.2), and
//! 4. runs the engine once per segment and merges the resulting
//!    distributions.
//!
//! On a table without mutual exclusion the decomposition degenerates to a
//! single segment spanning all tuples, i.e. exactly the basic algorithm of
//! §3.2. The pre-streaming pipeline (materialize the full table, truncate
//! afterwards) is retained as
//! [`materialized_topk_score_distribution`] — it is the reference the
//! streaming path is property-tested against and the baseline the benches
//! quantify the streaming win with.

pub mod engine;

use std::collections::HashMap;
use std::ops::Range;

use ttk_uncertain::{
    CoalescePolicy, Error, Result, ScoreDistribution, TableSource, TupleSource, UncertainTable,
};

use crate::scan::{RankScan, ScanPrefix};
use crate::scan_depth::{scan_depth, ScanGate};
use engine::{DpRow, EngineConfig};

/// How the driver decomposes a table with ME groups into per-ending dynamic
/// programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeStrategy {
    /// One dynamic program per maximal lead-tuple region plus one per
    /// non-lead tuple (§3.3.3). This is the refinement the paper recommends;
    /// its cost is O(k·m·n) where m is the number of ME-correlated tuples.
    #[default]
    LeadRegions,
    /// One dynamic program per candidate ending tuple (the "simple
    /// extension" of §3.3.2). Asymptotically slower — O(k·n²) — but a useful
    /// correctness oracle and ablation baseline.
    PerEnding,
}

/// Configuration of the main algorithm.
#[derive(Debug, Clone, Copy)]
pub struct MainConfig {
    /// Probability threshold pτ: top-k vectors with probability below this
    /// may be ignored. Controls the scan depth (Theorem 2).
    pub p_tau: f64,
    /// Maximum number of lines kept in any distribution (`c'`, §3.2.1).
    /// Zero keeps every line (exact but potentially exponential output).
    pub max_lines: usize,
    /// How coalesced lines are combined.
    pub coalesce_policy: CoalescePolicy,
    /// Whether witness vectors are tracked (required for c-Typical-Topk).
    pub track_witnesses: bool,
    /// ME-group decomposition strategy.
    pub me_strategy: MeStrategy,
}

impl Default for MainConfig {
    fn default() -> Self {
        MainConfig {
            p_tau: 1e-3,
            max_lines: 200,
            coalesce_policy: CoalescePolicy::PaperMean,
            track_witnesses: true,
            me_strategy: MeStrategy::LeadRegions,
        }
    }
}

/// Result of the main algorithm, with some execution statistics.
#[derive(Debug, Clone)]
pub struct MainOutput {
    /// The (possibly coalesced) score distribution of top-k vectors.
    pub distribution: ScoreDistribution,
    /// Scan depth n actually used (Theorem 2).
    pub scan_depth: usize,
    /// Number of per-segment dynamic programs executed.
    pub segments: usize,
}

/// Runs the main dynamic-programming algorithm and returns the top-k score
/// distribution.
///
/// This is a convenience wrapper streaming the in-memory table through the
/// rank-scan executor; [`topk_score_distribution_streamed`] accepts any
/// [`TupleSource`].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or the probability
/// threshold is outside `(0, 1)`.
pub fn topk_score_distribution(
    table: &UncertainTable,
    k: usize,
    config: &MainConfig,
) -> Result<MainOutput> {
    topk_score_distribution_streamed(&mut TableSource::new(table), k, config)
}

/// Runs the main algorithm against a rank-ordered [`TupleSource`], reading at
/// most one tuple past the Theorem-2 bound.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for invalid parameters and propagates
/// source errors.
pub fn topk_score_distribution_streamed(
    source: &mut dyn TupleSource,
    k: usize,
    config: &MainConfig,
) -> Result<MainOutput> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let mut gate = ScanGate::new(k, config.p_tau)?;
    let prefix = RankScan::new().collect_prefix(source, &mut gate)?;
    topk_from_prefix(&prefix, k, config)
}

/// The pre-streaming pipeline: compute the Theorem-2 depth over the full
/// materialized table, truncate, then run the dynamic program.
///
/// Retained as the reference implementation the streaming path is verified
/// against (bit-identical outputs) and as the ablation baseline quantifying
/// what fusing the stopping condition into the scan saves.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or the probability
/// threshold is outside `(0, 1)`.
pub fn materialized_topk_score_distribution(
    table: &UncertainTable,
    k: usize,
    config: &MainConfig,
) -> Result<MainOutput> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    let depth = scan_depth(table, k, config.p_tau)?;
    let working = table.truncate(depth);
    run_on_prefix_table(&working, depth, k, config)
}

/// Runs the per-segment dynamic programs over an already-collected scan
/// prefix. Shared by the streaming entry points and the batch
/// [`crate::query::Executor`].
pub(crate) fn topk_from_prefix(
    prefix: &ScanPrefix,
    k: usize,
    config: &MainConfig,
) -> Result<MainOutput> {
    run_on_prefix_table(&prefix.table, prefix.depth(), k, config)
}

fn run_on_prefix_table(
    working: &UncertainTable,
    depth: usize,
    k: usize,
    config: &MainConfig,
) -> Result<MainOutput> {
    if working.len() < k {
        // No possible world can contain k tuples from the considered prefix;
        // with a sensible pτ this only happens when the full table itself has
        // fewer than k tuples.
        return Ok(MainOutput {
            distribution: ScoreDistribution::empty(),
            scan_depth: depth,
            segments: 0,
        });
    }

    let engine_config = EngineConfig {
        max_lines: config.max_lines,
        coalesce_policy: config.coalesce_policy,
        track_witnesses: config.track_witnesses,
    };

    let segments = build_segments(working, config.me_strategy);
    let mut distribution = ScoreDistribution::empty();
    let mut executed = 0usize;
    for segment in &segments {
        // A vector's last member sits at position ≥ k-1; segments entirely
        // above that can never host an ending.
        if segment.end < k {
            continue;
        }
        let (rows, exits) = build_rows(working, segment.clone(), k);
        if rows.is_empty() {
            continue;
        }
        executed += 1;
        let partial = engine::run(&rows, &exits, k, &engine_config);
        distribution.merge_from(&partial);
        if config.max_lines > 0 {
            distribution.coalesce(config.max_lines, config.coalesce_policy);
        }
    }

    // Witness vectors are assembled in row order, which may interleave rule
    // members out of rank order; restore rank order for presentation.
    distribution = restore_witness_rank_order(distribution, working);

    Ok(MainOutput {
        distribution,
        scan_depth: depth,
        segments: executed,
    })
}

/// Decomposes positions `0..table.len()` into ending segments.
fn build_segments(table: &UncertainTable, strategy: MeStrategy) -> Vec<Range<usize>> {
    match strategy {
        MeStrategy::PerEnding => (0..table.len()).map(|p| p..p + 1).collect(),
        MeStrategy::LeadRegions => {
            let mut segments = Vec::new();
            let mut run_start: Option<usize> = None;
            for pos in 0..table.len() {
                if table.is_lead(pos) {
                    if run_start.is_none() {
                        run_start = Some(pos);
                    }
                } else {
                    if let Some(s) = run_start.take() {
                        segments.push(s..pos);
                    }
                    segments.push(pos..pos + 1);
                }
            }
            if let Some(s) = run_start {
                segments.push(s..table.len());
            }
            segments
        }
    }
}

/// Builds the engine rows and exit flags for one ending segment.
///
/// Rows consist of (a) the tuples ranked above the segment, with every ME
/// group that has two or more members in that prefix compressed into a rule
/// tuple placed at its highest-ranked member, and (b) one simple row per
/// segment position. Members of an ending tuple's own group that are ranked
/// above it are removed entirely (they are automatically absent whenever the
/// ending tuple exists); this situation only arises for single non-lead
/// segments. Exit points are enabled exactly at the segment rows.
fn build_rows(table: &UncertainTable, segment: Range<usize>, _k: usize) -> (Vec<DpRow>, Vec<bool>) {
    let start = segment.start;
    // The group of a single non-lead ending tuple: its higher-ranked members
    // must be dropped from the prefix rows. A lead-region segment never has
    // such members (every segment member is the lead of its group).
    let ending_group = if segment.len() == 1 && !table.is_lead(start) {
        Some(table.group_index(start))
    } else {
        None
    };

    // Gather the prefix members of every group ranked above the segment.
    let mut first_member: HashMap<usize, usize> = HashMap::new();
    let mut members_above: HashMap<usize, Vec<usize>> = HashMap::new();
    for pos in 0..start {
        let g = table.group_index(pos);
        if Some(g) == ending_group {
            continue;
        }
        first_member.entry(g).or_insert(pos);
        members_above.entry(g).or_default().push(pos);
    }

    let mut rows = Vec::with_capacity(start + segment.len());
    let mut exits = Vec::with_capacity(start + segment.len());
    for pos in 0..start {
        let g = table.group_index(pos);
        if Some(g) == ending_group || first_member.get(&g) != Some(&pos) {
            continue;
        }
        let members = &members_above[&g];
        if members.len() == 1 {
            let t = table.tuple(pos);
            rows.push(DpRow::Simple {
                id: t.id(),
                score: t.score(),
                prob: t.prob(),
            });
        } else {
            rows.push(DpRow::Rule {
                branches: members
                    .iter()
                    .map(|&p| {
                        let t = table.tuple(p);
                        (t.id(), t.score(), t.prob())
                    })
                    .collect(),
            });
        }
        exits.push(false);
    }
    for pos in segment {
        let t = table.tuple(pos);
        rows.push(DpRow::Simple {
            id: t.id(),
            score: t.score(),
            prob: t.prob(),
        });
        exits.push(true);
    }
    (rows, exits)
}

/// Re-sorts every witness vector into table rank order.
fn restore_witness_rank_order(
    mut distribution: ScoreDistribution,
    table: &UncertainTable,
) -> ScoreDistribution {
    let needs_fix = distribution
        .points()
        .iter()
        .any(|p| p.witness.as_ref().is_some_and(|w| w.ids.len() > 1));
    if !needs_fix {
        return distribution;
    }
    let mut rebuilt = ScoreDistribution::empty();
    for point in distribution.points() {
        let witness = point.witness.as_ref().map(|w| {
            let mut ids = w.ids.clone();
            ids.sort_by_key(|id| table.position(*id).unwrap_or(usize::MAX));
            ttk_uncertain::VectorWitness {
                ids,
                probability: w.probability,
            }
        });
        rebuilt.add_mass(point.score, point.probability, witness);
    }
    std::mem::swap(&mut distribution, &mut rebuilt);
    distribution
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::{exact_topk_score_distribution, TupleId, UncertainTable};

    fn soldier_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .tuple(6u64, 58.0, 0.5)
            .unwrap()
            .tuple(7u64, 125.0, 0.3)
            .unwrap()
            .me_rule([2u64, 4, 7])
            .me_rule([3u64, 6])
            .build()
            .unwrap()
    }

    fn exact_config() -> MainConfig {
        MainConfig {
            p_tau: 1e-9,
            max_lines: 0,
            ..MainConfig::default()
        }
    }

    fn assert_distributions_match(a: &ScoreDistribution, b: &ScoreDistribution) {
        assert_eq!(a.len(), b.len(), "different number of lines:\n{a:?}\n{b:?}");
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert!(
                (pa.score - pb.score).abs() < 1e-9,
                "score mismatch {} vs {}",
                pa.score,
                pb.score
            );
            assert!(
                (pa.probability - pb.probability).abs() < 1e-9,
                "probability mismatch at score {}: {} vs {}",
                pa.score,
                pa.probability,
                pb.probability
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_soldier_table_for_all_k() {
        let table = soldier_table();
        for k in 1..=5 {
            let exact = exact_topk_score_distribution(&table, k, 1 << 20).unwrap();
            for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
                let mut config = exact_config();
                config.me_strategy = strategy;
                let out = topk_score_distribution(&table, k, &config).unwrap();
                assert_distributions_match(&out.distribution, &exact);
            }
        }
    }

    #[test]
    fn soldier_top2_distribution_matches_figure_3() {
        let table = soldier_table();
        let out = topk_score_distribution(&table, 2, &exact_config()).unwrap();
        let d = &out.distribution;
        assert!((d.total_probability() - 1.0).abs() < 1e-9);
        assert!((d.expected_score() - 164.1).abs() < 0.05);
        // Pr(top-2 score = 235) = 0.12, witnessed by <T7, T3>.
        let p = d
            .points()
            .iter()
            .find(|p| (p.score - 235.0).abs() < 1e-9)
            .unwrap();
        assert!((p.probability - 0.12).abs() < 1e-9);
        let w = p.witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(7), TupleId(3)]);
        // Pr(top-2 score = 118) = 0.2, witnessed by <T2, T6> (the U-Top2).
        let p118 = d
            .points()
            .iter()
            .find(|p| (p.score - 118.0).abs() < 1e-9)
            .unwrap();
        assert!((p118.probability - 0.2).abs() < 1e-9);
        let w = p118.witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(2), TupleId(6)]);
        // Pr(score > 118) = 0.76 (observation 1 in §1).
        assert!((d.mass_above(118.0) - 0.76).abs() < 1e-9);
    }

    #[test]
    fn independent_tuples_match_exhaustive() {
        let table = UncertainTable::builder()
            .tuple(1u64, 100.0, 0.9)
            .unwrap()
            .tuple(2u64, 90.0, 0.2)
            .unwrap()
            .tuple(3u64, 70.0, 0.6)
            .unwrap()
            .tuple(4u64, 50.0, 0.8)
            .unwrap()
            .tuple(5u64, 30.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        for k in 1..=4 {
            let exact = exact_topk_score_distribution(&table, k, 1 << 20).unwrap();
            let out = topk_score_distribution(&table, k, &exact_config()).unwrap();
            assert_distributions_match(&out.distribution, &exact);
            // One lead region, therefore exactly one dynamic program.
            assert_eq!(out.segments, 1);
        }
    }

    #[test]
    fn ties_match_exhaustive() {
        // Example 4 of the paper: a tie group of three tuples at score 7 and
        // one at score 8, etc.
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 8.0, 0.3)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .tuple(4u64, 8.0, 0.1)
            .unwrap()
            .tuple(5u64, 7.0, 0.5)
            .unwrap()
            .tuple(6u64, 7.0, 0.4)
            .unwrap()
            .tuple(7u64, 7.0, 0.2)
            .unwrap()
            .build()
            .unwrap();
        for k in 1..=6 {
            let exact = exact_topk_score_distribution(&table, k, 1 << 20).unwrap();
            let out = topk_score_distribution(&table, k, &exact_config()).unwrap();
            assert_distributions_match(&out.distribution, &exact);
        }
    }

    #[test]
    fn ties_and_me_groups_match_exhaustive() {
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 9.0, 0.35)
            .unwrap()
            .tuple(3u64, 9.0, 0.45)
            .unwrap()
            .tuple(4u64, 9.0, 0.3)
            .unwrap()
            .tuple(5u64, 8.0, 0.6)
            .unwrap()
            .tuple(6u64, 7.0, 0.3)
            .unwrap()
            .tuple(7u64, 7.0, 0.2)
            .unwrap()
            .me_rule([2u64, 5])
            .me_rule([3u64, 6, 7])
            .build()
            .unwrap();
        for k in 1..=5 {
            let exact = exact_topk_score_distribution(&table, k, 1 << 20).unwrap();
            for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
                let mut config = exact_config();
                config.me_strategy = strategy;
                let out = topk_score_distribution(&table, k, &config).unwrap();
                assert_distributions_match(&out.distribution, &exact);
            }
        }
    }

    #[test]
    fn example_4_configuration_probability() {
        // §3.4 Example 4: Pr(at least 2 of {T5 0.5, T6 0.4, T7 0.2} appear)
        // must be folded into the configuration containing T1, T2, T4.
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 8.0, 0.3)
            .unwrap()
            .tuple(3u64, 8.0, 0.2)
            .unwrap()
            .tuple(4u64, 8.0, 0.1)
            .unwrap()
            .tuple(5u64, 7.0, 0.5)
            .unwrap()
            .tuple(6u64, 7.0, 0.4)
            .unwrap()
            .tuple(7u64, 7.0, 0.2)
            .unwrap()
            .build()
            .unwrap();
        let out = topk_score_distribution(&table, 5, &exact_config()).unwrap();
        // Configuration score 10 + 8 + 8 + 7 + 7 = 40 includes several
        // configurations; verify against the exhaustive distribution instead
        // of a single hand-picked line, then check the hand-computed
        // probability from the paper: Pr(c) = 0.5·0.3·(1−0.2)·0.1·0.3 where
        // the last factor is Pr(≥2 of the tie group appear) = 0.3.
        let pr_c = 0.5 * 0.3 * (1.0 - 0.2) * 0.1 * 0.3;
        assert!(pr_c > 0.0);
        let exact = exact_topk_score_distribution(&table, 5, 1 << 20).unwrap();
        assert_distributions_match(&out.distribution, &exact);
    }

    #[test]
    fn streamed_and_materialized_paths_are_bit_identical() {
        let table = soldier_table();
        for k in 1..=5 {
            for p_tau in [1e-9, 0.05] {
                for strategy in [MeStrategy::LeadRegions, MeStrategy::PerEnding] {
                    let config = MainConfig {
                        p_tau,
                        max_lines: 0,
                        me_strategy: strategy,
                        ..MainConfig::default()
                    };
                    let streamed = topk_score_distribution(&table, k, &config).unwrap();
                    let materialized =
                        materialized_topk_score_distribution(&table, k, &config).unwrap();
                    // PartialEq compares exact f64 values: bit-identical.
                    assert_eq!(streamed.distribution, materialized.distribution);
                    assert_eq!(streamed.scan_depth, materialized.scan_depth);
                    assert_eq!(streamed.segments, materialized.segments);
                }
            }
        }
    }

    #[test]
    fn k_larger_than_table_returns_empty() {
        let table = UncertainTable::builder()
            .tuple(1u64, 10.0, 0.5)
            .unwrap()
            .tuple(2u64, 9.0, 0.5)
            .unwrap()
            .build()
            .unwrap();
        let out = topk_score_distribution(&table, 5, &exact_config()).unwrap();
        assert!(out.distribution.is_empty());
        assert_eq!(out.segments, 0);
    }

    #[test]
    fn k_zero_is_rejected() {
        let table = soldier_table();
        assert!(topk_score_distribution(&table, 0, &exact_config()).is_err());
    }

    #[test]
    fn coalescing_bounds_output_lines_and_keeps_mass() {
        let table = soldier_table();
        let mut config = exact_config();
        config.max_lines = 3;
        let out = topk_score_distribution(&table, 2, &config).unwrap();
        assert!(out.distribution.len() <= 3);
        assert!((out.distribution.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_threshold_drops_little_mass() {
        let table = soldier_table();
        let mut config = exact_config();
        config.p_tau = 0.05;
        let out = topk_score_distribution(&table, 2, &config).unwrap();
        // With a coarse threshold the captured mass may shrink, but never by
        // more than ... it should stay close to 1 for this tiny table.
        assert!(out.distribution.total_probability() > 0.9);
        assert!(out.scan_depth <= table.len());
    }

    #[test]
    fn per_ending_and_lead_region_strategies_agree() {
        let table = soldier_table();
        for k in 1..=4 {
            let lead = topk_score_distribution(
                &table,
                k,
                &MainConfig {
                    me_strategy: MeStrategy::LeadRegions,
                    ..exact_config()
                },
            )
            .unwrap();
            let per = topk_score_distribution(
                &table,
                k,
                &MainConfig {
                    me_strategy: MeStrategy::PerEnding,
                    ..exact_config()
                },
            )
            .unwrap();
            assert_distributions_match(&lead.distribution, &per.distribution);
            assert!(per.segments >= lead.segments);
        }
    }
}
