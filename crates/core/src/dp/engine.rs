//! The generic dynamic-programming engine shared by the main algorithm.
//!
//! The engine runs the bottom-up recurrence of §3.2 over an abstract sequence
//! of [`DpRow`]s. A row is either a *simple* uncertain tuple or a *rule
//! tuple* (§3.3.1) compressing an ME group into one row whose include branch
//! enumerates the member tuples. Exit points (the auxiliary column 0 of the
//! paper, §3.3.2) are enabled per row: a top-k vector may have its last
//! (lowest-ranked) member at row `r` only when `exits[r]` is true.
//!
//! The drivers in [`super`] decide how tables are translated into rows and
//! which exits are enabled; the engine is agnostic to those decisions.

use ttk_uncertain::{CoalescePolicy, ScoreColumns, ScoreDistribution, TupleId};

/// One row of the dynamic-programming table.
#[derive(Debug, Clone)]
pub enum DpRow {
    /// A single uncertain tuple.
    Simple {
        /// Tuple id (for witness tracking).
        id: TupleId,
        /// Tuple score.
        score: f64,
        /// Membership probability.
        prob: f64,
    },
    /// A compressed ME group ("rule tuple", §3.3.1): when included, exactly
    /// one of the branches appears; when excluded, none of them appears.
    Rule {
        /// The member tuples: `(id, score, probability)`.
        branches: Vec<(TupleId, f64, f64)>,
    },
}

impl DpRow {
    /// Probability that the row contributes no tuple (the exclude branch).
    pub fn exclude_probability(&self) -> f64 {
        match self {
            DpRow::Simple { prob, .. } => (1.0 - prob).max(0.0),
            DpRow::Rule { branches } => (1.0 - branches.iter().map(|b| b.2).sum::<f64>()).max(0.0),
        }
    }

    /// Number of underlying uncertain tuples represented by the row.
    pub fn width(&self) -> usize {
        match self {
            DpRow::Simple { .. } => 1,
            DpRow::Rule { branches } => branches.len(),
        }
    }
}

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum number of lines kept in any intermediate or final
    /// distribution (`c'` of §3.2.1). Zero disables coalescing.
    pub max_lines: usize,
    /// How coalesced lines combine.
    pub coalesce_policy: CoalescePolicy,
    /// Whether witness vectors are tracked (needed for c-Typical-Topk; can be
    /// disabled to save memory when only the PMF is needed).
    pub track_witnesses: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_lines: 200,
            coalesce_policy: CoalescePolicy::PaperMean,
            track_witnesses: true,
        }
    }
}

/// Runs the dynamic program and returns the distribution of the total score
/// of top-`k` selections over `rows`, where a selection may only have its
/// last selected row at a position `r` with `exits[r] == true`.
///
/// `exits.len()` must equal `rows.len()`.
///
/// The working cells are held as [`ScoreColumns`] — parallel score and
/// probability columns — so the two inner-loop operations run columnar: the
/// exclude branch scales the probability column in place (a branch-free,
/// auto-vectorizable pass with no allocation) and the include branch fuses
/// shift, scale and merge into one sorted-union sweep that only materializes
/// witnesses for surviving lines. Both perform the floating-point arithmetic
/// in exactly the order of the scalar [`ScoreDistribution`] operations, so
/// the returned distribution is bit-identical to the point-at-a-time
/// formulation.
pub fn run(rows: &[DpRow], exits: &[bool], k: usize, config: &EngineConfig) -> ScoreDistribution {
    assert_eq!(rows.len(), exits.len(), "one exit flag per row");
    if k == 0 || rows.is_empty() {
        return ScoreDistribution::empty();
    }

    // `current[j]` holds D_{i+1, j} while processing row i (bottom-up).
    // Column 0 is *not* stored: the recurrence consults `exits[i]` directly
    // when it needs D_{i+1, 0}. `next` is the double buffer the new cells are
    // written into; the two swap every row, so the cell vectors are
    // allocated once.
    let mut current: Vec<ScoreColumns> = vec![ScoreColumns::empty(); k + 1];
    let mut next: Vec<ScoreColumns> = vec![ScoreColumns::empty(); k + 1];
    let unit = ScoreColumns::unit(config.track_witnesses);

    for i in (0..rows.len()).rev() {
        let row = &rows[i];
        let exclude_p = row.exclude_probability();
        // Descending j lets the exclude branch *take* `current[j]` and scale
        // it in place — `current[j]` is never read again this row once the
        // cells above it are done, while `current[j - 1]` (the include
        // branch's input) has not been touched yet. Cell values do not depend
        // on the iteration order.
        for j in (1..=k).rev() {
            // Exclude branch: row i contributes nothing.
            let mut dist = std::mem::take(&mut current[j]);
            dist.scale_in_place(exclude_p);
            // Include branch: row i contributes one tuple; the remaining j-1
            // selections come from below (or from the exit when j == 1).
            let below: &ScoreColumns = if j == 1 {
                if exits[i] {
                    &unit
                } else {
                    // Blocked exit point: distribution (0, 0), i.e. empty.
                    &current[0]
                }
            } else {
                &current[j - 1]
            };
            if !below.is_empty() {
                match row {
                    DpRow::Simple { id, score, prob } => {
                        let prepend = config.track_witnesses.then_some(*id);
                        dist.merge_shifted_scaled(below, *score, *prob, prepend);
                    }
                    DpRow::Rule { branches } => {
                        for (id, score, prob) in branches {
                            let prepend = config.track_witnesses.then_some(*id);
                            dist.merge_shifted_scaled(below, *score, *prob, prepend);
                        }
                    }
                }
            }
            if config.max_lines > 0 {
                dist.coalesce(config.max_lines, config.coalesce_policy);
            }
            next[j] = dist;
        }
        // current[0] stays empty in both buffers: it only models the blocked
        // exit.
        std::mem::swap(&mut current, &mut next);
    }
    std::mem::take(&mut current[k]).into_distribution()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(id: u64, score: f64, prob: f64) -> DpRow {
        DpRow::Simple {
            id: TupleId(id),
            score,
            prob,
        }
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            max_lines: 0,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn exclude_probability_of_rows() {
        assert!((simple(1, 5.0, 0.3).exclude_probability() - 0.7).abs() < 1e-12);
        let rule = DpRow::Rule {
            branches: vec![(TupleId(1), 5.0, 0.3), (TupleId(2), 4.0, 0.5)],
        };
        assert!((rule.exclude_probability() - 0.2).abs() < 1e-12);
        assert_eq!(rule.width(), 2);
        assert_eq!(simple(1, 5.0, 0.3).width(), 1);
    }

    #[test]
    fn top1_of_two_independent_tuples() {
        // Tuples: A (score 10, 0.5), B (score 4, 0.8).
        // Top-1 = 10 with prob 0.5; 4 with prob 0.5*0.8 = 0.4.
        let rows = vec![simple(1, 10.0, 0.5), simple(2, 4.0, 0.8)];
        let d = run(&rows, &[true, true], 1, &cfg());
        assert_eq!(d.len(), 2);
        assert!((d.cdf(5.0) - 0.4).abs() < 1e-12);
        assert!((d.total_probability() - 0.9).abs() < 1e-12);
        // Witnesses recorded with their probabilities.
        let ws = d.witness_vectors();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[1].ids(), &[TupleId(1)]);
    }

    #[test]
    fn top2_requires_both_tuples() {
        let rows = vec![simple(1, 10.0, 0.5), simple(2, 4.0, 0.8)];
        let d = run(&rows, &[true, true], 2, &cfg());
        assert_eq!(d.len(), 1);
        assert!((d.points()[0].score - 14.0).abs() < 1e-12);
        assert!((d.points()[0].probability - 0.4).abs() < 1e-12);
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(1), TupleId(2)]);
    }

    #[test]
    fn blocked_exits_restrict_endings() {
        // Only vectors ending at the second row are allowed.
        let rows = vec![simple(1, 10.0, 0.5), simple(2, 4.0, 0.8)];
        let d = run(&rows, &[false, true], 1, &cfg());
        // Top-1 ending at row 1 means row 0 must be absent.
        assert_eq!(d.len(), 1);
        assert!((d.points()[0].score - 4.0).abs() < 1e-12);
        assert!((d.points()[0].probability - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rule_rows_enumerate_members_top1() {
        // One ME group {A: 10/0.3, B: 9/0.4} (both members ranked above the
        // independent tuple C: 8/0.5), exits enabled everywhere, k = 1.
        //
        // Ground truth: top-1 = 10 with 0.3 (A appears); 9 with 0.4 (B
        // appears, A automatically absent); 8 with 0.5·(1−0.7) = 0.15 (C
        // appears, neither group member does).
        let rule = DpRow::Rule {
            branches: vec![(TupleId(1), 10.0, 0.3), (TupleId(2), 9.0, 0.4)],
        };
        let rows = vec![rule, simple(3, 8.0, 0.5)];
        let d = run(&rows, &[true, true], 1, &cfg());
        let probs: Vec<(f64, f64)> = d.pairs().collect();
        assert_eq!(probs.len(), 3);
        assert!((probs[0].0 - 8.0).abs() < 1e-12 && (probs[0].1 - 0.15).abs() < 1e-12);
        assert!((probs[1].0 - 9.0).abs() < 1e-12 && (probs[1].1 - 0.4).abs() < 1e-12);
        assert!((probs[2].0 - 10.0).abs() < 1e-12 && (probs[2].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rule_rows_with_restricted_exit_top2() {
        // Same data, but only vectors ending at C are allowed (the per-ending
        // construction of §3.3.2), k = 2.
        //
        // Ground truth: <A, C> with 0.3·0.5 = 0.15 (score 18) and <B, C> with
        // 0.4·0.5 = 0.2 (score 17).
        let rule = DpRow::Rule {
            branches: vec![(TupleId(1), 10.0, 0.3), (TupleId(2), 9.0, 0.4)],
        };
        let rows = vec![rule, simple(3, 8.0, 0.5)];
        let d = run(&rows, &[false, true], 2, &cfg());
        let probs: Vec<(f64, f64)> = d.pairs().collect();
        assert_eq!(probs.len(), 2);
        assert!((probs[0].0 - 17.0).abs() < 1e-12 && (probs[0].1 - 0.2).abs() < 1e-12);
        assert!((probs[1].0 - 18.0).abs() < 1e-12 && (probs[1].1 - 0.15).abs() < 1e-12);
        // Witness of score 17 is <B, C>.
        let w = d.points()[0].witness.as_ref().unwrap();
        assert_eq!(w.ids, vec![TupleId(2), TupleId(3)]);
    }

    #[test]
    fn k_zero_or_empty_rows_give_empty_distribution() {
        assert!(run(&[], &[], 3, &cfg()).is_empty());
        let rows = vec![simple(1, 1.0, 0.5)];
        assert!(run(&rows, &[true], 0, &cfg()).is_empty());
    }

    #[test]
    fn witness_tracking_can_be_disabled() {
        let rows = vec![simple(1, 10.0, 0.5), simple(2, 4.0, 0.8)];
        let mut config = cfg();
        config.track_witnesses = false;
        let d = run(&rows, &[true, true], 1, &config);
        assert!(d.points().iter().all(|p| p.witness.is_none()));
    }

    #[test]
    fn coalescing_limits_lines() {
        let rows: Vec<DpRow> = (0..40)
            .map(|i| simple(i as u64, 1000.0 - i as f64 * 7.3, 0.5))
            .collect();
        let exits = vec![true; rows.len()];
        let config = EngineConfig {
            max_lines: 16,
            ..EngineConfig::default()
        };
        let d = run(&rows, &exits, 3, &config);
        assert!(d.len() <= 16);
        assert!(d.total_probability() <= 1.0 + 1e-9);
    }

    #[test]
    fn certain_tuples_concentrate_all_mass() {
        let rows = vec![
            simple(1, 5.0, 1.0),
            simple(2, 3.0, 1.0),
            simple(3, 1.0, 1.0),
        ];
        let d = run(&rows, &[true, true, true], 2, &cfg());
        assert_eq!(d.len(), 1);
        assert!((d.points()[0].score - 8.0).abs() < 1e-12);
        assert!((d.points()[0].probability - 1.0).abs() < 1e-12);
    }
}
