//! The unified execution API: [`Dataset`] + [`Session`].
//!
//! Earlier revisions of this workspace exposed the Theorem-2 scan through
//! five parallel entry points (`execute`, `execute_source`, `execute_shards`,
//! `execute_batch`, `execute_batch_sources`), one per physical input shape.
//! This module replaces them with a single composable pair:
//!
//! * a [`Dataset`] abstracts **what is scanned** — an in-memory
//!   [`UncertainTable`], an owned rank-ordered stream, a set of shard
//!   streams, or any [`DatasetProvider`] (the CSV datasets of `ttk-pdb`, a
//!   generator closure). Every kind opens into the same
//!   [`ScanHandle`], and replayable kinds cache
//!   their expensive artifacts (a spilled CSV keeps its external-sort run
//!   files) so *plan once, run many* holds across queries;
//! * a [`Session`] owns the reusable [`Executor`] and exposes exactly three
//!   verbs: [`Session::execute`], [`Session::execute_batch`] (cost-ordered,
//!   optionally with a bounded-result-memory sink) and [`Session::explain`],
//!   which reports the chosen scan path as a [`PlanDescription`] without
//!   running anything.
//!
//! The legacy entry points remain as thin deprecated wrappers for one
//! release; property tests assert the new path is bit-identical to each of
//! them.
//!
//! ```
//! use ttk_core::{Dataset, Session, TopkQuery};
//! use ttk_uncertain::UncertainTable;
//!
//! let table = UncertainTable::builder()
//!     .tuple(1u64, 60.0, 0.6)?
//!     .tuple(2u64, 50.0, 0.4)?
//!     .tuple(3u64, 40.0, 1.0)?
//!     .me_rule([1u64, 2u64])
//!     .build()?;
//!
//! let dataset = Dataset::table(table);
//! let mut session = Session::new();
//! let query = TopkQuery::new(2).with_u_topk(false);
//! println!("{}", session.explain(&dataset, &query));
//! let answer = session.execute(&dataset, &query)?;
//! assert!(answer.expected_score() > 90.0);
//! # Ok::<(), ttk_uncertain::Error>(())
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};

use ttk_uncertain::{Error, Result, ScanHandle, TupleSource, UncertainTable};

use crate::query::{resolve_threads, Algorithm, Executor, QueryAnswer, TopkQuery};
use crate::scan_depth::GateMeter;

/// How a dataset will be scanned, as chosen by [`Dataset::plan`] /
/// [`Session::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPath {
    /// An in-memory [`UncertainTable`] streamed in rank order (U-Topk, when
    /// requested, searches the table directly).
    InMemory,
    /// A single rank-ordered stream.
    Stream,
    /// Per-shard rank-ordered streams fused under a loser-tree k-way merge.
    MergedShards {
        /// Number of physical shard streams.
        shards: usize,
    },
    /// External-sort spill runs replayed as shard streams under the merge.
    SpilledRuns {
        /// Number of runs under the merge, when the sort pass has already run.
        runs: Option<usize>,
        /// Number of runs spilled to disk (the rest stay in memory).
        spilled: Option<usize>,
        /// True when a cached spill index will be replayed — the external
        /// sort pass is skipped entirely.
        reused: bool,
    },
    /// Shard streams decoded from remote processes over the wire protocol,
    /// optionally merged with local shard streams — one scan spanning
    /// machines.
    Remote {
        /// Number of remote shard connections.
        remote: usize,
        /// Number of local shard streams merged alongside them.
        local: usize,
    },
    /// Remote shard streams opened in v3 query mode: each server evaluates
    /// the conservative per-shard Theorem-2 bound and ships only the gated
    /// prefix, with the merge-side gate pushing bound updates back. Servers
    /// that only speak v1/v2 silently fall back to full replay on their
    /// connection.
    RemotePushdown {
        /// Number of remote shard connections.
        remote: usize,
        /// Number of local shard streams merged alongside them.
        local: usize,
    },
    /// Per-shard streams feeding the loser-tree merge through bounded
    /// prefetch channels (each shard on its own producer thread), so
    /// per-shard I/O overlaps with the merge.
    Prefetched {
        /// Number of physical shard streams.
        shards: usize,
        /// Per-shard channel capacity in tuples.
        buffer: usize,
    },
    /// The whole query shipped to a query-serving daemon (`ttk serve`): the
    /// server executes against its resident dataset and streams the answer
    /// back, so no tuples cross the network at all.
    RemoteQuery,
    /// A live dataset's watermarked snapshot: the sealed, rank-ordered
    /// segments published at one epoch, fused under the loser-tree k-way
    /// merge. Appends after the snapshot was taken are invisible to this
    /// scan.
    Live {
        /// Number of sealed segments under the merge.
        segments: usize,
        /// The snapshot's epoch (advances by one per seal).
        epoch: u64,
        /// Epoch of the log's most recent LSM-style compaction (`0` when the
        /// log was never compacted).
        compacted_epoch: u64,
    },
}

impl std::fmt::Display for ScanPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanPath::InMemory => write!(f, "in-memory table scan"),
            ScanPath::Stream => write!(f, "single-stream scan"),
            ScanPath::MergedShards { shards } => {
                write!(f, "k-way merge over {shards} shard streams")
            }
            ScanPath::SpilledRuns {
                runs,
                spilled,
                reused,
            } => {
                match runs {
                    Some(runs) => write!(f, "external-sort scan over {runs} runs")?,
                    None => write!(f, "external-sort scan (runs decided at open)")?,
                }
                if let Some(spilled) = spilled {
                    write!(f, " ({spilled} spilled to disk)")?;
                }
                if *reused {
                    write!(f, ", reusing the cached spill index (no re-sort)")?;
                }
                Ok(())
            }
            ScanPath::Remote { remote, local } => {
                write!(f, "k-way merge over {remote} remote shard streams")?;
                if *local > 0 {
                    write!(f, " and {local} local shard streams")?;
                }
                Ok(())
            }
            ScanPath::RemotePushdown { remote, local } => {
                write!(
                    f,
                    "k-way merge over {remote} remote shard streams \
                     (scan-gate pushdown: servers ship the Theorem-2 prefix)"
                )?;
                if *local > 0 {
                    write!(f, " and {local} local shard streams")?;
                }
                Ok(())
            }
            ScanPath::Prefetched { shards, buffer } => write!(
                f,
                "k-way merge over {shards} shard streams, each prefetched \
                 through a {buffer}-tuple channel"
            ),
            ScanPath::RemoteQuery => write!(
                f,
                "remote query execution on a serving daemon (the answer ships, \
                 not the tuples)"
            ),
            ScanPath::Live {
                segments,
                epoch,
                compacted_epoch,
            } => {
                write!(
                    f,
                    "live snapshot scan at epoch {epoch}: k-way merge over \
                     {segments} sealed segments"
                )?;
                if *compacted_epoch > 0 {
                    write!(f, " (last compacted at epoch {compacted_epoch})")?;
                }
                Ok(())
            }
        }
    }
}

/// The static facts a dataset knows about itself before it is opened.
#[derive(Debug, Clone)]
pub struct DatasetPlan {
    /// The scan path [`Dataset::open`] will take.
    pub path: ScanPath,
    /// Number of tuples the scan could read, when known without opening.
    pub rows: Option<usize>,
}

/// What the executor is about to do with a scan — handed to
/// [`DatasetProvider::open_for`] so query-aware providers (remote shard
/// datasets) can negotiate pushdown with their servers. Providers that
/// ignore it behave exactly as before.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// The query size k.
    pub k: usize,
    /// The probability threshold pτ driving the Theorem-2 bound.
    pub p_tau: f64,
    /// True when the consumer will drain the full stream regardless of
    /// Theorem 2 (U-Topk comparison, exhaustive algorithm) — pushdown must
    /// not truncate anything.
    pub full_stream: bool,
    /// The merge-side gate's accumulated-mass meter; network-backed
    /// providers read it to push bound updates to their servers.
    pub meter: GateMeter,
}

impl ScanSpec {
    /// The spec [`Session::execute`] derives from a query.
    pub fn for_query(query: &TopkQuery) -> Self {
        ScanSpec {
            k: query.k,
            p_tau: query.p_tau,
            full_stream: query.compute_u_topk || query.algorithm == Algorithm::Exhaustive,
            meter: GateMeter::new(),
        }
    }
}

/// A pluggable physical input: anything that can open into a
/// [`ScanHandle`] and describe its scan path.
///
/// This is the seam future inputs (async ingestion adapters, distributed
/// shard feeds) plug into: implement `open`/`plan` once and every [`Session`]
/// verb — single queries, cost-ordered batches, `explain` — works unchanged.
/// `ttk-pdb` implements it for CSV relations (with cached scoring passes and
/// a reusable external-sort spill index); [`Dataset::generator`] adapts any
/// replayable closure.
pub trait DatasetProvider: Send + Sync {
    /// Opens a fresh scan over the input.
    ///
    /// Called once per query; implementations should cache expensive
    /// artifacts (sort passes, schema inference) internally so repeated opens
    /// are cheap replays.
    ///
    /// # Errors
    ///
    /// Implementations surface I/O and validation failures as
    /// [`ttk_uncertain::Error`] (typically [`Error::Source`]).
    fn open(&self) -> Result<ScanHandle>;

    /// Describes how [`DatasetProvider::open`] will scan, without opening.
    fn plan(&self) -> DatasetPlan;

    /// Opens a fresh scan *for a specific query*. Query-aware providers
    /// (remote shard datasets negotiating scan-gate pushdown) override this;
    /// the default ignores the spec and delegates to
    /// [`DatasetProvider::open`].
    ///
    /// # Errors
    ///
    /// As [`DatasetProvider::open`].
    fn open_for(&self, spec: &ScanSpec) -> Result<ScanHandle> {
        let _ = spec;
        self.open()
    }

    /// Describes how [`DatasetProvider::open_for`] will scan a query that
    /// does (or does not) drain the full stream. The default delegates to
    /// [`DatasetProvider::plan`].
    fn plan_for(&self, full_stream: bool) -> DatasetPlan {
        let _ = full_stream;
        self.plan()
    }

    /// The provider's current epoch — the watermark a scan opened *now*
    /// would see. Static providers never change, so the default is a
    /// constant `0`; live providers (`ttk_core::live`) report their sealed
    /// snapshot's epoch, which cache keys incorporate so an answer computed
    /// at one watermark is never served for another.
    fn epoch(&self) -> u64 {
        0
    }
}

/// Adapts a replayable closure (generators are seeded and deterministic) to
/// [`DatasetProvider`].
struct FnProvider<F> {
    open: F,
}

impl<F, S> DatasetProvider for FnProvider<F>
where
    F: Fn() -> Result<S> + Send + Sync,
    S: TupleSource + Send + 'static,
{
    fn open(&self) -> Result<ScanHandle> {
        Ok(ScanHandle::single((self.open)()?))
    }

    fn plan(&self) -> DatasetPlan {
        DatasetPlan {
            path: ScanPath::Stream,
            rows: None,
        }
    }
}

/// The physical input kinds a [`Dataset`] unifies.
enum Inner {
    Table(Arc<UncertainTable>),
    Stream(Mutex<Option<Box<dyn TupleSource + Send>>>),
    Shards {
        slot: Mutex<Option<Vec<Box<dyn TupleSource + Send>>>>,
        count: usize,
    },
    Provider(Box<dyn DatasetProvider>),
}

/// One logical relation, whatever its physical shape.
///
/// A `Dataset` is the single input abstraction of the workspace: every
/// constructor wraps one physical input kind, and [`Dataset::open`] turns any
/// of them into the uniform [`ScanHandle`] the rank-scan executor consumes.
/// Replayable kinds (tables, providers, generators) can be opened once per
/// query for as long as the dataset lives; single-pass kinds
/// ([`Dataset::stream`], [`Dataset::shards`]) open exactly once and report a
/// clear error afterwards.
///
/// Datasets are `Sync`, so one dataset can back every job of a parallel
/// [`Session::execute_batch`].
pub struct Dataset {
    inner: Inner,
    label: String,
    /// Process-unique identity, used to key per-dataset state (observed
    /// scan depths) without relying on labels, which need not be unique.
    id: u64,
}

/// Allocates the next process-unique dataset id.
fn next_dataset_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("label", &self.label)
            .field("kind", &self.kind())
            .finish()
    }
}

impl Dataset {
    /// Wraps an owned in-memory table.
    ///
    /// The table is shared behind an [`Arc`]; every open streams it in rank
    /// order, and U-Topk (when requested) searches the table directly —
    /// bit-identical to the legacy `execute` entry point.
    ///
    /// ```
    /// use ttk_core::{Dataset, Session, TopkQuery};
    /// use ttk_uncertain::UncertainTable;
    ///
    /// let table = UncertainTable::builder()
    ///     .tuple(1u64, 9.0, 0.5)?
    ///     .tuple(2u64, 7.0, 1.0)?
    ///     .build()?;
    /// let dataset = Dataset::table(table);
    /// let mut session = Session::new();
    /// // Replayable: the same dataset serves many queries.
    /// for k in 1..=2 {
    ///     session.execute(&dataset, &TopkQuery::new(k).with_u_topk(false))?;
    /// }
    /// # Ok::<(), ttk_uncertain::Error>(())
    /// ```
    pub fn table(table: UncertainTable) -> Self {
        Dataset::shared_table(Arc::new(table))
    }

    /// Wraps a table already shared behind an [`Arc`] (no copy).
    pub fn shared_table(table: Arc<UncertainTable>) -> Self {
        Dataset {
            inner: Inner::Table(table),
            label: "table".to_string(),
            id: next_dataset_id(),
        }
    }

    /// Wraps a single-pass rank-ordered stream.
    ///
    /// The stream is consumed by the first open; a second
    /// [`Session::execute`] against the same dataset reports an error instead
    /// of silently returning an empty answer.
    ///
    /// ```
    /// use ttk_core::{Dataset, Session, TopkQuery};
    /// use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource};
    ///
    /// let tuples = vec![
    ///     SourceTuple::independent(UncertainTuple::new(1u64, 9.0, 0.5)?),
    ///     SourceTuple::independent(UncertainTuple::new(2u64, 7.0, 1.0)?),
    /// ];
    /// let dataset = Dataset::stream(VecSource::new(tuples));
    /// let mut session = Session::new();
    /// let query = TopkQuery::new(1).with_u_topk(false);
    /// assert!(session.execute(&dataset, &query).is_ok());
    /// // Single-pass: the second run is rejected, not silently empty.
    /// assert!(session.execute(&dataset, &query).is_err());
    /// # Ok::<(), ttk_uncertain::Error>(())
    /// ```
    pub fn stream(source: impl TupleSource + Send + 'static) -> Self {
        Dataset {
            inner: Inner::Stream(Mutex::new(Some(Box::new(source)))),
            label: "stream".to_string(),
            id: next_dataset_id(),
        }
    }

    /// Wraps the shard streams of **one partitioned relation** (shared
    /// group-key namespace); opening fuses them under the loser-tree k-way
    /// merge, bit-identical to the legacy `execute_shards` entry point.
    /// Single-pass, like [`Dataset::stream`].
    ///
    /// ```
    /// use ttk_core::{Dataset, ScanPath, Session, TopkQuery};
    /// use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource};
    ///
    /// let shard = |id: u64, score: f64| {
    ///     VecSource::new(vec![SourceTuple::independent(
    ///         UncertainTuple::new(id, score, 0.8).unwrap(),
    ///     )])
    /// };
    /// let dataset = Dataset::shards(vec![shard(1, 9.0), shard(2, 7.0)]);
    /// let mut session = Session::new();
    /// let query = TopkQuery::new(1).with_u_topk(false);
    /// let plan = session.explain(&dataset, &query);
    /// assert_eq!(plan.path, ScanPath::MergedShards { shards: 2 });
    /// session.execute(&dataset, &query)?;
    /// # Ok::<(), ttk_uncertain::Error>(())
    /// ```
    pub fn shards<S: TupleSource + Send + 'static>(shards: Vec<S>) -> Self {
        let count = shards.len();
        let boxed: Vec<Box<dyn TupleSource + Send>> = shards
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn TupleSource + Send>)
            .collect();
        Dataset {
            inner: Inner::Shards {
                slot: Mutex::new(Some(boxed)),
                count,
            },
            label: format!("shards({count})"),
            id: next_dataset_id(),
        }
    }

    /// Wraps a replayable generator closure: every open calls the closure for
    /// a fresh stream, so one dataset serves many queries (generators in this
    /// workspace are seeded and deterministic).
    ///
    /// ```
    /// use ttk_core::{Dataset, Session, TopkQuery};
    /// use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource};
    ///
    /// let dataset = Dataset::generator(|| {
    ///     Ok(VecSource::new(vec![
    ///         SourceTuple::independent(UncertainTuple::new(1u64, 9.0, 0.5)?),
    ///         SourceTuple::independent(UncertainTuple::new(2u64, 7.0, 1.0)?),
    ///     ]))
    /// });
    /// let mut session = Session::new();
    /// let query = TopkQuery::new(1).with_u_topk(false);
    /// let first = session.execute(&dataset, &query)?;
    /// let second = session.execute(&dataset, &query)?; // replays
    /// assert_eq!(first.distribution, second.distribution);
    /// # Ok::<(), ttk_uncertain::Error>(())
    /// ```
    pub fn generator<F, S>(open: F) -> Self
    where
        F: Fn() -> Result<S> + Send + Sync + 'static,
        S: TupleSource + Send + 'static,
    {
        Dataset {
            inner: Inner::Provider(Box::new(FnProvider { open })),
            label: "generator".to_string(),
            id: next_dataset_id(),
        }
    }

    /// Wraps a custom [`DatasetProvider`] (e.g. the CSV datasets of
    /// `ttk-pdb`).
    pub fn from_provider(provider: impl DatasetProvider + 'static) -> Self {
        Dataset {
            inner: Inner::Provider(Box::new(provider)),
            label: "provider".to_string(),
            id: next_dataset_id(),
        }
    }

    /// Replaces the human-readable label used in plans and error messages.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The human-readable label (file name, generator name, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The dataset's process-unique identity — what sessions key their
    /// observed scan depths by, and what a query-serving daemon keys its
    /// result cache by. Stable for the dataset's lifetime and never reused
    /// within a process, but **not** stable across processes.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The dataset's current epoch: `0` for every static kind, the sealed
    /// snapshot's watermark for a live provider. Part of the serving
    /// daemon's cache key, so appends invalidate cached answers.
    pub fn epoch(&self) -> u64 {
        match &self.inner {
            Inner::Provider(provider) => provider.epoch(),
            _ => 0,
        }
    }

    /// The dataset kind, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match &self.inner {
            Inner::Table(_) => "in-memory table",
            Inner::Stream(_) => "single-pass stream",
            Inner::Shards { .. } => "single-pass shard set",
            Inner::Provider(_) => "provider",
        }
    }

    /// Opens a fresh scan over the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when a single-pass kind
    /// ([`Dataset::stream`] / [`Dataset::shards`]) has already been consumed,
    /// and propagates provider open failures.
    pub fn open(&self) -> Result<ScanHandle> {
        match &self.inner {
            Inner::Table(table) => Ok(ScanHandle::single(table.to_source())),
            Inner::Stream(slot) => slot
                .lock()
                .expect("dataset stream slot poisoned")
                .take()
                .map(ScanHandle::from_boxed)
                .ok_or_else(|| self.consumed_error()),
            Inner::Shards { slot, .. } => slot
                .lock()
                .expect("dataset shard slot poisoned")
                .take()
                .map(ScanHandle::merged)
                .ok_or_else(|| self.consumed_error()),
            Inner::Provider(provider) => provider.open(),
        }
    }

    /// Opens a fresh scan for a specific query: provider datasets receive
    /// the [`ScanSpec`] (remote datasets negotiate pushdown from it), every
    /// other kind behaves exactly like [`Dataset::open`].
    ///
    /// # Errors
    ///
    /// As [`Dataset::open`].
    pub fn open_for(&self, spec: &ScanSpec) -> Result<ScanHandle> {
        match &self.inner {
            Inner::Provider(provider) => provider.open_for(spec),
            _ => self.open(),
        }
    }

    fn consumed_error(&self) -> Error {
        Error::InvalidParameter(format!(
            "dataset `{}` ({}) was already consumed; single-pass datasets serve exactly \
             one query — use a replayable kind (table, CSV, generator) to run many",
            self.label,
            self.kind()
        ))
    }

    /// Describes how [`Dataset::open`] will scan, without opening.
    pub fn plan(&self) -> DatasetPlan {
        match &self.inner {
            Inner::Table(table) => DatasetPlan {
                path: ScanPath::InMemory,
                rows: Some(table.len()),
            },
            Inner::Stream(slot) => DatasetPlan {
                path: ScanPath::Stream,
                rows: slot
                    .lock()
                    .expect("dataset stream slot poisoned")
                    .as_ref()
                    .and_then(|s| s.size_hint()),
            },
            Inner::Shards { slot, count } => DatasetPlan {
                path: ScanPath::MergedShards { shards: *count },
                rows: slot
                    .lock()
                    .expect("dataset shard slot poisoned")
                    .as_ref()
                    .and_then(|shards| shards.iter().map(|s| s.size_hint()).sum()),
            },
            Inner::Provider(provider) => provider.plan(),
        }
    }

    /// Describes how [`Dataset::open_for`] will scan a query that does (or
    /// does not) drain the full stream, without opening.
    pub fn plan_for(&self, full_stream: bool) -> DatasetPlan {
        match &self.inner {
            Inner::Provider(provider) => provider.plan_for(full_stream),
            _ => self.plan(),
        }
    }

    /// The in-memory table behind this dataset, when it wraps one (used for
    /// the direct U-Topk search path).
    fn as_table(&self) -> Option<&UncertainTable> {
        match &self.inner {
            Inner::Table(table) => Some(table),
            _ => None,
        }
    }
}

/// The executor-chosen plan for one (dataset, query) pair, as reported by
/// [`Session::explain`].
#[derive(Debug, Clone)]
pub struct PlanDescription {
    /// The dataset's label.
    pub dataset: String,
    /// The scan path execution will take.
    pub path: ScanPath,
    /// Number of tuples the scan could read, when known without opening.
    pub rows: Option<usize>,
    /// The distribution algorithm the query selects.
    pub algorithm: Algorithm,
    /// The query size k.
    pub k: usize,
    /// The probability threshold pτ driving the Theorem-2 bound.
    pub p_tau: f64,
    /// Heuristic estimate of the Theorem-2 scan depth (`None` when even an
    /// estimate is meaningless, e.g. an exhaustive scan of unknown size).
    pub estimated_depth: Option<usize>,
    /// The scan depth the session *observed* the last time it executed this
    /// `(dataset, k, pτ)` combination — the calibration signal for the cost
    /// model. `None` until the session has executed the query once.
    pub observed_depth: Option<usize>,
    /// Relative cost estimate used by the batch scheduler (bigger = run
    /// earlier under cost ordering).
    pub estimated_cost: f64,
    /// True when the query drains the full stream regardless of Theorem 2
    /// (U-Topk comparison requested, or the exhaustive algorithm).
    pub drains_stream: bool,
    /// Tuples that actually crossed the network the last time the session
    /// executed this `(dataset, k, pτ)` combination — the shipped-vs-scanned
    /// evidence for scan-gate pushdown. `None` for local datasets or before
    /// the first execution.
    pub observed_wire_tuples: Option<u64>,
    /// Columnar block frames that carried those wire tuples the last time
    /// this combination executed remotely — `Some(0)` when the transport
    /// fell back to tuple-at-a-time frames (a pre-block peer), `None` for
    /// local datasets or before the first execution.
    pub observed_wire_blocks: Option<u64>,
    /// Tuples that arrived *inside* columnar block frames (the rest crossed
    /// as per-tuple frames). Divide by [`observed_wire_blocks`] for the mean
    /// block fill, or use [`PlanDescription::mean_block_fill`].
    ///
    /// [`observed_wire_blocks`]: PlanDescription::observed_wire_blocks
    pub observed_wire_block_tuples: Option<u64>,
    /// Whether a query-serving daemon answered this query from its result
    /// cache. `None` for local execution (there is no server-side cache);
    /// populated by the remote-query client path, where the server reports
    /// the outcome in its result header.
    pub server_cache_hit: Option<bool>,
    /// The dataset epoch this plan is pinned to: the live snapshot's
    /// watermark for live datasets (local or server-reported), `None` for
    /// static datasets.
    pub dataset_epoch: Option<u64>,
    /// The serving daemon's result-cache generation at answer time
    /// (advances whenever an append/seal invalidates cached epochs).
    /// `None` for local execution or pre-v5 servers.
    pub server_cache_generation: Option<u64>,
    /// Sealed segments under the live snapshot this plan scans — local live
    /// datasets report their snapshot, v6 servers report it in the result
    /// tail. `None` for static datasets and pre-v6 servers.
    pub live_segments: Option<usize>,
    /// Epoch of the live log's most recent LSM-style compaction (`0` when it
    /// was never compacted). `None` for static datasets and pre-v6 servers.
    pub last_compaction_epoch: Option<u64>,
}

impl PlanDescription {
    /// The cost model's drift for this plan: observed over estimated scan
    /// depth (1.0 = perfectly calibrated, above 1 = the heuristic
    /// underestimates). `None` until the session has both an estimate and an
    /// observation.
    pub fn observed_vs_estimated(&self) -> Option<f64> {
        let estimated = self.estimated_depth?;
        let observed = self.observed_depth?;
        Some(observed as f64 / estimated.max(1) as f64)
    }

    /// Mean tuples per columnar block frame observed on the wire. `None`
    /// until a remote execution has been observed, or when no block frames
    /// crossed at all (tuple-at-a-time transport).
    pub fn mean_block_fill(&self) -> Option<f64> {
        let blocks = self.observed_wire_blocks?;
        let tuples = self.observed_wire_block_tuples?;
        (blocks > 0).then(|| tuples as f64 / blocks as f64)
    }
}

impl std::fmt::Display for PlanDescription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "dataset `{}`: {}", self.dataset, self.path)?;
        match self.rows {
            Some(rows) => writeln!(f, "  rows: {rows}")?,
            None => writeln!(f, "  rows: unknown until opened")?,
        }
        writeln!(
            f,
            "  query: algorithm {:?}, k = {}, p_tau = {:e}",
            self.algorithm, self.k, self.p_tau
        )?;
        match self.estimated_depth {
            Some(depth) => writeln!(f, "  estimated scan depth: {depth} tuples")?,
            None => writeln!(f, "  estimated scan depth: unknown")?,
        }
        if let Some(observed) = self.observed_depth {
            match self.observed_vs_estimated() {
                Some(drift) => writeln!(
                    f,
                    "  observed scan depth: {observed} tuples ({drift:.2}x estimated)"
                )?,
                None => writeln!(f, "  observed scan depth: {observed} tuples")?,
            }
        }
        if let Some(wire) = self.observed_wire_tuples {
            writeln!(f, "  observed wire tuples: {wire}")?;
            match (self.observed_wire_blocks, self.mean_block_fill()) {
                (Some(blocks), Some(fill)) => writeln!(
                    f,
                    "  observed wire blocks: {blocks} (mean fill {fill:.1} tuples)"
                )?,
                (Some(0), None) => {
                    writeln!(f, "  observed wire blocks: 0 (tuple-at-a-time frames)")?
                }
                _ => {}
            }
        }
        if let Some(hit) = self.server_cache_hit {
            writeln!(
                f,
                "  server result cache: {}",
                if hit { "hit" } else { "miss" }
            )?;
        }
        if let Some(epoch) = self.dataset_epoch {
            writeln!(f, "  dataset epoch: {epoch}")?;
        }
        if let Some(generation) = self.server_cache_generation {
            writeln!(f, "  server cache generation: {generation}")?;
        }
        if let Some(segments) = self.live_segments {
            writeln!(f, "  live segments: {segments}")?;
        }
        if let Some(compacted) = self.last_compaction_epoch {
            match compacted {
                0 => writeln!(f, "  last compaction: never")?,
                epoch => writeln!(f, "  last compaction: epoch {epoch}")?,
            }
        }
        writeln!(f, "  estimated cost: {:.0}", self.estimated_cost)?;
        write!(
            f,
            "  full stream drained: {}",
            if self.drains_stream {
                "yes (U-Topk comparison or exhaustive algorithm)"
            } else {
                "no (Theorem-2 bounded)"
            }
        )
    }
}

/// Heuristic estimate of the Theorem-2 scan depth for a `(k, pτ)` query over
/// a relation of `rows` tuples (when known).
///
/// The true depth depends on the data (Theorem 2 stops once the k-th largest
/// admitted group mass pushes the tail probability under pτ); this estimate
/// only needs to *order* jobs sensibly: it grows linearly in `k`,
/// logarithmically in `1/pτ`, and is clamped to the relation size.
pub fn estimated_scan_depth(k: usize, p_tau: f64, rows: Option<usize>) -> usize {
    let p = p_tau.clamp(1e-12, 1.0);
    let estimate = (k as f64 * (1.0 + (1.0 / p).ln())).ceil() as usize;
    let estimate = estimate.max(k);
    match rows {
        Some(rows) => estimate.min(rows),
        None => estimate,
    }
}

/// Relative cost estimate of one query: the batch scheduler's key (bigger =
/// scheduled earlier under [`BatchOrdering::CostDescending`]).
///
/// Scan depth × k approximates the DP work; queries that drain the full
/// stream (U-Topk requested, exhaustive algorithm) pay for the drain and the
/// full-table search on top.
pub fn estimated_cost(query: &TopkQuery, rows: Option<usize>) -> f64 {
    let depth = estimated_scan_depth(query.k, query.p_tau, rows);
    let k = query.k.max(1) as f64;
    let mut cost = depth as f64 * k;
    if query.compute_u_topk || query.algorithm == Algorithm::Exhaustive {
        cost += rows.unwrap_or(depth) as f64 * k;
    }
    cost
}

/// Indices `0..costs.len()` sorted by cost **descending**, ties broken by
/// submission order — the big-jobs-first schedule of
/// [`Session::execute_batch`].
///
/// Running expensive jobs first keeps the tail of a parallel batch short: a
/// big job submitted last no longer starts when everything else is done and
/// serializes the batch behind it.
pub fn cost_descending_order(costs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// How [`Session::execute_batch`] orders its work queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchOrdering {
    /// Estimated-cost descending (big jobs first) — the default; see
    /// [`cost_descending_order`].
    #[default]
    CostDescending,
    /// Jobs run in submission order.
    Submission,
}

/// Options of a [`Session::execute_batch`] run.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads (`0` = one per available CPU).
    pub threads: usize,
    /// Work-queue ordering (default: cost descending).
    pub ordering: BatchOrdering,
    /// Upper bound on finished-but-undelivered answers held in memory at
    /// once; `None` = unbounded (all results may be resident). See
    /// [`BatchOptions::max_resident_results`].
    pub max_resident: Option<usize>,
}

impl BatchOptions {
    /// Default options: auto thread count, cost-descending ordering,
    /// unbounded result memory.
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Sets the worker thread count (`0` = one per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the work-queue ordering.
    pub fn with_ordering(mut self, ordering: BatchOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Bounds how many finished answers may sit undelivered at once: workers
    /// block once `n` results are in flight, so a very large batch consumed
    /// through [`Session::execute_batch_with`] holds O(`n`) answers in memory
    /// instead of one per job.
    pub fn max_resident_results(mut self, n: usize) -> Self {
        self.max_resident = Some(n.max(1));
        self
    }
}

/// One job of a [`Session::execute_batch`]: a dataset reference plus the
/// query to run against it. Jobs are cheap to construct; many jobs may share
/// one replayable [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct QueryJob<'a> {
    /// The dataset the query scans.
    pub dataset: &'a Dataset,
    /// The query parameters.
    pub query: TopkQuery,
}

impl<'a> QueryJob<'a> {
    /// Bundles a dataset and a query.
    pub fn new(dataset: &'a Dataset, query: TopkQuery) -> Self {
        QueryJob { dataset, query }
    }
}

/// A long-lived query session: one [`Executor`] (scratch buffers reused
/// across queries) behind the three verbs of the unified API —
/// [`Session::execute`], [`Session::execute_batch`] and [`Session::explain`].
///
/// ```
/// use ttk_core::{BatchOptions, Dataset, QueryJob, Session, TopkQuery};
/// use ttk_uncertain::UncertainTable;
///
/// let table = UncertainTable::builder()
///     .tuple(1u64, 9.0, 0.5)?
///     .tuple(2u64, 7.0, 1.0)?
///     .tuple(3u64, 5.0, 0.8)?
///     .build()?;
/// let dataset = Dataset::table(table);
/// let jobs: Vec<QueryJob> = (1..=3)
///     .map(|k| QueryJob::new(&dataset, TopkQuery::new(k).with_u_topk(false)))
///     .collect();
/// let answers = Session::new().execute_batch(&jobs, &BatchOptions::new());
/// assert_eq!(answers.len(), 3);
/// assert!(answers.iter().all(|a| a.is_ok()));
/// # Ok::<(), ttk_uncertain::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct Session {
    executor: Executor,
    /// Observed Theorem-2 scan depths keyed by `(dataset id, k, pτ bits)`
    /// — the calibration data [`Session::explain`] reports back as
    /// [`PlanDescription::observed_depth`]. Keyed by the dataset's
    /// process-unique id (not its label, which need not be unique), so two
    /// same-kind datasets never read each other's observations.
    observations: std::collections::HashMap<(u64, usize, u64), usize>,
    /// Observed wire traffic (same key), recorded when a dataset's scan
    /// crossed the network — reported back as
    /// [`PlanDescription::observed_wire_tuples`] and the block-transport
    /// fields next to it.
    wire_observations: std::collections::HashMap<(u64, usize, u64), WireObservation>,
}

/// What one remote execution put on the wire, as seen from the client:
/// total decoded tuples, and how many of them arrived batched inside
/// columnar block frames (vs. one frame per tuple).
#[derive(Debug, Clone, Copy)]
struct WireObservation {
    tuples: u64,
    blocks: u64,
    block_tuples: u64,
}

/// The observation key of one `(dataset, query)` combination.
fn observation_key(dataset: &Dataset, query: &TopkQuery) -> (u64, usize, u64) {
    (dataset.id, query.k, query.p_tau.to_bits())
}

impl Session {
    /// Creates a session with empty scratch buffers.
    pub fn new() -> Self {
        Session::default()
    }

    /// Executes one query against a dataset.
    ///
    /// Table datasets run the direct path (U-Topk, when requested, searches
    /// the table); every other kind opens into a [`ScanHandle`] and streams
    /// through the Theorem-2 gate. Both are bit-identical to the legacy
    /// per-shape entry points.
    ///
    /// The observed scan depth is recorded per `(dataset, k, pτ)`, so a
    /// later [`Session::explain`] can report the cost model's drift
    /// ([`PlanDescription::observed_vs_estimated`]).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors, dataset open failures
    /// (consumed single-pass datasets, provider I/O) and stream errors.
    pub fn execute(&mut self, dataset: &Dataset, query: &TopkQuery) -> Result<QueryAnswer> {
        let (answer, wire) = execute_on(&mut self.executor, dataset, query)?;
        let key = observation_key(dataset, query);
        self.observations.insert(key, answer.scan_depth);
        if let Some(wire) = wire {
            self.wire_observations.insert(key, wire);
        }
        Ok(answer)
    }

    /// Describes how [`Session::execute`] would run `query` against
    /// `dataset` — the chosen scan path, the row count when known, and the
    /// scheduler's depth/cost estimates — without opening or scanning
    /// anything.
    pub fn explain(&self, dataset: &Dataset, query: &TopkQuery) -> PlanDescription {
        let drains_stream = query.compute_u_topk || query.algorithm == Algorithm::Exhaustive;
        let plan = dataset.plan_for(drains_stream);
        let estimated_depth = match query.algorithm {
            Algorithm::Exhaustive => plan.rows,
            _ => Some(estimated_scan_depth(query.k, query.p_tau, plan.rows)),
        };
        let key = observation_key(dataset, query);
        let (dataset_epoch, live_segments, last_compaction_epoch) = match plan.path {
            ScanPath::Live {
                epoch,
                segments,
                compacted_epoch,
            } => (Some(epoch), Some(segments), Some(compacted_epoch)),
            _ => (None, None, None),
        };
        PlanDescription {
            dataset: dataset.label().to_string(),
            path: plan.path,
            rows: plan.rows,
            algorithm: query.algorithm,
            k: query.k,
            p_tau: query.p_tau,
            estimated_depth,
            observed_depth: self.observations.get(&key).copied(),
            estimated_cost: estimated_cost(query, plan.rows),
            drains_stream,
            observed_wire_tuples: self.wire_observations.get(&key).map(|w| w.tuples),
            observed_wire_blocks: self.wire_observations.get(&key).map(|w| w.blocks),
            observed_wire_block_tuples: self.wire_observations.get(&key).map(|w| w.block_tuples),
            server_cache_hit: None,
            dataset_epoch,
            server_cache_generation: None,
            live_segments,
            last_compaction_epoch,
        }
    }

    /// Executes a batch of independent jobs and returns the answers indexed
    /// like `jobs`.
    ///
    /// Workers claim jobs from a queue ordered by [`BatchOptions::ordering`]
    /// (estimated-cost descending by default, so a big job submitted last no
    /// longer serializes the tail); each worker owns one [`Executor`] whose
    /// scratch buffers persist across the jobs it claims. Jobs are
    /// deterministic and independent, so the result vector is identical to
    /// sequential execution regardless of ordering or interleaving.
    pub fn execute_batch(
        &mut self,
        jobs: &[QueryJob<'_>],
        options: &BatchOptions,
    ) -> Vec<Result<QueryAnswer>> {
        let mut slots: Vec<Option<Result<QueryAnswer>>> = jobs.iter().map(|_| None).collect();
        self.execute_batch_with(jobs, options, |index, answer| slots[index] = Some(answer));
        slots
            .into_iter()
            .map(|slot| slot.expect("every batch job is claimed by exactly one worker"))
            .collect()
    }

    /// Executes a batch, delivering each answer through `sink(job_index,
    /// answer)` as it completes (completion order, not submission order) —
    /// the bounded-result-memory mode for very large batches.
    ///
    /// With [`BatchOptions::max_resident_results`] set to `n`, at most `n`
    /// finished answers are in flight between the workers and the sink at any
    /// moment: workers block on a bounded channel instead of accumulating a
    /// `Vec` of every answer. The sink runs on the calling thread.
    pub fn execute_batch_with(
        &mut self,
        jobs: &[QueryJob<'_>],
        options: &BatchOptions,
        sink: impl FnMut(usize, Result<QueryAnswer>),
    ) {
        let order = match options.ordering {
            BatchOrdering::Submission => (0..jobs.len()).collect(),
            BatchOrdering::CostDescending => {
                let costs: Vec<f64> = jobs
                    .iter()
                    .map(|job| estimated_cost(&job.query, job.dataset.plan().rows))
                    .collect();
                cost_descending_order(&costs)
            }
        };
        let capacity = options.max_resident.unwrap_or(jobs.len());
        let Session {
            executor,
            observations,
            wire_observations,
        } = self;
        let mut sink = sink;
        fan_out(
            jobs.len(),
            options.threads,
            order,
            capacity,
            executor,
            |index, executor| execute_on(executor, jobs[index].dataset, &jobs[index].query),
            |index, answer: Result<(QueryAnswer, Option<WireObservation>)>| {
                let answer = answer.map(|(answer, wire)| {
                    let key = observation_key(jobs[index].dataset, &jobs[index].query);
                    observations.insert(key, answer.scan_depth);
                    if let Some(wire) = wire {
                        wire_observations.insert(key, wire);
                    }
                    answer
                });
                sink(index, answer);
            },
        );
    }
}

/// Runs one query against a dataset with the given executor — the shared
/// kernel of [`Session::execute`] and the batch workers. Alongside the
/// answer it reports how many tuples crossed the network (`None` for local
/// datasets), so callers can record the pushdown evidence.
fn execute_on(
    executor: &mut Executor,
    dataset: &Dataset,
    query: &TopkQuery,
) -> Result<(QueryAnswer, Option<WireObservation>)> {
    match dataset.as_table() {
        Some(table) => executor.execute(table, query).map(|answer| (answer, None)),
        None => {
            let spec = ScanSpec::for_query(query);
            let mut handle = dataset.open_for(&spec)?;
            let stats = handle.wire_stats().cloned();
            let answer =
                executor.run_source_metered(&mut handle, query, None, Some(spec.meter.clone()))?;
            let observation = stats.map(|stats| WireObservation {
                tuples: stats.tuples_received(),
                blocks: stats.blocks_received(),
                block_tuples: stats.block_tuples_received(),
            });
            Ok((answer, observation))
        }
    }
}

/// The shared parallel fan-out engine: claims indices from `order` on a pool
/// of `threads` workers (each owning one [`Executor`]), runs `work` per
/// index, and delivers `(index, answer)` pairs to `sink` on the calling
/// thread through a channel bounded to `capacity` in-flight results.
///
/// Sequential when `threads <= 1` or there is at most one job — that path
/// runs on `seq_executor` so a long-lived caller (the [`Session`]) keeps its
/// warm scratch buffers. Used by [`Session::execute_batch`] and by the
/// deprecated legacy batch wrappers, so all batch paths share one scheduling
/// and delivery implementation.
pub(crate) fn fan_out<A, W, S>(
    total: usize,
    threads: usize,
    order: Vec<usize>,
    capacity: usize,
    seq_executor: &mut Executor,
    work: W,
    mut sink: S,
) where
    A: Send,
    W: Fn(usize, &mut Executor) -> Result<A> + Sync,
    S: FnMut(usize, Result<A>),
{
    let threads = resolve_threads(threads, total);
    if threads <= 1 || total <= 1 {
        for index in order {
            let answer = work(index, seq_executor);
            sink(index, answer);
        }
        return;
    }

    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = sync_channel::<(usize, Result<A>)>(capacity.max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sender = sender.clone();
            let cursor = &cursor;
            let order = &order;
            let work = &work;
            scope.spawn(move || {
                let mut executor = Executor::new();
                loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = order.get(slot) else { break };
                    let answer = work(index, &mut executor);
                    if sender.send((index, answer)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(sender);
        for (index, answer) in receiver {
            sink(index, answer);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::{SourceTuple, UncertainTuple, VecSource};

    fn small_table() -> UncertainTable {
        UncertainTable::builder()
            .tuple(1u64, 49.0, 0.4)
            .unwrap()
            .tuple(2u64, 60.0, 0.4)
            .unwrap()
            .tuple(3u64, 110.0, 0.4)
            .unwrap()
            .tuple(4u64, 80.0, 0.3)
            .unwrap()
            .tuple(5u64, 56.0, 1.0)
            .unwrap()
            .me_rule([2u64, 4])
            .build()
            .unwrap()
    }

    fn stream_of(table: &UncertainTable) -> VecSource {
        table.to_source()
    }

    #[test]
    fn table_dataset_is_replayable_and_plans_in_memory() {
        let dataset = Dataset::table(small_table());
        let mut session = Session::new();
        let query = TopkQuery::new(2).with_u_topk(false);
        let a = session.execute(&dataset, &query).unwrap();
        let b = session.execute(&dataset, &query).unwrap();
        assert_eq!(a.distribution, b.distribution);
        let plan = session.explain(&dataset, &query);
        assert_eq!(plan.path, ScanPath::InMemory);
        assert_eq!(plan.rows, Some(5));
        assert!(!plan.drains_stream);
        assert!(plan.estimated_cost > 0.0);
    }

    #[test]
    fn stream_dataset_is_single_pass_with_a_clear_error() {
        let table = small_table();
        let dataset = Dataset::stream(stream_of(&table)).with_label("demo-stream");
        let query = TopkQuery::new(2).with_u_topk(false);
        let mut session = Session::new();
        assert!(session.execute(&dataset, &query).is_ok());
        let err = session.execute(&dataset, &query).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("demo-stream"), "{message}");
        assert!(message.contains("already consumed"), "{message}");
    }

    #[test]
    fn shards_dataset_plans_a_merge() {
        let table = small_table();
        let shards = ttk_uncertain::partition_round_robin(stream_of(&table), 2).unwrap();
        let dataset = Dataset::shards(shards);
        let plan = dataset.plan();
        assert_eq!(plan.path, ScanPath::MergedShards { shards: 2 });
        assert_eq!(plan.rows, Some(5));
        let query = TopkQuery::new(2).with_u_topk(false);
        Session::new().execute(&dataset, &query).unwrap();
        // Consumed: the plan no longer knows the rows, opening fails.
        assert_eq!(dataset.plan().rows, None);
        assert!(dataset.open().is_err());
    }

    #[test]
    fn generator_dataset_replays() {
        let dataset = Dataset::generator(|| {
            Ok(VecSource::new(vec![
                SourceTuple::independent(UncertainTuple::new(1u64, 9.0, 0.5)?),
                SourceTuple::independent(UncertainTuple::new(2u64, 7.0, 1.0)?),
            ]))
        });
        let query = TopkQuery::new(1).with_u_topk(false);
        let mut session = Session::new();
        let a = session.execute(&dataset, &query).unwrap();
        let b = session.execute(&dataset, &query).unwrap();
        assert_eq!(a.distribution, b.distribution);
        assert_eq!(session.explain(&dataset, &query).path, ScanPath::Stream);
    }

    #[test]
    fn cost_order_puts_big_jobs_first() {
        // Pathological big-last submission: the most expensive job is last.
        let costs = [1.0, 2.0, 1.5, 100.0];
        assert_eq!(cost_descending_order(&costs), vec![3, 1, 2, 0]);
        // Ties keep submission order (deterministic schedule).
        assert_eq!(cost_descending_order(&[5.0, 5.0, 1.0]), vec![0, 1, 2]);
        assert_eq!(cost_descending_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn estimates_grow_with_k_and_shrink_with_p_tau() {
        assert!(estimated_scan_depth(10, 1e-3, None) > estimated_scan_depth(2, 1e-3, None));
        assert!(estimated_scan_depth(5, 1e-6, None) > estimated_scan_depth(5, 1e-2, None));
        assert_eq!(estimated_scan_depth(5, 1e-3, Some(3)), 3);
        // Degenerate pτ values do not panic and keep at least k.
        assert!(estimated_scan_depth(4, 0.0, None) >= 4);
        assert!(estimated_scan_depth(4, 5.0, Some(1000)) >= 4);
        // Draining queries cost more than bounded ones.
        let bounded = TopkQuery::new(3).with_u_topk(false);
        let draining = TopkQuery::new(3);
        assert!(estimated_cost(&draining, Some(500)) > estimated_cost(&bounded, Some(500)));
    }

    #[test]
    fn batch_matches_sequential_for_both_orderings() {
        let dataset = Dataset::table(small_table());
        let jobs: Vec<QueryJob> = (1..=4)
            .map(|k| QueryJob::new(&dataset, TopkQuery::new(k).with_u_topk(false)))
            .collect();
        let mut session = Session::new();
        let sequential = session.execute_batch(&jobs, &BatchOptions::new().with_threads(1));
        for ordering in [BatchOrdering::CostDescending, BatchOrdering::Submission] {
            let parallel = session.execute_batch(
                &jobs,
                &BatchOptions::new().with_threads(3).with_ordering(ordering),
            );
            for (a, b) in sequential.iter().zip(&parallel) {
                match (a, b) {
                    (Ok(a), Ok(b)) => assert_eq!(a.distribution, b.distribution),
                    (a, b) => panic!("batch paths disagree: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn explain_displays_every_field() {
        let dataset = Dataset::table(small_table()).with_label("soldier-demo");
        let plan = Session::new().explain(&dataset, &TopkQuery::new(2));
        let text = plan.to_string();
        assert!(text.contains("soldier-demo"), "{text}");
        assert!(text.contains("in-memory"), "{text}");
        assert!(text.contains("estimated scan depth"), "{text}");
        assert!(text.contains("drained: yes"), "{text}");
    }
}
