//! Scan depth: how many rank-ordered tuples the algorithms must examine.
//!
//! Theorem 2 of the paper gives a stopping condition for the sequential scan
//! of tuples in rank order: once the accumulated probability mass μ of the
//! higher-ranked tuples (excluding the current tuple's own ME group) reaches
//!
//! ```text
//! μ ≥ k + ln(1/pτ) + sqrt(ln²(1/pτ) + 2·k·ln(1/pτ)) + 1
//! ```
//!
//! no tuple from that point on can be in the top-k with probability pτ or
//! more, and consequently no k-tuple vector with probability ≥ pτ is missed.
//! The scan always stops at the end of a tie group, because a tie group is
//! either entirely needed or entirely not needed.

use ttk_uncertain::{Error, Result, UncertainTable};

/// The right-hand side of the Theorem 2 inequality.
///
/// `k` is the query size and `p_tau` the probability threshold below which
/// top-k vectors may be ignored.
pub fn stopping_threshold(k: usize, p_tau: f64) -> f64 {
    let k = k as f64;
    let l = (1.0 / p_tau).ln();
    k + l + (l * l + 2.0 * k * l).sqrt() + 1.0
}

/// Computes the scan depth `n` for a table: the number of highest-ranked
/// tuples that must be considered so that no top-k vector with probability at
/// least `p_tau` is missed.
///
/// Returns the table length when the stopping condition is never met.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k == 0` or `p_tau` is not in
/// `(0, 1)`.
pub fn scan_depth(table: &UncertainTable, k: usize, p_tau: f64) -> Result<usize> {
    if k == 0 {
        return Err(Error::InvalidParameter("k must be at least 1".into()));
    }
    if !(p_tau > 0.0 && p_tau < 1.0) {
        return Err(Error::InvalidParameter(format!(
            "probability threshold pτ must be in (0, 1), got {p_tau}"
        )));
    }
    let threshold = stopping_threshold(k, p_tau);
    for pos in 0..table.len() {
        if table.mu(pos) >= threshold {
            // Stop at the end of the tie group containing the previous tuple:
            // tuples with the same score as the stopping tuple are either all
            // needed or all unneeded, and the conservative choice is to keep
            // the whole group (§3.1).
            return Ok(if pos == 0 { 0 } else { table.tie_group_end(pos - 1) });
        }
    }
    Ok(table.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttk_uncertain::UncertainTable;

    fn uniform_table(n: usize, prob: f64) -> UncertainTable {
        UncertainTable::new(
            (0..n)
                .map(|i| {
                    ttk_uncertain::UncertainTuple::new(i as u64, (n - i) as f64, prob).unwrap()
                })
                .collect(),
            Vec::new(),
        )
        .unwrap()
    }

    #[test]
    fn threshold_grows_with_k_and_shrinks_with_p_tau() {
        assert!(stopping_threshold(10, 0.001) < stopping_threshold(20, 0.001));
        assert!(stopping_threshold(10, 0.001) > stopping_threshold(10, 0.01));
        // Sanity: threshold is always at least k + 1.
        for k in [1usize, 5, 50] {
            assert!(stopping_threshold(k, 0.001) > k as f64 + 1.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let t = uniform_table(10, 0.5);
        assert!(scan_depth(&t, 0, 0.001).is_err());
        assert!(scan_depth(&t, 2, 0.0).is_err());
        assert!(scan_depth(&t, 2, 1.0).is_err());
    }

    #[test]
    fn small_tables_are_fully_scanned() {
        let t = uniform_table(20, 0.5);
        assert_eq!(scan_depth(&t, 5, 0.001).unwrap(), 20);
    }

    #[test]
    fn depth_is_bounded_and_grows_with_k() {
        let t = uniform_table(2000, 0.5);
        let d5 = scan_depth(&t, 5, 0.001).unwrap();
        let d20 = scan_depth(&t, 20, 0.001).unwrap();
        let d60 = scan_depth(&t, 60, 0.001).unwrap();
        assert!(d5 < d20 && d20 < d60, "{d5} {d20} {d60}");
        assert!(d60 < 2000);
        // The depth must exceed k (we need at least k tuples).
        assert!(d5 > 5 && d20 > 20 && d60 > 60);
    }

    #[test]
    fn depth_grows_when_p_tau_shrinks() {
        let t = uniform_table(2000, 0.5);
        let loose = scan_depth(&t, 10, 0.01).unwrap();
        let tight = scan_depth(&t, 10, 0.0001).unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn certain_tuples_need_roughly_k_plus_threshold_tuples() {
        // With probability-1 tuples, μ at position i is exactly i, so the
        // depth is close to the threshold itself.
        let t = uniform_table(1000, 1.0);
        let d = scan_depth(&t, 10, 0.001).unwrap();
        assert_eq!(d, stopping_threshold(10, 0.001).ceil() as usize);
    }

    #[test]
    fn stops_at_tie_group_boundary() {
        // 100 certain tuples, all with the same score: the stopping condition
        // triggers inside the tie group, so the whole group must be kept.
        let t = UncertainTable::new(
            (0..100)
                .map(|i| ttk_uncertain::UncertainTuple::new(i as u64, 42.0, 1.0).unwrap())
                .collect(),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(scan_depth(&t, 3, 0.01).unwrap(), 100);
    }

    #[test]
    fn me_groups_inflate_depth() {
        // Tuples that are mutually exclusive with many others contribute less
        // μ mass (their own group is excluded), so the scan goes deeper.
        let independent = uniform_table(3000, 0.25);
        let mut builder = UncertainTable::builder();
        let mut rules: Vec<Vec<u64>> = Vec::new();
        for i in 0..3000u64 {
            builder.push(
                ttk_uncertain::UncertainTuple::new(i, (3000 - i) as f64, 0.25).unwrap(),
            );
        }
        for chunk in 0..750u64 {
            rules.push((0..4).map(|j| chunk * 4 + j).collect());
        }
        for r in &rules {
            builder.add_me_rule(r.iter().copied());
        }
        let grouped = builder.build().unwrap();
        let d_ind = scan_depth(&independent, 10, 0.001).unwrap();
        let d_grp = scan_depth(&grouped, 10, 0.001).unwrap();
        assert!(d_grp >= d_ind);
    }
}
